"""Tests for the experiment harnesses (small subsets, tiny scale)."""

import pytest

from repro.experiments import (
    FOUR_CONFIGS,
    categorize_branch,
    format_percent,
    format_series,
    format_table,
    measure_input,
    measure_speedups,
    run_table1,
)
from repro.workloads.suite import SUITE, load_benchmark

TINY = 0.2  # floor-dominated, but fast

MCFA = [e for e in SUITE if e.full_name == "181.mcf/A"]


class TestConfigs:
    def test_four_configs_cover_the_grid(self):
        grid = {(c.inference, c.linking) for c in FOUR_CONFIGS}
        assert grid == {(False, False), (False, True), (True, False), (True, True)}

    def test_packer_applies_settings(self):
        packer = FOUR_CONFIGS[0].packer()
        assert not packer.region_config.inference
        assert not packer.link


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows aligned

    def test_format_percent(self):
        assert format_percent(0.8123) == "81.2%"

    def test_format_series(self):
        text = format_series("s", [("a", 1.0), ("bb", 2)])
        assert "a " in text and "bb" in text


class TestCategorizeBranch:
    def test_empty_is_undetected(self):
        assert categorize_branch([]) == "not_in_hot_spot"

    def test_unique_biased(self):
        assert categorize_branch([0.95]) == "unique_biased"
        assert categorize_branch([0.05]) == "unique_biased"

    def test_unique_unbiased(self):
        assert categorize_branch([0.5]) == "unique_unbiased"

    def test_multi_high_swing(self):
        assert categorize_branch([0.05, 0.95]) == "multi_high"

    def test_multi_low_swing(self):
        assert categorize_branch([0.3, 0.85]) == "multi_low"

    def test_multi_same(self):
        assert categorize_branch([0.9, 0.95]) == "multi_same"

    def test_multi_no_bias(self):
        assert categorize_branch([0.5, 0.45, 0.6]) == "multi_no_bias"

    def test_boundaries(self):
        assert categorize_branch([0.7]) == "unique_biased"        # >= 0.7
        assert categorize_branch([0.25, 0.70]) == "multi_low"     # swing 0.45


class TestHarnessesOnOneInput:
    @pytest.fixture(scope="class")
    def workload(self):
        return load_benchmark("181.mcf", "A", scale=TINY)

    def test_coverage_row_shape(self, workload):
        row = measure_input(workload)
        assert row.benchmark == "181.mcf"
        assert len(row.coverage) == 4
        assert all(0.0 <= c <= 1.0 for c in row.coverage)
        # Full config is never worse than no-inference/no-linking by a
        # large margin (allowing small noise from region differences).
        assert row.coverage[3] >= row.coverage[0] - 0.05

    def test_speedup_row_shape(self, workload):
        row = measure_speedups(workload)
        assert row.baseline_cycles > 0
        assert len(row.packed_cycles) == 4
        for speedup in row.speedups:
            assert 0.8 < speedup < 2.5

    def test_table1_row(self):
        report = run_table1(entries=MCFA, scale=TINY)
        (row,) = report.rows
        assert row.paper_minsts == 105
        assert row.measured_instructions > 100_000
        assert "181.mcf" in report.render()
