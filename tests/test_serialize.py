"""Tests for hot-spot profile serialization."""

import json

import pytest

from repro.errors import ProfileError, ReproError
from repro.hsd import (
    BranchProfile,
    HotSpotRecord,
    ProfileFormatError,
    load_document,
    load_profile,
    make_provenance,
    records_from_json,
    records_to_json,
    save_profile,
)
from repro.hsd.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    document_from_json,
    records_to_dict,
)


def sample_records():
    return [
        HotSpotRecord(
            index=0,
            detected_at_branch=4500,
            branches={
                0x1000: BranchProfile(0x1000, 511, 498),
                0x1018: BranchProfile(0x1018, 400, 10),
            },
        ),
        HotSpotRecord(
            index=7,
            detected_at_branch=105_000,
            branches={0x2000: BranchProfile(0x2000, 300, 150)},
        ),
    ]


class TestRoundTrip:
    def test_json_roundtrip(self):
        text = records_to_json(sample_records(), meta={"benchmark": "x"})
        loaded = records_from_json(text)
        assert len(loaded) == 2
        assert loaded[0].index == 0
        assert loaded[0].detected_at_branch == 4500
        assert loaded[0].branches[0x1000].taken == 498
        assert loaded[1].branches[0x2000].executed == 300

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(path, sample_records())
        loaded = load_profile(path)
        assert {r.index for r in loaded} == {0, 7}

    def test_document_is_stable(self):
        a = records_to_json(sample_records())
        b = records_to_json(sample_records())
        assert a == b

    def test_meta_preserved_in_document(self):
        document = records_to_dict(sample_records(), meta={"scale": 0.5})
        assert document["meta"] == {"scale": 0.5}
        assert document["version"] == FORMAT_VERSION

    def test_loaded_records_drive_region_identification(self):
        """A persisted profile is as good as a live one."""
        from repro.isa.assembler import assemble
        from repro.regions import identify_region
        from tests.test_regions import FIG3_PROFILE, FIGURE3_SRC

        program = assemble(FIGURE3_SRC, entry="A")
        record = HotSpotRecord(
            index=0, detected_at_branch=0,
            branches={p.address: p for p in FIG3_PROFILE.values()},
        )
        (loaded,) = records_from_json(records_to_json([record]))
        locate = {p.address: loc for loc, p in FIG3_PROFILE.items()}
        region = identify_region(program, loaded, locate)
        assert region.hot_block_count() == 11


class TestFormatV2:
    def test_writes_version_2(self):
        assert FORMAT_VERSION == 2
        assert records_to_dict(sample_records())["version"] == 2

    def test_provenance_round_trip(self, tmp_path):
        path = tmp_path / "v2.json"
        save_profile(
            path,
            sample_records(),
            meta={"provenance": make_provenance("fleet#r0001", 41, 3)},
        )
        doc = load_document(path)
        assert doc.version == 2
        assert doc.run_id == "fleet#r0001"
        assert doc.seed == 41
        assert doc.epoch == 3
        assert len(doc.records) == 2

    def test_v1_document_still_loads(self):
        """The v2 reader keeps accepting pre-provenance documents."""
        document = records_to_dict(sample_records())
        document["version"] = 1
        del document["meta"]
        doc = document_from_json(json.dumps(document))
        assert doc.version == 1
        assert doc.provenance == {}
        assert doc.epoch == 0
        assert {r.index for r in doc.records} == {0, 7}


class TestErrors:
    """Corruption must surface as typed errors, never crashes.

    ProfileFormatError sits on the repro.errors hierarchy, so ingest
    and quarantine loops treat a bad document like any other typed
    per-phase failure.
    """

    def test_is_a_typed_pipeline_error(self):
        error = ProfileFormatError("bad document")
        assert isinstance(error, ProfileError)
        assert isinstance(error, ReproError)
        assert error.hint

    def test_rejects_truncated_json(self):
        text = records_to_json(sample_records())
        with pytest.raises(ProfileFormatError, match="JSON"):
            records_from_json(text[: len(text) // 2])

    def test_rejects_stale_future_version(self):
        document = records_to_dict(sample_records())
        document["version"] = FORMAT_VERSION + 1
        with pytest.raises(ProfileFormatError, match="version"):
            records_from_json(json.dumps(document))

    def test_rejects_missing_records_list(self):
        with pytest.raises(ProfileFormatError, match="records"):
            records_from_json(
                json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION})
            )

    def test_rejects_missing_branch_fields(self):
        document = records_to_dict(sample_records())
        del document["records"][0]["branches"][0]["executed"]
        with pytest.raises(ProfileFormatError, match="malformed"):
            records_from_json(json.dumps(document))

    def test_rejects_incomplete_provenance_stamp(self):
        document = records_to_dict(
            sample_records(), meta={"provenance": {"run_id": "r0"}}
        )
        with pytest.raises(ProfileFormatError, match="provenance"):
            records_from_json(json.dumps(document))

    def test_rejects_wrong_format(self):
        with pytest.raises(ProfileFormatError, match="format"):
            records_from_json(json.dumps({"format": "other", "version": 1}))

    def test_rejects_wrong_version(self):
        with pytest.raises(ProfileFormatError, match="version"):
            records_from_json(
                json.dumps({"format": "vacuum-packing-profile", "version": 99})
            )

    def test_rejects_invalid_json(self):
        with pytest.raises(ProfileFormatError, match="JSON"):
            records_from_json("{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ProfileFormatError, match="object"):
            records_from_json("[1, 2]")

    def test_rejects_inconsistent_counts(self):
        document = records_to_dict(sample_records())
        document["records"][0]["branches"][0]["taken"] = 10_000
        with pytest.raises(ProfileFormatError, match="malformed"):
            records_from_json(json.dumps(document))
