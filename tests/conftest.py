"""Shared fixtures: small programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble

LOOP_PROGRAM_SRC = """
func main:
  entry:
    movi r1, 0
    movi r2, 100
  loop:
    addi r1, r1, 1
    call work
  cond:
    slt r3, r1, r2
    brnz r3, loop
  tail:
    halt

func work:
  w0:
    slt r4, r1, r2
    brnz r4, w2
  w1:
    addi r5, r5, 2
  w2:
    ret
"""

DIAMOND_FUNCTION_SRC = """
func dia:
  top:
    movi r1, 1
    brnz r1, right
  left:
    addi r2, r2, 1
    jump merge
  right:
    addi r2, r2, 2
  merge:
    add r3, r2, r1
    ret
"""


@pytest.fixture
def loop_program():
    """Two-function program with a counted loop and a biased callee branch."""
    return assemble(LOOP_PROGRAM_SRC)


@pytest.fixture
def diamond_function():
    """Single function with an if/else diamond."""
    from repro.isa.assembler import assemble_function

    return assemble_function(DIAMOND_FUNCTION_SRC)
