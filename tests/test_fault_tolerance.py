"""Robustness layer: fault injection, quarantine, validation oracles.

The property test encodes the PR's core guarantee: *any* seeded fault
mix over a real profile must leave the non-strict pipeline standing —
``pack()`` never raises, and every package it produces passes the
structural validators.  The differential-oracle tests then show the
validators have teeth: a deliberately mis-patched launch point fails
loudly, both structurally and behaviorally.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import PipelineConfig
from repro.errors import DifferentialError, ProfileError, RegionError, ReproError
from repro.hsd import ALL_FAULT_MODES, FaultInjector, FaultSpec, inject_faults
from repro.isa.instructions import Instruction, Opcode
from repro.postlink import (
    VacuumPacker,
    clone_program,
    differential_check,
    validate_packed,
    validate_plan,
)
from repro.program.cfg import cross_function_target, split_cross_function
from repro.regions.identify import branch_locator_from_image, identify_region
from repro.workloads.suite import load_benchmark

SCALE = 0.3


@pytest.fixture(scope="module")
def perl():
    """Profiled workload + fault-free baseline pack (134.perl/C)."""
    workload = load_benchmark("134.perl", "C", scale=SCALE)
    packer = VacuumPacker()
    profile = packer.profile(workload)
    baseline = packer.pack(workload, profile)
    return workload, packer, profile, baseline


# ---------------------------------------------------------------------------
# fault injector mechanics
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_deterministic(self, perl):
        _, _, profile, _ = perl
        a, log_a = FaultInjector(seed=7).inject(profile.records)
        b, log_b = FaultInjector(seed=7).inject(profile.records)
        assert a == b
        assert log_a.as_dict() == log_b.as_dict()

    def test_different_seeds_differ(self, perl):
        _, _, profile, _ = perl
        a, _ = FaultInjector(seed=1).inject(profile.records)
        b, _ = FaultInjector(seed=2).inject(profile.records)
        assert a != b

    def test_input_not_mutated(self, perl):
        _, _, profile, _ = perl
        before = [dataclasses.replace(r) for r in profile.records]
        FaultInjector(seed=3, spec=FaultSpec(rate=1.0)).inject(
            profile.records
        )
        assert profile.records == before

    def test_profiles_stay_well_formed(self, perl):
        _, _, profile, _ = perl
        faulty, _ = FaultInjector(
            seed=11, spec=FaultSpec(modes=ALL_FAULT_MODES, rate=1.0)
        ).inject(profile.records)
        for record in faulty:
            for prof in record.branches.values():
                # BranchProfile.__post_init__ enforces this, but make the
                # invariant explicit: injection never builds bad profiles.
                assert 0 <= prof.taken <= prof.executed

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(modes=("bit_rot",))

    def test_rate_range_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)


# ---------------------------------------------------------------------------
# the core property: faulty profiles never break the non-strict pipeline
# ---------------------------------------------------------------------------

fault_mixes = st.lists(
    st.sampled_from(ALL_FAULT_MODES), min_size=1, max_size=6, unique=True
)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    modes=fault_mixes,
    rate=st.floats(min_value=0.05, max_value=1.0),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_fault_mix_survives_nonstrict_pack(perl, seed, modes, rate):
    workload, packer, profile, _ = perl
    injector = FaultInjector(
        seed=seed, spec=FaultSpec(modes=tuple(modes), rate=rate)
    )
    faulty_records, _ = injector.inject(profile.records)
    faulty_profile = dataclasses.replace(profile, records=faulty_records)

    result = packer.pack(workload, faulty_profile)  # must never raise

    # Whatever survived must be structurally sound.
    report = validate_plan(result.plan, workload.program)
    report.merge(validate_packed(result.packed))
    assert report.ok, report.render()
    assert 0.0 <= result.coverage.package_fraction <= 1.0
    # Anything dropped left a structured trace.
    for phase in result.quarantined_phases():
        assert any(d.phase == phase for d in result.diagnostics)


# ---------------------------------------------------------------------------
# strict mode and typed errors
# ---------------------------------------------------------------------------

class TestStrictMode:
    def test_duplicate_record_raises(self, perl):
        workload, _, profile, _ = perl
        strict = VacuumPacker(PipelineConfig(strict=True))
        doubled = dataclasses.replace(
            profile, records=list(profile.records) + [profile.records[0]]
        )
        with pytest.raises(ProfileError) as excinfo:
            strict.pack(workload, doubled)
        assert excinfo.value.phase == profile.records[0].index

    def test_nonstrict_quarantines_duplicate(self, perl):
        workload, packer, profile, _ = perl
        doubled = dataclasses.replace(
            profile, records=list(profile.records) + [profile.records[0]]
        )
        result = packer.pack(workload, doubled)
        assert any(
            d.stage == "profile" and d.phase == profile.records[0].index
            for d in result.diagnostics
        )

    def test_unknown_ordering_rejected_eagerly(self):
        with pytest.raises(ValueError, match="best, worst, first"):
            VacuumPacker(PipelineConfig(ordering="bogus"))

    def test_region_error_carries_addresses(self, perl):
        workload, packer, profile, _ = perl
        record = profile.records[0]
        # Slide every address far outside the program image.
        hostile = dataclasses.replace(
            record,
            branches={
                addr + 0x4000_0000: prof
                for addr, prof in record.branches.items()
            },
        )
        locate = branch_locator_from_image(profile.image)
        with pytest.raises(RegionError) as excinfo:
            identify_region(
                workload.program, hostile, locate, packer.region_config
            )
        assert excinfo.value.addresses
        assert excinfo.value.phase == record.index

    def test_errors_are_typed(self, perl):
        workload, packer, profile, _ = perl
        record = profile.records[0]
        hostile = dataclasses.replace(
            record,
            branches={
                addr + 0x4000_0000: prof
                for addr, prof in record.branches.items()
            },
        )
        bad_profile = dataclasses.replace(profile, records=[hostile])
        strict = VacuumPacker(PipelineConfig(strict=True))
        with pytest.raises(ReproError):
            strict.pack(workload, bad_profile)
        # Non-strict: quarantined at identify, pipeline completes empty.
        result = packer.pack(workload, bad_profile)
        assert result.regions == []
        assert any(d.stage == "identify" for d in result.diagnostics)


# ---------------------------------------------------------------------------
# differential oracle
# ---------------------------------------------------------------------------

class TestDifferentialOracle:
    def test_passes_on_clean_pack(self, perl):
        workload, _, _, baseline = perl
        report = differential_check(workload, baseline.packed)
        assert report.ok, report.render()
        assert report.branches_original == report.branches_packed
        assert report.stream_digest_original == report.stream_digest_packed
        assert report.work_original == report.work_packed

    def test_detects_mispatched_launch_point(self, perl):
        """Mutate one launch displacement; both oracles must fail loudly."""
        workload, packer, profile, _ = perl
        sabotaged = packer.pack(workload, profile).packed

        mutated = False
        for function in sabotaged.program.functions.values():
            for block in function.blocks:
                if not block.meta.get("launch_trampoline"):
                    continue
                term = block.terminator
                pkg_name, entry_label = split_cross_function(term.target)
                pkg_fn = sabotaged.program.functions[pkg_name]
                wrong = next(
                    b.label for b in pkg_fn.blocks if b.label != entry_label
                )
                block.instructions[-1] = term.retargeted(
                    cross_function_target(pkg_name, wrong)
                )
                mutated = True
                break
            if mutated:
                break
        assert mutated, "no launch trampoline found to sabotage"

        structural = validate_packed(sabotaged)
        assert not structural.ok
        assert any(i.kind == "patch_mismatch" for i in structural.issues)

        behavioral = differential_check(workload, sabotaged)
        assert not behavioral.ok

    def test_stop_reason_mismatch_raises_typed_error(self, perl):
        """A rewrite that changes *why* the run terminates must raise
        DifferentialError, never return a truncated-prefix comparison.

        The packed clone halts at its entry: the original replay runs
        to the branch budget while the packed replay retires nothing,
        so every digest/count in a returned report would be computed
        over incommensurable prefixes — the silent-pass hazard this
        error exists to close.
        """
        workload, packer, profile, _ = perl
        result = packer.pack(workload, profile)
        clone = clone_program(result.packed.program)
        entry_fn = clone.functions[clone.entry]
        entry_block = next(
            b for b in entry_fn.blocks if b.label == entry_fn.entry_label
        )
        entry_block.instructions[:] = [Instruction(Opcode.HALT)]
        sabotaged = dataclasses.replace(result.packed, program=clone)

        with pytest.raises(DifferentialError) as excinfo:
            differential_check(workload, sabotaged)
        assert "stop reasons diverge" in str(excinfo.value)
        assert excinfo.value.original == "branch_limit"
        assert excinfo.value.packed == "halted"


# ---------------------------------------------------------------------------
# convenience wrapper
# ---------------------------------------------------------------------------

def test_inject_faults_wrapper(perl):
    _, _, profile, _ = perl
    faulty, log = inject_faults(profile.records, seed=5)
    direct, direct_log = FaultInjector(seed=5).inject(profile.records)
    assert faulty == direct
    assert log.as_dict() == direct_log.as_dict()


# ---------------------------------------------------------------------------
# campaign driver and CLI
# ---------------------------------------------------------------------------

def test_fault_campaign_smoke():
    from repro.experiments import run_fault_campaign
    from repro.workloads.suite import SUITE

    entry = next(e for e in SUITE if e.full_name == "134.perl/C")
    report = run_fault_campaign(
        entries=[entry], scale=SCALE, seed=0, trials=2
    )
    assert report.ok
    assert report.survival_rate == 1.0
    assert len(report.entries) == 1
    assert len(report.entries[0].trials) == 2
    rendered = report.render()
    assert "134.perl/C" in rendered
    assert "100% survival" in rendered


def test_faults_cli(capsys):
    from repro.cli import main

    code = main([
        "faults", "--bench", "134.perl/C", "--scale", str(SCALE),
        "--seed", "0", "--trials", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fault-injection campaign" in out
    assert "survival" in out
