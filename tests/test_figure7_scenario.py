"""Scenario test reconstructing the paper's Figure 7.

Three phases are detected over a root function ``A`` that may call
``B`` twice; the phases disagree about branch ``A2`` (whether the
second call happens) and about ``B1``'s bias.  The test checks the
package-transition machinery of section 3.3.4 end to end:

* all phase packages share root ``A`` and a single launch point;
* packages where ``A2`` is biased taken contain *two* partially inlined
  copies of ``B`` (contexts ``B1'`` and ``B1''``), the paper's
  incompatible-branch pair;
* no link ever connects code from one inlining context to another;
* the chosen ordering's rank is maximal over all orderings.
"""

import itertools

import pytest

from repro.engine import BehaviorModel, ExecutionLimits, PhaseScript
from repro.isa.assembler import assemble
from repro.packages.linking import compute_links
from repro.packages.ordering import rank_from_links
from repro.api import PipelineConfig
from repro.postlink import VacuumPacker
from repro.workloads.base import Workload

FIGURE7_SRC = """
func main:
  m_entry:
    movi r1, 0
  m_head:
    call A
  m_latch:
    seq r2, r1, r1
    brnz r2, m_head
  m_tail:
    halt

func A:
  A1:
    sne r3, r1, r2
    brnz r3, A1_alt
  A1_main:
    addi r4, r4, 1
    jump A2
  A1_alt:
    addi r5, r5, 1
    jump A2
  A2:
    slt r3, r1, r2
    brnz r3, callB2
  skip2:
    addi r6, r6, 1
    jump A3
  callB2:
    call B
  after2:
    addi r7, r7, 1
    jump A3
  A3:
    addi r8, r8, 1
    call B
  A4:
    slt r3, r2, r4
    brnz r3, A1
  A_ret:
    ret

func B:
  B1:
    sne r3, r4, r5
    brnz r3, B_alt
  B_main:
    addi r10, r10, 1
    ret
  B_alt:
    addi r11, r11, 1
    ret
"""


@pytest.fixture(scope="module")
def figure7():
    program = assemble(FIGURE7_SRC)
    behavior = BehaviorModel(seed=77)
    branch = {loc: uid for uid, loc in program.branch_block_index().items()}

    behavior.set_bias(branch[("main", "m_latch")], 1.0)
    # Long A invocations keep the driver main cold (below the BBB
    # candidate threshold per refresh window), so A is the root.
    behavior.set_bias(branch[("A", "A4")], 0.997)

    # A1: unbiased in phases 0 and 1, strongly biased in phase 2.
    behavior.set_phase_biases(branch[("A", "A1")], {0: 0.5, 1: 0.5, 2: 0.97})
    # A2: biased fall-through in phase 0 (skip the second call to B),
    # biased taken in phases 1 and 2 (make the second call).
    behavior.set_phase_biases(branch[("A", "A2")], {0: 0.01, 1: 0.99, 2: 0.99})
    # B1 swings between the phases.
    behavior.set_phase_biases(branch[("B", "B1")], {0: 0.9, 1: 0.1, 2: 0.9})

    script = PhaseScript.from_pairs([(0, 120_000), (1, 120_000), (2, 120_000)])
    workload = Workload(
        "figure7", program, behavior, script,
        ExecutionLimits(max_branches=script.total_branches),
    )
    result = VacuumPacker().pack(workload)
    return workload, result


def _a_group(result):
    groups = [g for g in result.plan.groups if g.root == "A"]
    assert groups, "packages must be rooted at A"
    return groups[0]


class TestFigure7:
    def test_three_phases_three_packages(self, figure7):
        _workload, result = figure7
        assert result.profile.phase_count == 3
        group = _a_group(result)
        assert len(group.packages) == 3

    def test_single_shared_launch_point(self, figure7):
        _workload, result = figure7
        group = _a_group(result)
        # All three packages mirror the same entry location; only the
        # left-most package owns the launch point.
        entry_locations = set()
        for package in group.packages:
            entry_locations.update(package.entry_map.values())
        owned = [
            dest for loc, dest in result.packed.launch_map.items()
            if loc in entry_locations
        ]
        assert len(owned) == len(entry_locations)
        leftmost = group.packages[0]
        for _loc, (pkg_name, _label) in result.packed.launch_map.items():
            if _loc in entry_locations:
                assert pkg_name == leftmost.name

    def test_second_call_inlined_only_when_taken(self, figure7):
        """Phase 0's A2 is biased fall-through: its package must skip
        the second call to B; phases 1/2 include it twice."""
        _workload, result = figure7
        group = _a_group(result)
        context_counts = {}
        for package in group.packages:
            b_contexts = {
                context
                for (location, context) in package.location_index
                if location[0] == "B"
            }
            context_counts[package.name] = len(b_contexts)
        counts = sorted(context_counts.values())
        assert counts == [1, 2, 2], context_counts

    def test_b1_copies_from_different_contexts_incompatible(self, figure7):
        """The B1'/B1'' rule: links never cross inlining contexts."""
        _workload, result = figure7
        group = _a_group(result)
        by_name = {p.name: p for p in group.packages}
        checked = 0
        for package in group.packages:
            for exit_site in package.exits:
                if exit_site.linked_to is None:
                    continue
                dest_name, dest_label = exit_site.linked_to
                dest_block = by_name[dest_name].find_block(dest_label)
                assert dest_block.context == exit_site.context
                checked += 1
        assert checked > 0, "the scenario must exercise linking"

    def test_chosen_ordering_rank_is_maximal(self, figure7):
        _workload, result = figure7
        group = _a_group(result)
        ranks = []
        for permutation in itertools.permutations(group.packages):
            ordered = list(permutation)
            links = compute_links(ordered)
            ranks.append(rank_from_links(ordered, links))
        assert group.rank == pytest.approx(max(ranks))

    def test_phase_transitions_covered(self, figure7):
        workload, result = figure7
        assert result.coverage.package_fraction > 0.85
        no_link = VacuumPacker(PipelineConfig(link=False)).pack(
            workload, profile=result.profile
        )
        assert result.coverage.package_fraction >= \
            no_link.coverage.package_fraction
