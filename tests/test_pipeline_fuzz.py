"""Property-based fuzzing of the whole pipeline, on `repro.fuzz.genprog`.

Hypothesis drives the generator's knobs (loop depth, call fan-out,
phase count, irreducibility, ...); for each generated case the full
Vacuum Packing pipeline must uphold its invariants: the packed program
validates and links, the conditional-branch stream is bit-identical
between original and packed runs, coverage accounting is exact, and
all launch/link targets resolve.  A second property pushes a smaller
sample through the complete four-oracle conformance stack.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz import GenConfig, build_case, run_oracle_stack
from repro.postlink import VacuumPacker

# The generator's knob space, as hypothesis strategies.  Most cases run
# short phase scripts (milliseconds); detection-sized scripts get their
# own dedicated corpus tests.
config_strategy = st.builds(
    GenConfig,
    functions=st.integers(min_value=1, max_value=4),
    loop_depth=st.integers(min_value=1, max_value=3),
    call_fanout=st.integers(min_value=0, max_value=2),
    chain_depth=st.integers(min_value=1, max_value=2),
    diamonds=st.integers(min_value=1, max_value=3),
    block_size=st.integers(min_value=2, max_value=6),
    phases=st.integers(min_value=1, max_value=3),
    phase_pattern=st.sampled_from(["sequence", "repeat"]),
    phase_branches=st.integers(min_value=2_000, max_value=8_000),
    irreducible_fraction=st.floats(min_value=0.0, max_value=1.0),
    recursion=st.booleans(),
    cold_functions=st.integers(min_value=0, max_value=3),
)

seed_strategy = st.integers(min_value=0, max_value=10_000)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=seed_strategy, config=config_strategy)
def test_pipeline_invariants_hold_for_arbitrary_workloads(seed, config):
    case = build_case(seed, config)
    workload = case.workload
    workload.program.validate()

    result = VacuumPacker().pack(workload)

    # Structural soundness of the packed binary.
    result.packed.program.validate()
    image = result.packed.link_image()
    assert image.size_instructions() == result.packed.program.static_size()

    # The packed run replays the identical branch stream.
    packed_run = workload.run(program=result.packed.program)
    original = result.profile.summary
    assert packed_run.branches == original.branches
    assert packed_run.taken_branches == original.taken_branches

    # Coverage accounting is exact and bounded.
    coverage = result.coverage
    assert 0.0 <= coverage.package_fraction <= 1.0
    assert (
        coverage.package_instructions + coverage.original_instructions
        == coverage.total_instructions
    )

    # Launch points target real package blocks.
    for (_fn, _label), (pkg, pkg_label) in result.packed.launch_map.items():
        assert pkg_label in result.packed.program.functions[pkg].cfg

    # Links stay inside the package set and never cross contexts.
    by_name = {p.name: p for p in result.packages}
    for package in result.packages:
        for exit_site in package.exits:
            if exit_site.linked_to is None:
                continue
            dest_name, dest_label = exit_site.linked_to
            dest_block = by_name[dest_name].find_block(dest_label)
            assert dest_block.context == exit_site.context

    # Expansion metrics are consistent.  (Replication may dip slightly
    # below 1.0 for single-package programs because layout's jump
    # elimination shrinks the package below the selected set.)
    row = result.expansion_row()
    assert row["pct_increase"] >= 0.0
    assert row["replication"] > 0.5 or row["pct_selected"] == 0.0


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=seed_strategy, config=config_strategy)
def test_oracle_stack_passes_on_generated_cases(seed, config):
    case = build_case(seed, config)
    report = run_oracle_stack(case)
    assert report.ok, report.render()
