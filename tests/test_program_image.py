"""Tests for program-level queries and the linked binary image."""

import pytest

from repro.isa.encoding import INSTRUCTION_BYTES
from repro.isa.instructions import Opcode
from repro.program import LinkError, Program, ProgramError, ProgramImage
from repro.program.builder import FunctionBuilder
from repro.program.image import TEXT_BASE
from repro.program.program import merge_programs


class TestProgram:
    def test_static_size(self, loop_program):
        assert loop_program.static_size() == 11

    def test_entry_must_exist(self, loop_program):
        with pytest.raises(ProgramError):
            Program(list(loop_program.functions.values()), entry="ghost")

    def test_duplicate_function_rejected(self, loop_program):
        main = loop_program.functions["main"]
        with pytest.raises(ProgramError):
            Program([main, main], entry="main")

    def test_validate_rejects_undefined_callee(self):
        fb = FunctionBuilder("main")
        b = fb.block("e")
        b.call("ghost")
        done = fb.block("x")
        done.halt()
        program = Program([fb.build()], entry="main")
        with pytest.raises(ProgramError, match="ghost"):
            program.validate()

    def test_branch_block_index(self, loop_program):
        index = loop_program.branch_block_index()
        locations = set(index.values())
        assert ("main", "cond") in locations
        assert ("work", "w0") in locations
        assert len(index) == 2

    def test_merge_programs(self, loop_program):
        fb = FunctionBuilder("extra")
        blk = fb.block("e")
        blk.ret()
        merged = merge_programs(loop_program, [fb.build()])
        assert set(merged.functions) == {"main", "work", "extra"}
        # The original program is untouched.
        assert "extra" not in loop_program.functions


class TestProgramImage:
    def test_entry_function_laid_out_first(self, loop_program):
        image = ProgramImage(loop_program)
        assert image.function_address["main"] == TEXT_BASE
        assert image.function_address["work"] > image.function_address["main"]

    def test_addresses_are_dense_and_aligned(self, loop_program):
        image = ProgramImage(loop_program)
        addresses = sorted(image.instruction_address.values())
        assert addresses[0] == TEXT_BASE
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {INSTRUCTION_BYTES}

    def test_image_size_matches_instruction_count(self, loop_program):
        image = ProgramImage(loop_program)
        assert image.size_bytes() == loop_program.static_size() * INSTRUCTION_BYTES

    def test_decode_matches_source_instructions(self, loop_program):
        image = ProgramImage(loop_program)
        for uid, address in image.instruction_address.items():
            decoded = image.decode_at(address)
            original = image.instruction_at(address)
            assert decoded.opcode is original.opcode

    def test_call_encodes_callee_entry_address(self, loop_program):
        image = ProgramImage(loop_program)
        call_inst = next(
            inst
            for _f, _b, inst in loop_program.iter_instructions()
            if inst.is_call
        )
        decoded = image.decode_at(image.address_of(call_inst))
        assert decoded.target == f"0x{image.function_address['work']:x}"

    def test_patch_branch_target(self, loop_program):
        image = ProgramImage(loop_program)
        branch = next(
            inst
            for _f, _b, inst in loop_program.iter_instructions()
            if inst.is_conditional_branch
        )
        new_target = image.address_of_block("work", "w2")
        image.patch_branch_target(branch, new_target)
        decoded = image.decode_at(image.address_of(branch))
        assert decoded.target == f"0x{new_target:x}"

    def test_unknown_block_lookup_raises(self, loop_program):
        image = ProgramImage(loop_program)
        with pytest.raises(LinkError):
            image.address_of_block("main", "ghost")
