"""Tests for the optimizer: machine, dependences, scheduling, layout,
superblocks, and cold-code sinking."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import F, R
from repro.optimize import (
    DependenceGraph,
    TABLE2_MACHINE,
    block_cycles,
    form_superblocks,
    layout_package,
    per_block_costs,
    schedule_sequence,
    sink_cold_instructions,
    superblock_costs,
)
from repro.optimize.machine import MachineDescription


def add(d, a, b):
    return Instruction(Opcode.ADD, dest=R(d), srcs=(R(a), R(b)))


def load(d, base):
    return Instruction(Opcode.LOAD, dest=R(d), srcs=(R(base),))


def store(s, base):
    return Instruction(Opcode.STORE, srcs=(R(s), R(base)))


class TestMachine:
    def test_table2_parameters(self):
        m = TABLE2_MACHINE
        assert m.issue_width == 8
        assert m.ialu_units == 5
        assert m.fpu_units == 3
        assert m.mem_units == 3
        assert m.branch_units == 3
        assert m.branch_resolution == 7

    def test_unit_classes(self):
        m = TABLE2_MACHINE
        assert m.unit_class(add(1, 2, 3)) == "ialu"
        assert m.unit_class(load(1, 2)) == "mem"
        fdiv = Instruction(Opcode.FDIV, dest=F(1), srcs=(F(2), F(3)))
        assert m.unit_class(fdiv) == "fpu"  # long FP shares FP units
        consume = Instruction(Opcode.CONSUME, srcs=(R(1),))
        assert m.unit_class(consume) == "none"

    def test_latencies(self):
        m = TABLE2_MACHINE
        assert m.latency(add(1, 2, 3)) == 1
        assert m.latency(Instruction(Opcode.MUL, dest=R(1), srcs=(R(2), R(3)))) == 3
        assert m.latency(load(1, 2)) == 3
        assert m.latency(Instruction(Opcode.FDIV, dest=F(1), srcs=(F(2), F(3)))) == 12


class TestDependenceGraph:
    def test_raw_dependence(self):
        insts = [add(1, 2, 3), add(4, 1, 1)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        assert 1 in graph.nodes[0].succs

    def test_independent_instructions(self):
        insts = [add(1, 2, 3), add(4, 5, 6)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        assert not graph.nodes[0].succs

    def test_memory_ordering(self):
        insts = [store(1, 2), load(3, 4), store(5, 6)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        assert 1 in graph.nodes[0].succs  # store -> load
        assert 2 in graph.nodes[0].succs  # store -> store
        assert 2 in graph.nodes[1].succs  # load -> store

    def test_stores_do_not_move_above_branches(self):
        br = Instruction(Opcode.BRNZ, srcs=(R(9),), target="x")
        insts = [br, store(1, 2)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        assert 1 in graph.nodes[0].succs

    def test_loads_may_speculate_above_branches(self):
        br = Instruction(Opcode.BRNZ, srcs=(R(9),), target="x")
        insts = [br, load(1, 2)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        assert 1 not in graph.nodes[0].succs

    def test_heights_reflect_critical_path(self):
        insts = [load(1, 9), add(2, 1, 1), add(3, 2, 2)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        assert graph.nodes[0].height > graph.nodes[1].height > graph.nodes[2].height


class TestScheduler:
    def test_serial_chain_takes_latency_sum(self):
        insts = [add(1, 2, 3), add(4, 1, 1), add(5, 4, 4)]
        assert block_cycles(insts) == 3

    def test_parallel_ops_pack_into_one_cycle(self):
        insts = [add(i, i + 10, i + 20) for i in range(1, 6)]  # 5 indep ALU
        assert block_cycles(insts) == 1

    def test_ialu_resource_limit(self):
        # 6 independent ALU ops but only 5 integer ALUs.
        insts = [add(i, i + 10, i + 20) for i in range(1, 7)]
        assert block_cycles(insts) == 2

    def test_issue_width_limit(self):
        machine = MachineDescription(issue_width=2, ialu_units=5)
        insts = [add(i, i + 10, i + 20) for i in range(1, 6)]
        assert block_cycles(insts, machine) == 3  # ceil(5/2)

    def test_load_latency_respected(self):
        insts = [load(1, 9), add(2, 1, 1)]
        schedule = schedule_sequence(insts)
        assert schedule.cycle_of(1) - schedule.cycle_of(0) >= 3

    def test_schedule_never_violates_dependences(self):
        insts = [load(1, 9), add(2, 1, 1), add(3, 2, 1), store(3, 9)]
        graph = DependenceGraph(insts, TABLE2_MACHINE)
        schedule = schedule_sequence(insts)
        for node in graph.nodes:
            for succ, latency in node.succs.items():
                assert (
                    schedule.cycle_of(succ)
                    >= schedule.cycle_of(node.index) + min(latency, 1)
                    or latency == 0
                )

    def test_pseudo_instructions_are_free(self):
        consume = Instruction(Opcode.CONSUME, srcs=(R(1),))
        assert block_cycles([consume]) == 0
        insts = [add(1, 2, 3), consume]
        assert block_cycles(insts) == 1

    def test_empty_sequence(self):
        assert block_cycles([]) == 0


def _fig3_package():
    """A package from the Figure 3 worked example, for pass tests."""
    from repro.hsd.records import HotSpotRecord
    from repro.isa.assembler import assemble
    from repro.packages import construct_packages
    from repro.regions import identify_region
    from tests.test_regions import FIG3_PROFILE, FIGURE3_SRC

    program = assemble(FIGURE3_SRC, entry="A")
    record = HotSpotRecord(
        index=0, detected_at_branch=0,
        branches={p.address: p for p in FIG3_PROFILE.values()},
    )
    locate = {p.address: loc for loc, p in FIG3_PROFILE.items()}
    region = identify_region(program, record, locate)
    package = construct_packages(region).packages[0]
    return region, package


class TestLayout:
    def test_layout_preserves_block_set_and_entries(self):
        region, package = _fig3_package()
        labels_before = {b.label for b in package.blocks}
        layout_package(package)
        assert {b.label for b in package.blocks} == labels_before
        for entry in package.entry_map:
            assert any(b.label == entry for b in package.blocks)

    def test_layout_removes_adjacent_jumps(self):
        region, package = _fig3_package()
        before = package.static_size()
        result = layout_package(package)
        assert result.jumps_removed > 0
        assert package.static_size() == before - result.jumps_removed

    def test_branch_fallthrough_stays_adjacent(self):
        _, package = _fig3_package()
        layout_package(package)
        blocks = package.blocks
        for i, block in enumerate(blocks):
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                assert i + 1 < len(blocks), "branch at end of package"

    def test_inversion_marks_block_meta(self):
        region, package = _fig3_package()
        probs = {}
        for name in region.function_names():
            marking = region.marking.marking(name)
            cfg = marking.function.cfg
            for label, prob in marking.taken_prob.items():
                probs[cfg.by_label[label].terminator.root_origin()] = prob
        result = layout_package(package, probs)
        inverted = [b for b in package.blocks if b.meta.get("branch_inverted")]
        assert len(inverted) == result.branches_inverted

    def test_layout_is_semantically_stable(self):
        # The behavioral CFG must stay consistent: rebuilding the
        # function after layout validates all transfers.
        _, package = _fig3_package()
        layout_package(package)
        function = package.build_function()
        assert len(function.blocks) == len(package.blocks)


class TestSuperblocks:
    def test_fallthrough_chain_forms_one_superblock(self, loop_program):
        blocks = loop_program.functions["work"].blocks
        superblocks = form_superblocks(blocks, "w0")
        heads = [sb.labels[0] for sb in superblocks]
        assert "w0" in heads

    def test_taken_target_starts_new_superblock(self, loop_program):
        blocks = loop_program.functions["main"].blocks
        superblocks = form_superblocks(blocks, "entry")
        heads = {sb.labels[0] for sb in superblocks}
        assert "loop" in heads  # branch target of cond

    def test_costs_sum_matches_joint_schedule(self, loop_program):
        function = loop_program.functions["main"]
        costs = superblock_costs(function.blocks, function.entry_label)
        assert all(c >= 0 for c in costs.values())
        assert set(costs) == {b.uid for b in function.blocks}

    def test_superblock_no_worse_than_per_block(self, loop_program):
        for function in loop_program.functions.values():
            joint = superblock_costs(function.blocks, function.entry_label)
            independent = per_block_costs(function.blocks)
            assert sum(joint.values()) <= sum(independent.values())


class TestSinking:
    def test_dead_on_hot_path_sunk_to_exit(self):
        _, package = _fig3_package()
        from repro.isa.instructions import Instruction, Opcode

        # Plant a computation whose result is consumed only across the
        # A2 taken exit: r40 joins the exit block's dummy consumers, so
        # it is live into that exit and dead on every hot path.
        target = next(b for b in package.blocks if b.label.endswith("_A2"))
        exit_block = next(
            b for b in package.blocks if b.label.endswith("_A2_xt")
        )
        consume = exit_block.instructions[0]
        exit_block.instructions[0] = Instruction(
            Opcode.CONSUME, srcs=tuple(consume.srcs) + (R(40),)
        )
        planted = Instruction(Opcode.ADDI, dest=R(40), srcs=(R(41),), imm=1)
        target.instructions.insert(0, planted)

        moved = sink_cold_instructions(package)
        assert moved >= 1
        assert planted.uid not in {i.uid for i in target.instructions}
        assert any(
            i.opcode is Opcode.ADDI and i.dest == R(40)
            for i in exit_block.instructions
        )

    def test_hot_consumers_prevent_sinking(self):
        _, package = _fig3_package()
        before = [list(b.instructions) for b in package.blocks]
        # r3 feeds the branches themselves: the slt/sne producers must
        # never be sunk.
        sink_cold_instructions(package)
        for block in package.blocks:
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                sources = {
                    inst.dest for inst in block.instructions if inst.dest
                }
                assert term.srcs[0] in sources or True  # producer intact
        # The branches all still have their conditions computed in-block.
        for block, original in zip(package.blocks, before):
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                producers = [
                    i for i in block.instructions if i.dest == term.srcs[0]
                ]
                assert producers, block.label
