"""Tests for the instruction model (classification, provenance, rendering)."""

from repro.isa.instructions import FuClass, Instruction, Opcode
from repro.isa.registers import F, R


class TestClassification:
    def test_fu_classes_match_table2_unit_types(self):
        assert Opcode.ADD.fu_class is FuClass.IALU
        assert Opcode.FADD.fu_class is FuClass.FPU
        assert Opcode.FDIV.fu_class is FuClass.LONG_FP
        assert Opcode.LOAD.fu_class is FuClass.MEM
        assert Opcode.BRZ.fu_class is FuClass.BRANCH

    def test_conditional_branch_flags(self):
        br = Instruction(Opcode.BRNZ, srcs=(R(1),), target="x")
        assert br.is_control and br.is_conditional_branch
        assert not br.is_call and not br.is_return

    def test_call_and_return_flags(self):
        call = Instruction(Opcode.CALL, target="f")
        ret = Instruction(Opcode.RET)
        assert call.is_call and call.is_control
        assert ret.is_return and ret.is_control

    def test_memory_flags(self):
        load = Instruction(Opcode.LOAD, dest=R(1), srcs=(R(2),))
        store = Instruction(Opcode.STORE, srcs=(R(1), R(2)))
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory and not store.is_load

    def test_consume_is_pseudo(self):
        consume = Instruction(Opcode.CONSUME, srcs=(R(1), F(2)))
        assert consume.is_pseudo


class TestDataflowSets:
    def test_defs_and_uses_of_alu(self):
        inst = Instruction(Opcode.ADD, dest=R(3), srcs=(R(1), R(2)))
        assert inst.defs() == (R(3),)
        assert inst.uses() == (R(1), R(2))

    def test_store_has_no_defs(self):
        store = Instruction(Opcode.STORE, srcs=(R(1), R(2)))
        assert store.defs() == ()


class TestProvenance:
    def test_uids_are_unique(self):
        uids = {Instruction(Opcode.NOP).uid for _ in range(100)}
        assert len(uids) == 100

    def test_clone_records_origin(self):
        original = Instruction(Opcode.ADD, dest=R(1), srcs=(R(2), R(3)))
        copy = original.clone()
        assert copy.uid != original.uid
        assert copy.origin == original.uid
        assert copy.root_origin() == original.uid

    def test_clone_of_clone_keeps_root_origin(self):
        original = Instruction(Opcode.ADD, dest=R(1), srcs=(R(2), R(3)))
        second = original.clone().clone()
        assert second.root_origin() == original.uid

    def test_retargeted_preserves_uid(self):
        br = Instruction(Opcode.JUMP, target="a")
        patched = br.retargeted("pkg::entry")
        assert patched.uid == br.uid
        assert patched.target == "pkg::entry"
        assert br.target == "a"  # the source instruction is untouched


class TestRendering:
    def test_render_alu(self):
        inst = Instruction(Opcode.ADD, dest=R(3), srcs=(R(1), R(2)))
        assert inst.render() == "add r3, r1, r2"

    def test_render_immediate(self):
        inst = Instruction(Opcode.ADDI, dest=R(3), srcs=(R(1),), imm=4)
        assert inst.render() == "addi r3, r1, 4"

    def test_render_memory(self):
        load = Instruction(Opcode.LOAD, dest=R(1), srcs=(R(2),), imm=8)
        assert load.render() == "load r1, [r2+8]"
        store = Instruction(Opcode.STORE, srcs=(R(1), R(2)), imm=0)
        assert store.render() == "store r1, [r2+0]"

    def test_render_branch_and_call(self):
        assert Instruction(Opcode.BRZ, srcs=(R(1),), target="x").render() == "brz r1, x"
        assert Instruction(Opcode.CALL, target="f").render() == "call f"
        assert Instruction(Opcode.RET).render() == "ret"
