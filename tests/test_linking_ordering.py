"""Tests for package linking and ordering (paper section 3.3.4)."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.packages import (
    BranchInstance,
    Link,
    Package,
    PackageExit,
    apply_links,
    compute_links,
    find_link_target,
    order_group,
    order_packages,
    rank_ordering,
)
from repro.packages.ordering import rank_from_links
from repro.program.block import BasicBlock


def mock_package(name, branch_count, root="A"):
    package = Package(name=name, region_index=0, root=root)
    package.branch_instances = [
        BranchInstance(origin_uid=i, context=(), bias="U", block_label=f"{name}_b{i}")
        for i in range(branch_count)
    ]
    return package


class TestRankFormula:
    def test_paper_example_yields_0_64(self):
        """Figure 7(c): ratios 2/5, 2/5, 3/6 -> rank 0.64."""
        packages = [mock_package("p2", 5), mock_package("p1", 5), mock_package("p3", 6)]
        links = (
            [Link("x", f"e{i}", "p2", "t") for i in range(2)]
            + [Link("x", f"f{i}", "p1", "t") for i in range(2)]
            + [Link("x", f"g{i}", "p3", "t") for i in range(3)]
        )
        assert rank_from_links(packages, links) == pytest.approx(0.64)

    def test_rank_prefers_reachable_first_package(self):
        heavy = mock_package("heavy", 4)
        light = mock_package("light", 4)
        links = [Link("x", "e", "heavy", "t")] * 2
        front = rank_from_links([heavy, light], links)
        back = rank_from_links([light, heavy], links)
        assert front > back

    def test_zero_branch_package_contributes_zero(self):
        a = mock_package("a", 0)
        assert rank_from_links([a], [Link("x", "e", "a", "t")]) == 0.0


def exit_package(name, exit_target, exit_context, index_entries, branch_count=2):
    """Package with one exit and a location index for link matching."""
    package = mock_package(name, branch_count)
    exit_block = BasicBlock(
        f"{name}_exit",
        [Instruction(Opcode.JUMP, target=f"orig::{exit_target[1]}")],
        continuations=(("orig", "cont"),),
        context=exit_context,
    )
    package.blocks.append(exit_block)
    package.exits.append(
        PackageExit(
            label=exit_block.label,
            target=exit_target,
            direction="taken",
            context=exit_context,
        )
    )
    for location, context, label in index_entries:
        package.location_index[(location, context)] = label
    return package


class TestLinking:
    def test_link_requires_identical_context(self):
        """The B1'/B1'' rule: same branch, different inlining context,
        never linkable."""
        src = exit_package("p1", ("B", "B3"), (77,), [])
        dst = exit_package("p2", ("B", "B9"), (), [(("B", "B3"), (88,), "p2_copy")])
        assert find_link_target(src.exits[0], src, [src, dst]) is None

    def test_link_to_matching_context(self):
        src = exit_package("p1", ("B", "B3"), (77,), [])
        dst = exit_package("p2", ("B", "B9"), (), [(("B", "B3"), (77,), "p2_copy")])
        link = find_link_target(src.exits[0], src, [src, dst])
        assert link == Link("p1", "p1_exit", "p2", "p2_copy")

    def test_first_compatible_to_the_right_wins(self):
        src = exit_package("p1", ("A", "x"), (), [])
        mid = exit_package("p2", ("A", "y"), (), [(("A", "x"), (), "p2_copy")])
        far = exit_package("p3", ("A", "z"), (), [(("A", "x"), (), "p3_copy")])
        link = find_link_target(src.exits[0], src, [src, mid, far])
        assert link.dest == "p2"

    def test_wraparound(self):
        left = exit_package("p1", ("A", "y"), (), [(("A", "x"), (), "p1_copy")])
        src = exit_package("p2", ("A", "x"), (), [])
        link = find_link_target(src.exits[0], src, [left, src])
        assert link.dest == "p1"

    def test_apply_links_retargets_and_drops_continuations(self):
        src = exit_package("p1", ("B", "B3"), (5,), [])
        dst = exit_package("p2", ("B", "B9"), (), [(("B", "B3"), (5,), "p2_copy")])
        links = compute_links([src, dst])
        assert len(links) == 1
        apply_links([src, dst], links)
        exit_block = src.find_block("p1_exit")
        assert exit_block.instructions[-1].target == "p2::p2_copy"
        assert exit_block.continuations == ()
        assert src.exits[0].linked_to == ("p2", "p2_copy")

    def test_unlinkable_exit_keeps_original_target(self):
        src = exit_package("p1", ("B", "B3"), (), [])
        other = exit_package("p2", ("B", "B9"), (), [])
        links = compute_links([src, other])
        assert links == []
        assert src.find_block("p1_exit").instructions[-1].target == "orig::B3"


class TestOrdering:
    def two_way_group(self):
        # p1's exit reaches code that only p2 has, and vice versa.
        p1 = exit_package(
            "p1", ("A", "cold1"), (), [(("A", "cold2"), (), "p1_copy")],
            branch_count=2,
        )
        p2 = exit_package(
            "p2", ("A", "cold2"), (), [(("A", "cold1"), (), "p2_copy")],
            branch_count=4,
        )
        return p1, p2

    def test_order_group_picks_highest_rank(self):
        p1, p2 = self.two_way_group()
        group = order_group([p1, p2])
        # Both orderings link symmetrically (1 incoming each): ranks are
        # r1 + r1*r2; starting with the smaller package maximizes r1.
        expected = 1 / 2 + (1 / 2) * (1 / 4)
        assert group.rank == pytest.approx(expected)
        assert [p.name for p in group.packages] == ["p1", "p2"]
        assert len(group.links) == 2

    def test_rank_ordering_helper_matches(self):
        p1, p2 = self.two_way_group()
        assert rank_ordering([p1, p2]) == pytest.approx(0.625)
        assert rank_ordering([p2, p1]) == pytest.approx(0.375)

    def test_groups_split_by_root(self):
        a1 = mock_package("a1", 1, root="A")
        a2 = mock_package("a2", 1, root="A")
        b1 = mock_package("b1", 1, root="B")
        groups = order_packages([a1, a2, b1])
        assert [g.root for g in groups] == ["A", "B"]
        assert len(groups[0].packages) == 2
        assert len(groups[1].packages) == 1

    def test_singleton_group_has_no_links(self):
        group = order_group([mock_package("solo", 3)])
        assert group.links == []
        assert group.rank == 0.0
