"""Tests for the assembler / disassembler round trip."""

import pytest

from repro.isa.assembler import AssemblyError, assemble, assemble_function
from repro.isa.disassembler import disassemble, disassemble_image
from repro.isa.instructions import Opcode
from repro.isa.registers import F, R
from repro.program import ProgramImage


class TestAssembleBasics:
    def test_functions_and_blocks(self, loop_program):
        assert set(loop_program.functions) == {"main", "work"}
        main = loop_program.functions["main"]
        assert [b.label for b in main.blocks] == ["entry", "loop", "cond", "tail"]

    def test_entry_block_is_first(self, loop_program):
        assert loop_program.functions["main"].entry_label == "entry"

    def test_instruction_operands(self, loop_program):
        entry = loop_program.functions["main"].cfg.by_label["entry"]
        movi = entry.instructions[0]
        assert movi.opcode is Opcode.MOVI
        assert movi.dest == R(1)
        assert movi.imm == 0

    def test_memory_operand_syntax(self):
        program = assemble(
            """
            func main:
              e:
                load r1, [r2+16]
                store r1, [r2+-8]
                fload f1, [r3]
                halt
            """
        )
        block = program.functions["main"].cfg.by_label["e"]
        assert block.instructions[0].imm == 16
        assert block.instructions[1].imm == -8
        assert block.instructions[2].dest == F(1)
        assert block.instructions[2].imm == 0

    def test_comments_and_blank_lines_ignored(self):
        program = assemble(
            """
            ; leading comment
            func main:
              e:
                movi r1, 1  # trailing comment
                halt
            """
        )
        assert program.functions["main"].size() == 2

    def test_implicit_entry_block(self):
        program = assemble("func main:\n  movi r1, 1\n  halt\n")
        assert program.functions["main"].entry_label == "entry"

    def test_implicit_block_after_terminator(self):
        program = assemble(
            """
            func main:
              e:
                call work
                halt
            func work:
              w:
                ret
            """
        )
        labels = [b.label for b in program.functions["main"].blocks]
        assert labels[0] == "e"
        assert len(labels) == 2  # halt landed in an implicit block


class TestAssembleErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("func main:\n  e:\n    frobnicate r1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("func main:\n  e:\n    add r1, r2\n")

    def test_instruction_outside_function(self):
        with pytest.raises(AssemblyError, match="outside"):
            assemble("movi r1, 1\n")

    def test_undefined_call_target_fails_validation(self):
        with pytest.raises(Exception):
            assemble("func main:\n  e:\n    call ghost\n  x:\n    halt\n")

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblyError, match="memory operand"):
            assemble("func main:\n  e:\n    load r1, (r2)\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("func main:\n  e:\n    bogus\n")


class TestRoundTrip:
    def test_disassemble_reassemble_fixed_point(self, loop_program):
        text = disassemble(loop_program)
        again = assemble(text)
        assert disassemble(again) == text

    def test_image_disassembly_reflects_layout(self, loop_program):
        image = ProgramImage(loop_program)
        listing = disassemble_image(image)
        assert "main/entry:" in listing
        assert "work/w0:" in listing
        # Branch targets appear as absolute hex addresses.
        loop_addr = image.address_of_block("main", "loop")
        assert f"0x{loop_addr:x}" in listing

    def test_assemble_function_helper(self, diamond_function):
        assert diamond_function.name == "dia"
        assert [b.label for b in diamond_function.blocks] == [
            "top",
            "left",
            "right",
            "merge",
        ]
