"""Gap-fill tests: rendering, model helpers, and edge behaviours."""

import pytest

from repro.engine import (
    BehaviorModel,
    BlockExecutor,
    ExecutionLimits,
    PhaseScript,
    StopReason,
)
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_function
from repro.regions import RegionConfig, Temp


class TestRendering:
    def test_program_render_lists_entry_first(self, loop_program):
        text = loop_program.render()
        assert text.index("func main:") < text.index("func work:")
        assert "brnz r3, loop" in text

    def test_block_render_indents_instructions(self, loop_program):
        block = loop_program.functions["main"].cfg.by_label["loop"]
        rendered = block.render()
        assert rendered.splitlines()[0] == "loop:"
        assert rendered.splitlines()[1].startswith("  ")

    def test_disassemble_packed_program_includes_packages(self):
        from tests.test_postlink import build_semantic_packed

        _program, packed = build_semantic_packed()
        text = disassemble(packed.program)
        assert any(name in text for name in packed.package_names)
        assert "consume" in text          # exit-block dummy consumers
        assert "::" in text               # cross-function transfers

    def test_disassemble_function_roundtrip_stable(self, diamond_function):
        text = disassemble_function(diamond_function)
        assert text.startswith("func dia:")
        assert "brnz r1, right" in text


class TestExecutorEdges:
    def test_step_limit_stops_runaway(self):
        # A jump-only infinite loop consumes steps but no branches.
        program = assemble(
            """
            func main:
              a:
                jump b
              b:
                jump a
            """
        )
        executor = BlockExecutor(
            program,
            BehaviorModel(),
            PhaseScript.from_pairs([(0, 100)]),
            limits=ExecutionLimits(max_steps=500),
        )
        summary = executor.run()
        assert summary.stop_reason is StopReason.STEP_LIMIT
        assert summary.steps > 499

    def test_run_from_explicit_start(self, loop_program):
        executor = BlockExecutor(
            loop_program,
            BehaviorModel(),
            PhaseScript.from_pairs([(0, 100)]),
            limits=ExecutionLimits(max_branches=1),
        )
        summary = executor.run(start=("main", "tail"))
        assert summary.stop_reason is StopReason.HALTED
        assert summary.instructions == 1

    def test_taken_fraction_property(self, loop_program):
        executor = BlockExecutor(
            loop_program,
            BehaviorModel(default_prob=1.0),
            PhaseScript.from_pairs([(0, 1000)]),
            limits=ExecutionLimits(max_branches=10),
        )
        summary = executor.run()
        assert summary.taken_fraction == 1.0


class TestRegionMarkingQueries:
    def test_aggregate_queries(self):
        from repro.hsd.records import BranchProfile, HotSpotRecord
        from repro.regions import identify_region
        from tests.test_regions import FIG3_PROFILE, FIGURE3_SRC

        program = assemble(FIGURE3_SRC, entry="A")
        record = HotSpotRecord(
            index=0, detected_at_branch=0,
            branches={p.address: p for p in FIG3_PROFILE.values()},
        )
        locate = {p.address: loc for loc, p in FIG3_PROFILE.items()}
        region = identify_region(program, record, locate)
        marking = region.marking
        assert set(marking.hot_functions()) == {"A", "B"}
        assert marking.temperature_of("A", "A7") is Temp.COLD
        assert marking.temperature_of("ghost", "x") is Temp.UNKNOWN
        assert marking.hot_instruction_count() == region.hot_instruction_count()

    def test_region_config_validation(self):
        with pytest.raises(ValueError):
            RegionConfig(hot_arc_fraction=1.5)
        with pytest.raises(ValueError):
            RegionConfig(max_growth_blocks=-1)


class TestPackageHelpers:
    def test_find_block_and_exit_lookup(self):
        from repro.hsd.records import HotSpotRecord
        from repro.packages import construct_packages
        from repro.regions import identify_region
        from tests.test_regions import FIG3_PROFILE, FIGURE3_SRC

        program = assemble(FIGURE3_SRC, entry="A")
        record = HotSpotRecord(
            index=0, detected_at_branch=0,
            branches={p.address: p for p in FIG3_PROFILE.values()},
        )
        locate = {p.address: loc for loc, p in FIG3_PROFILE.items()}
        region = identify_region(program, record, locate)
        package = construct_packages(region).packages[0]

        exit_site = package.exits[0]
        assert package.exit_by_label(exit_site.label) is exit_site
        assert package.find_block(exit_site.label).label == exit_site.label
        with pytest.raises(KeyError):
            package.find_block("nope")
        with pytest.raises(KeyError):
            package.exit_by_label("nope")
        assert package.entry_locations() == [("A", "A1")]

    def test_rewrite_stats_launch_points_sum(self):
        from repro.postlink.rewriter import RewriteStats

        stats = RewriteStats(branch_patches=2, jump_patches=1,
                             call_patches=3, trampolines=4)
        assert stats.launch_points == 10


class TestWorkloadConvenience:
    def test_executor_carries_hooks(self, loop_program):
        from repro.workloads.base import Workload

        events = []
        workload = Workload(
            "w", loop_program, BehaviorModel(default_prob=1.0),
            PhaseScript.from_pairs([(0, 100)]),
            ExecutionLimits(max_branches=5),
        )
        summary = workload.run(
            branch_hooks=[lambda *a: events.append(a)]
        )
        assert len(events) == summary.branches == 5
