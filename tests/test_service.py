"""Fleet profile service: aggregation, artifact store, packing farm."""

import json
import os

import pytest

from repro.errors import ProfileError, ReproError, ServiceError
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.hsd.serialize import ProfileFormatError, save_profile, make_provenance
from repro.service import (
    ArtifactStore,
    FarmConfig,
    MergePolicy,
    ClientRun,
    ingest_dir,
    ingest_paths,
    merge_runs,
    pack_fleet,
)
from repro.service.clients import simulate_fleet


def rec(index, branches, detected=0):
    """branches = {address: (executed, taken)}"""
    return HotSpotRecord(
        index=index,
        detected_at_branch=detected,
        branches={
            addr: BranchProfile(addr, executed, taken)
            for addr, (executed, taken) in branches.items()
        },
    )


def client(run_id, records, epoch=0, seed=None):
    return ClientRun(
        run_id=run_id, seed=seed, epoch=epoch, path="", records=records
    )


class TestMerge:
    def test_same_hot_spot_clusters_across_runs(self):
        record = {0x10: (100, 90), 0x18: (80, 10)}
        runs = [client(f"r{i}", [rec(0, record)]) for i in range(3)]
        fleet = merge_runs(runs)
        assert len(fleet.phases) == 1
        phase = fleet.phases[0]
        assert phase.provenance.run_ids == ["r0", "r1", "r2"]
        assert phase.provenance.detections == 3
        assert phase.provenance.agreement == pytest.approx(1.0)

    def test_dissimilar_records_stay_separate_phases(self):
        runs = [
            client("r0", [rec(0, {0x10: (100, 90)})]),
            client("r1", [rec(0, {0x99: (100, 90)})]),
        ]
        fleet = merge_runs(runs)
        assert len(fleet.phases) == 2

    def test_execution_weighted_counter_averaging(self):
        # Weight = each record's total executed count: the heavy run
        # (400) pulls the consensus 4x harder than the light one (100).
        runs = [
            client("light", [rec(0, {0x10: (100, 90)})]),
            client("heavy", [rec(0, {0x10: (400, 320)})]),
        ]
        (phase,) = merge_runs(runs).phases
        merged = phase.record.branches[0x10]
        assert merged.executed == round((100 * 100 + 400 * 400) / 500)
        assert merged.taken == round((100 * 90 + 400 * 320) / 500)

    def test_branch_quorum_drops_minority_branches(self):
        shared = {0x10: (100, 90), 0x18: (100, 20),
                  0x20: (100, 80), 0x28: (100, 50)}
        outlier = dict(shared)
        # Only 1 of 3 contributors saw it — and 1-of-5 missing stays
        # under the 30% similarity rule, so the record still clusters.
        outlier[0x80] = (50, 45)
        runs = [
            client("r0", [rec(0, shared)]),
            client("r1", [rec(0, shared)]),
            client("r2", [rec(0, outlier)]),
        ]
        (phase,) = merge_runs(runs).phases
        assert set(phase.record.branches) == set(shared)
        assert 0x80 not in phase.record.branches

    def test_min_runs_quorum_drops_lonely_phases(self):
        runs = [
            client("r0", [rec(0, {0x10: (100, 90)})]),
            client("r1", [rec(0, {0x10: (100, 90)})]),
            client("r2", [rec(1, {0x99: (100, 90)})]),
        ]
        fleet = merge_runs(runs, MergePolicy(min_runs=2))
        assert len(fleet.phases) == 1
        assert 0x10 in fleet.phases[0].record.branches

    def test_provenance_epochs_and_staleness(self):
        runs = [
            client("r0", [rec(0, {0x10: (100, 90)})], epoch=1),
            client("r1", [rec(0, {0x10: (100, 90)})], epoch=3),
            client("r2", [rec(0, {0x99: (100, 90)})], epoch=7),
        ]
        fleet = merge_runs(runs)
        assert fleet.max_epoch == 7
        stale, fresh = fleet.phases
        assert (stale.provenance.first_epoch, stale.provenance.last_epoch) == (1, 3)
        assert stale.provenance.staleness == 4
        assert fresh.provenance.staleness == 0

    def test_merge_without_usable_runs_raises_typed_error(self):
        with pytest.raises(ServiceError):
            merge_runs([])

    def test_digest_is_deterministic_and_content_sensitive(self):
        runs = [client("r0", [rec(0, {0x10: (100, 90)})])]
        assert merge_runs(runs).digest() == merge_runs(runs).digest()
        heavier = [client("r0", [rec(0, {0x10: (200, 180)})])]
        assert merge_runs(runs).digest() != merge_runs(heavier).digest()


class TestIngest:
    def write_good(self, path, run_id, epoch=0):
        save_profile(
            path,
            [rec(0, {0x10: (100, 90)})],
            meta={"provenance": make_provenance(run_id, seed=1, epoch=epoch)},
        )

    def test_corrupt_documents_are_quarantined_not_raised(self, tmp_path):
        self.write_good(tmp_path / "good-b.json", "run-b")
        self.write_good(tmp_path / "good-a.json", "run-a")
        (tmp_path / "truncated.json").write_text('{"format": "vacuum-pack')
        (tmp_path / "stale.json").write_text(
            json.dumps({"format": "vacuum-packing-profile", "version": 99})
        )
        (tmp_path / "no-records.json").write_text(
            json.dumps({"format": "vacuum-packing-profile", "version": 2})
        )
        result = ingest_dir(tmp_path)
        assert [run.run_id for run in result.runs] == ["run-a", "run-b"]
        assert len(result.rejected) == 3
        assert all(
            r.exception_type == "ProfileFormatError" for r in result.rejected
        )
        assert all(r.hint for r in result.rejected)

    def test_v1_document_ingests_with_default_epoch(self, tmp_path):
        document = {
            "format": "vacuum-packing-profile",
            "version": 1,
            "meta": {},
            "records": [
                {"index": 0, "detected_at_branch": 0,
                 "branches": [{"address": 16, "executed": 10, "taken": 9}]}
            ],
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(document))
        (run,) = ingest_paths([path]).runs
        assert run.epoch == 0
        assert run.run_id == "v1"  # falls back to the file stem
        assert run.records[0].branches[16].taken == 9

    def test_missing_directory_is_a_service_error(self, tmp_path):
        with pytest.raises(ServiceError) as info:
            ingest_dir(tmp_path / "nope")
        assert isinstance(info.value, ReproError)


class TestStalenessEdges:
    def test_reobservation_at_fleet_max_epoch_resets_staleness(self):
        # A phase last corroborated at the fleet's newest epoch is
        # fresh, no matter how long ago it was first seen.
        runs = [
            client("r0", [rec(0, {0x10: (100, 90)})], epoch=1),
            client("r1", [rec(0, {0x10: (100, 90)})], epoch=5),
            client("r2", [rec(1, {0x99: (100, 90)})], epoch=5),
        ]
        fleet = merge_runs(runs)
        assert fleet.max_epoch == 5
        phase = next(
            p for p in fleet.phases if 0x10 in p.record.branches
        )
        assert phase.provenance.first_epoch == 1
        assert phase.provenance.last_epoch == 5
        assert phase.provenance.staleness == 0

    def test_epoch_window_ages_out_old_runs(self):
        old = client("old", [rec(0, {0x10: (100, 90)})], epoch=0)
        new = client("new", [rec(1, {0x99: (100, 90)})], epoch=10)
        fleet = merge_runs([old, new], MergePolicy(epoch_window=2))
        assert fleet.aged_out == 1
        (phase,) = fleet.phases
        assert 0x99 in phase.record.branches

    def test_replayed_ingest_does_not_resurrect_aged_out_phase(self):
        # The same stale document arriving twice (an upload replay)
        # must not out-vote the window: aged-out is decided purely by
        # epoch, not by how many copies showed up.
        old = client("old", [rec(0, {0x10: (100, 90)})], epoch=0)
        replay = client("old-again", [rec(0, {0x10: (100, 90)})], epoch=0)
        new = client("new", [rec(1, {0x99: (100, 90)})], epoch=10)
        fleet = merge_runs([old, replay, new], MergePolicy(epoch_window=2))
        assert fleet.aged_out == 2
        assert all(
            0x10 not in p.record.branches for p in fleet.phases
        )

    def test_max_epoch_skew_clamps_a_runaway_clock(self):
        from repro import obs

        honest = [
            client(f"r{i}", [rec(0, {0x10: (100, 90)})], epoch=i)
            for i in range(3)
        ]
        skewed = client("skewed", [rec(1, {0x99: (100, 90)})],
                        epoch=10_000)
        policy = MergePolicy(epoch_window=4, max_epoch_skew=2)
        before = obs.default_registry().counter(
            "service.merge.epoch_clamped"
        )
        fleet = merge_runs(honest + [skewed], policy)
        # Ceiling = median honest epoch (1) + skew (2): one bad clock
        # cannot define the fleet max epoch and age everyone else out.
        assert fleet.max_epoch == 3
        assert fleet.aged_out == 0
        assert len(fleet.phases) == 2
        assert obs.default_registry().counter(
            "service.merge.epoch_clamped"
        ) == before + 1

    def test_aged_out_phase_that_recurs_gets_a_fresh_cluster(self):
        # Streaming decay semantics: once every contribution to a
        # cluster has aged out of the epoch window, the cluster goes
        # dormant — a later recurrence of the same hot spot founds a
        # *fresh* cluster whose epoch bounds start at the recurrence,
        # not at the long-dead sightings.
        from repro.service import IncrementalAggregator

        policy = MergePolicy(epoch_window=2)
        agg = IncrementalAggregator(policy)
        shape = {0x10: (100, 90), 0x18: (80, 10)}
        agg.ingest_run(client("old", [rec(0, shape)], epoch=0))
        agg.ingest_run(client("new", [rec(0, {0x99: (100, 90)})], epoch=10))
        fleet = agg.snapshot()
        assert fleet.aged_out == 1
        assert all(0x10 not in p.record.branches for p in fleet.phases)

        agg.ingest_run(client("recur", [rec(0, shape)], epoch=10))
        fleet = agg.snapshot()
        phase = next(
            p for p in fleet.phases if 0x10 in p.record.branches
        )
        # Fresh provenance: only the recurrence contributes.
        assert phase.provenance.run_ids == ["recur"]
        assert phase.provenance.first_epoch == 10
        assert phase.provenance.last_epoch == 10
        assert phase.provenance.staleness == 0
        # And the batch aggregator agrees on the final state.
        batch = merge_runs([
            client("old", [rec(0, shape)], epoch=0),
            client("new", [rec(0, {0x99: (100, 90)})], epoch=10),
            client("recur", [rec(0, shape)], epoch=10),
        ], policy)
        from repro.service import profiles_equivalent
        assert profiles_equivalent(fleet, batch)

    def test_skew_clamp_interacts_with_aging_order_invariantly(self):
        # A runaway clock must not age the honest fleet out — and that
        # must hold no matter whether the skewed document arrives
        # first or last.  The clamp ceiling (median + skew) and the
        # window are both evaluated lazily at snapshot time, so an
        # early skewed arrival cannot define a transient max epoch
        # that permanently evicts honest runs.
        import itertools

        from repro.service import IncrementalAggregator, equivalence_diffs

        policy = MergePolicy(epoch_window=4, max_epoch_skew=2)
        honest = [
            client(f"r{i}", [rec(0, {0x10: (100, 90)})], epoch=i)
            for i in range(3)
        ]
        skewed = client("skewed", [rec(1, {0x99: (100, 90)})],
                        epoch=10_000)
        batch = merge_runs(honest + [skewed], policy)
        assert batch.max_epoch == 3  # median 1 + skew 2
        assert batch.aged_out == 0
        for order in itertools.permutations(honest + [skewed]):
            agg = IncrementalAggregator(policy)
            for run in order:
                agg.ingest_run(run)
            snap = agg.snapshot()
            assert snap.max_epoch == 3
            assert snap.aged_out == 0
            assert not equivalence_diffs(batch, snap)

    def test_skewed_clock_cannot_age_itself_into_a_fresh_cluster(self):
        # The clamp caps the skewed run's *effective* epoch at the
        # ceiling, so it stays inside the window (aging uses clamped
        # epochs, not raw ones) — streaming and batch agree.
        from repro.service import IncrementalAggregator, profiles_equivalent

        policy = MergePolicy(epoch_window=1, max_epoch_skew=1)
        runs = [
            client("r0", [rec(0, {0x10: (100, 90)})], epoch=2),
            client("r1", [rec(0, {0x10: (100, 90)})], epoch=2),
            client("skewed", [rec(1, {0x99: (100, 90)})], epoch=50),
        ]
        batch = merge_runs(runs, policy)
        # Ceiling = median (2) + skew (1) = 3: the skewed run lands at
        # effective epoch 3, max epoch 3, window covers 2..3 — nobody
        # ages out, and the skewed phase reports the clamped epoch.
        assert batch.aged_out == 0
        skew_phase = next(
            p for p in batch.phases if 0x99 in p.record.branches
        )
        assert skew_phase.provenance.last_epoch == 3
        agg = IncrementalAggregator(policy)
        for run in reversed(runs):  # skewed-first arrival order
            agg.ingest_run(run)
        assert profiles_equivalent(agg.snapshot(), batch)

    def test_window_and_skew_participate_in_the_policy_fingerprint(self):
        plain = MergePolicy().fingerprint()
        windowed = MergePolicy(epoch_window=2).fingerprint()
        skewed = MergePolicy(max_epoch_skew=2).fingerprint()
        assert len({plain, windowed, skewed}) == 3

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MergePolicy(epoch_window=-1)
        with pytest.raises(ValueError):
            MergePolicy(max_epoch_skew=-1)


class TestServiceCounters:
    def test_ingest_quarantine_counts_by_exception_type_and_stage(
        self, tmp_path
    ):
        from repro import obs

        (tmp_path / "bad.json").write_text('{"format": "vacuum-pack')
        before = obs.default_registry().counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="parse",
        )
        result = ingest_dir(tmp_path)
        assert len(result.rejected) == 1
        assert result.rejected[0].stage == "parse"
        assert "[ProfileFormatError/parse]" in result.rejected[0].render()
        assert obs.default_registry().counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="parse",
        ) == before + 1

    def test_quarantine_counts_only_after_provenance_validation(
        self, tmp_path
    ):
        # The document parses and its stamp is a JSON object, but the
        # stamp itself is unusable: the counter must attribute the
        # failure to the provenance stage (and fire exactly once,
        # after all validation) instead of mislabeling it as a parse
        # failure on the way in.
        from repro import obs

        document = {
            "format": "vacuum-packing-profile",
            "version": 2,
            "meta": {"provenance": {
                "run_id": "r0", "seed": 1, "epoch": "not-an-epoch",
            }},
            "records": [],
        }
        (tmp_path / "bad-stamp.json").write_text(json.dumps(document))
        registry = obs.default_registry()
        before_prov = registry.counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="provenance",
        )
        before_parse = registry.counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="parse",
        )
        result = ingest_dir(tmp_path)
        assert not result.runs
        assert len(result.rejected) == 1
        assert result.rejected[0].stage == "provenance"
        assert registry.counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="provenance",
        ) == before_prov + 1
        assert registry.counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="parse",
        ) == before_parse

    def test_unreadable_file_is_attributed_to_the_read_stage(
        self, tmp_path
    ):
        result = ingest_paths([tmp_path / "missing.json"])
        assert len(result.rejected) == 1
        assert result.rejected[0].stage == "read"
        assert result.rejected[0].exception_type == "FileNotFoundError"

    def test_corrupt_artifact_is_counted_and_rewritable(self, tmp_path):
        from repro import obs

        store = ArtifactStore(root=str(tmp_path))
        payload = {"packages": [{"name": "pkg0"}], "coverage": 0.5}
        key = "k" * 40
        assert store.put(key, payload)
        path = store.path_of(key)
        with open(path, "rb") as handle:
            body = handle.read()
        with open(path, "wb") as handle:
            handle.write(body[: len(body) // 2])

        before = obs.default_registry().counter("service.artifacts.corrupt")
        assert store.get(key) is None  # detected, deleted, counted
        assert not os.path.exists(path)
        assert obs.default_registry().counter(
            "service.artifacts.corrupt"
        ) == before + 1
        # The slot is clean again: a rewrite round-trips bit-exact.
        assert store.put(key, payload)
        assert store.get(key) == payload


class TestProfileFormatErrorHierarchy:
    def test_reparented_onto_typed_errors(self):
        error = ProfileFormatError("boom")
        assert isinstance(error, ProfileError)
        assert isinstance(error, ReproError)
        assert error.hint  # carries the remediation hint machinery
        assert error.phase is None


class TestArtifactStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        payload = {"packages": [{"name": "pkg0"}], "coverage": 0.5}
        assert store.get("k" * 40) is None
        assert store.stats.misses == 1
        assert store.put("k" * 40, payload)
        assert store.get("k" * 40) == payload
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        store.put("k" * 40, {"a": 1})
        path = store.path_of("k" * 40)
        with open(path, "w") as handle:
            handle.write("{not json")
        assert store.get("k" * 40) is None
        assert store.stats.errors == 1
        assert not os.path.exists(path)

    def test_misnamed_entry_is_never_trusted(self, tmp_path):
        """An entry copied under the wrong key fails its stamp check."""
        store = ArtifactStore(root=str(tmp_path))
        store.put("a" * 40, {"a": 1})
        with open(store.path_of("a" * 40), "rb") as src:
            body = src.read()
        with open(store.path_of("b" * 40), "wb") as dst:
            dst.write(body)
        assert store.get("b" * 40) is None
        assert store.stats.errors == 1

    def test_disabled_store_never_stores(self, tmp_path):
        store = ArtifactStore(root="off")
        assert not store.enabled
        assert not store.put("k" * 40, {"a": 1})
        assert store.get("k" * 40) is None
        assert store.stats.puts == 0


BENCH, INPUT, SCALE = "181.mcf", "A", 0.2
FLEET_RUNS = 16


@pytest.fixture(scope="module")
def fleet_profiles(tmp_path_factory):
    """16 simulated client profiles of one binary, divergent seeds."""
    out = tmp_path_factory.mktemp("fleet-profiles")
    clients = simulate_fleet(
        BENCH, INPUT, runs=FLEET_RUNS, out_dir=out,
        base_seed=7, epochs=4, scale=SCALE,
    )
    assert len(clients) == FLEET_RUNS
    return out


class TestFleetEndToEnd:
    def test_sixteen_clients_merge_into_consensus_phases(self, fleet_profiles):
        ingest = ingest_dir(fleet_profiles)
        assert len(ingest.runs) == FLEET_RUNS
        assert not ingest.rejected
        fleet = merge_runs(ingest)
        assert fleet.runs == FLEET_RUNS
        assert len(fleet.phases) >= 2
        # The benchmark's phase structure is stable across client
        # seeds, so each fleet phase should be broadly corroborated.
        major = [p for p in fleet.phases
                 if len(p.provenance.run_ids) >= FLEET_RUNS // 2]
        assert len(major) >= 2
        for phase in major:
            assert phase.provenance.agreement > 0.5
            assert phase.record.branches

    def test_serial_and_parallel_farms_are_byte_identical(
        self, fleet_profiles, tmp_path
    ):
        fleet = merge_runs(ingest_dir(fleet_profiles))
        config = FarmConfig(benchmark=BENCH, input_name=INPUT, scale=SCALE)
        serial_store = ArtifactStore(root=str(tmp_path / "serial"))
        parallel_store = ArtifactStore(root=str(tmp_path / "parallel"))
        serial = pack_fleet(fleet, config, jobs=1, store=serial_store)
        parallel = pack_fleet(fleet, config, jobs=4, store=parallel_store)

        assert serial.phase_set() == parallel.phase_set()
        assert [o.key for o in serial.outcomes] == [
            o.key for o in parallel.outcomes
        ]
        serial_files = sorted(os.listdir(serial_store.root))
        assert serial_files == sorted(os.listdir(parallel_store.root))
        assert serial_files  # the farm actually persisted artifacts
        for name in serial_files:
            with open(os.path.join(serial_store.root, name), "rb") as a:
                with open(os.path.join(parallel_store.root, name), "rb") as b:
                    assert a.read() == b.read()

    def test_second_request_is_served_from_the_artifact_store(
        self, fleet_profiles, tmp_path
    ):
        fleet = merge_runs(ingest_dir(fleet_profiles))
        config = FarmConfig(benchmark=BENCH, input_name=INPUT, scale=SCALE)
        store = ArtifactStore(root=str(tmp_path / "store"))
        cold = pack_fleet(fleet, config, jobs=1, store=store)
        assert cold.hit_rate == 0.0
        warm = pack_fleet(fleet, config, jobs=1, store=store)
        assert warm.hit_rate >= 0.9
        assert [o.payload for o in warm.outcomes] == [
            o.payload for o in cold.outcomes
        ]

    def test_serve_cli_reports_cache_hits_on_second_invocation(
        self, fleet_profiles, tmp_path
    ):
        from repro.cli import main

        store = tmp_path / "cli-store"
        args = [
            "serve", "--profiles", str(fleet_profiles),
            "--bench", f"{BENCH}/{INPUT}", "--scale", str(SCALE),
            "--jobs", "2", "--store", str(store),
        ]
        assert main(args + ["--out", str(tmp_path / "cold.json")]) == 0
        assert main(args + ["--out", str(tmp_path / "warm.json")]) == 0
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert warm["pack"]["cache"]["hit_rate"] >= 0.9
        assert warm["pack"]["phase_set"] == cold["pack"]["phase_set"]
        assert warm["merge"]["profile_digest"] == cold["merge"]["profile_digest"]
        assert warm["ingest"]["runs"] == FLEET_RUNS

    def test_pack_records_accepts_merged_consensus_records(
        self, fleet_profiles
    ):
        from repro.postlink import VacuumPacker
        from repro.workloads.suite import load_benchmark

        fleet = merge_runs(ingest_dir(fleet_profiles))
        workload = load_benchmark(BENCH, INPUT, scale=SCALE)
        result = VacuumPacker().pack_records(workload, fleet.records)
        assert result.packages
        assert result.coverage.package_fraction > 0.0


class TestFarmErrors:
    def test_unknown_benchmark_is_a_service_error(self):
        fleet = merge_runs([client("r0", [rec(0, {0x10: (100, 90)})])])
        with pytest.raises(ServiceError):
            pack_fleet(
                fleet,
                FarmConfig(benchmark="nope", input_name="A"),
                store=ArtifactStore(root="off"),
            )

    def test_empty_fleet_is_a_service_error(self):
        fleet = merge_runs([client("r0", [rec(0, {0x10: (100, 90)})])])
        fleet.phases = []
        with pytest.raises(ServiceError):
            pack_fleet(
                fleet,
                FarmConfig(benchmark=BENCH, input_name=INPUT),
                store=ArtifactStore(root="off"),
            )
