"""Compiled trace engine: equivalence with the reference interpreter.

The contract (see :mod:`repro.engine.compiled`) is *bit-identical*
results: the same :class:`ExecutionSummary` (including ``block_visits``
and ``stop_reason``), the same ``(branch_uid, taken, phase)`` event
stream, and detection-for-detection agreement of the Hot Spot Detector
fed from either engine.
"""

from dataclasses import replace

import pytest

from repro.engine.compiled import CompiledExecutor, ReplayDivergence
from repro.engine.executor import (
    BlockExecutor,
    ExecutionLimits,
    StopReason,
)
from repro.engine.listeners import HSDListener
from repro.engine.phases import PhaseScript
from repro.engine.behavior import BehaviorModel
from repro.hsd.detector import HotSpotDetector
from repro.isa.assembler import assemble
from repro.program.image import ProgramImage
from repro.workloads.synthetic import MIN_PHASE_BRANCHES, SyntheticSpec, build_workload


def small_spec(**overrides):
    defaults = dict(
        name="t.compiled",
        seed=11,
        phases=2,
        work_functions=4,
        functions_per_phase=2,
        cold_functions=3,
        cold_blocks_per_function=4,
        branch_budget=2 * MIN_PHASE_BRANCHES,
    )
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


@pytest.fixture(scope="module")
def workload():
    return build_workload(small_spec())


def summary_tuple(summary):
    return (
        summary.instructions,
        summary.branches,
        summary.taken_branches,
        summary.calls,
        summary.steps,
        summary.stop_reason,
        tuple(sorted(summary.block_visits.items())),
    )


def detection_tuple(detector):
    return tuple(
        (
            record.index,
            record.detected_at_branch,
            tuple(sorted(
                (address, profile.executed, profile.taken)
                for address, profile in record.branches.items()
            )),
        )
        for record in detector._records
    )


def run_both(workload, limits=None):
    """Run reference and compiled engines; return both result bundles."""
    limits = limits or workload.limits
    address_of = dict(ProgramImage(workload.program).instruction_address)
    results = []
    for engine in (BlockExecutor, CompiledExecutor):
        detector = HotSpotDetector()
        listener = HSDListener(detector, address_of)
        events = []
        hooks = [listener, lambda uid, taken, phase: events.append((uid, taken, phase))]
        executor = engine(
            workload.program,
            workload.behavior,
            workload.phase_script,
            branch_hooks=hooks,
            limits=limits,
        )
        results.append((executor.run(), detector, events))
    return results


class TestEquivalence:
    def test_summary_and_stream_parity(self, workload):
        (s_ref, d_ref, e_ref), (s_cmp, d_cmp, e_cmp) = run_both(workload)
        assert summary_tuple(s_ref) == summary_tuple(s_cmp)
        assert e_ref == e_cmp
        assert detection_tuple(d_ref) == detection_tuple(d_cmp)
        assert s_ref.stop_reason is StopReason.BRANCH_LIMIT

    def test_parity_across_seeds(self):
        for seed in (1, 2, 7):
            wl = build_workload(small_spec(seed=seed))
            (s_ref, _, e_ref), (s_cmp, _, e_cmp) = run_both(wl)
            assert summary_tuple(s_ref) == summary_tuple(s_cmp)
            assert e_ref == e_cmp


class TestStopReasons:
    @pytest.mark.parametrize(
        "limits, reason",
        [
            (ExecutionLimits(max_steps=1_000), StopReason.STEP_LIMIT),
            (ExecutionLimits(max_branches=50), StopReason.BRANCH_LIMIT),
            (
                ExecutionLimits(max_instructions=500),
                StopReason.INSTRUCTION_LIMIT,
            ),
        ],
    )
    def test_limit_parity(self, workload, limits, reason):
        (s_ref, _, e_ref), (s_cmp, _, e_cmp) = run_both(workload, limits)
        assert s_ref.stop_reason is reason
        assert summary_tuple(s_ref) == summary_tuple(s_cmp)
        assert e_ref == e_cmp

    def test_stack_underflow_parity(self):
        program = assemble(
            """
            func main:
              entry:
                movi r1, 1
                ret
            """
        )
        behavior = BehaviorModel()
        script = PhaseScript.from_pairs([(0, 10)])
        summaries = []
        for engine in (BlockExecutor, CompiledExecutor):
            summaries.append(
                engine(program, behavior, script, limits=ExecutionLimits()).run()
            )
        assert summaries[0].stop_reason is StopReason.STACK_UNDERFLOW
        assert summary_tuple(summaries[0]) == summary_tuple(summaries[1])


class TestReplay:
    def test_replay_reproduces_run(self, workload):
        recorder = CompiledExecutor(
            workload.program,
            workload.behavior,
            workload.phase_script,
            limits=workload.limits,
        )
        recorded = recorder.run(collect_trace=True)
        trace = recorder.last_trace

        events = []
        player = CompiledExecutor(
            workload.program,
            workload.behavior,
            workload.phase_script,
            branch_hooks=[
                lambda uid, taken, phase: events.append((uid, taken, phase))
            ],
            limits=workload.limits,
        )
        replayed = player.run(replay=trace)
        assert summary_tuple(replayed) == summary_tuple(recorded)
        assert len(events) == recorded.branches

    def test_replay_divergence_detected(self, workload):
        trace = CompiledExecutor(
            workload.program,
            workload.behavior,
            workload.phase_script,
            limits=workload.limits,
        ).run_traced()

        other = build_workload(small_spec(seed=99))
        player = CompiledExecutor(
            other.program,
            other.behavior,
            other.phase_script,
            limits=other.limits,
        )
        with pytest.raises(ReplayDivergence):
            player.run(replay=trace)


class TestDetectorStream:
    def test_observe_stream_matches_observe(self, workload):
        trace = CompiledExecutor(
            workload.program,
            workload.behavior,
            workload.phase_script,
            limits=replace(workload.limits, max_branches=20_000),
        ).run_traced()
        address_of = dict(
            ProgramImage(workload.program).instruction_address
        )
        addresses = [address_of[uid] for uid in trace.uids.tolist()]
        takens = trace.taken.tolist()

        one_by_one = HotSpotDetector()
        for address, taken in zip(addresses, takens):
            one_by_one.observe(address, taken)
        chunked = HotSpotDetector()
        for _ in chunked.observe_stream(addresses, takens):
            pass
        assert detection_tuple(one_by_one) == detection_tuple(chunked)
        assert (
            one_by_one.stats.branches_observed
            == chunked.stats.branches_observed
        )
