"""Tests for dataflow, liveness, dominators, loops, and weight estimation."""

import pytest

from repro.analysis import (
    DominatorTree,
    LivenessAnalysis,
    LoopNest,
    estimate_weights,
)
from repro.analysis.weights import arc_probabilities
from repro.isa.assembler import assemble, assemble_function
from repro.isa.registers import R


LIVENESS_SRC = """
func f:
  e:
    movi r10, 1
    movi r11, 2
    brnz r10, use_b
  use_a:
    add r12, r10, r10
    jump out
  use_b:
    add r12, r11, r11
  out:
    mov r1, r12
    ret
"""


class TestLiveness:
    def setup_method(self):
        self.fn = assemble_function(LIVENESS_SRC)
        self.lv = LivenessAnalysis(self.fn.cfg)

    def test_defined_values_live_out_of_entry(self):
        live = self.lv.live_out("e")
        assert R(10) in live  # read by use_a
        assert R(11) in live  # read by use_b

    def test_branch_specific_liveness(self):
        # Along e -> use_a only r10 matters; r11 is still live-in at use_b.
        assert R(11) not in self.lv.live_in("use_a")
        assert R(11) in self.lv.live_in("use_b")
        assert self.lv.live_on_arc("e", "use_b") == self.lv.live_in("use_b")

    def test_result_register_live_until_move(self):
        assert R(12) in self.lv.live_in("out")
        # r12 is dead after the move into the return register.
        assert R(12) not in self.lv.live_out("out")

    def test_return_uses_return_register(self):
        assert R(1) in self.lv.live_points("out")[-2]

    def test_live_points_shape(self):
        points = self.lv.live_points("out")
        block = self.fn.cfg.by_label["out"]
        assert len(points) == len(block.instructions) + 1

    def test_arc_query_requires_real_arc(self):
        with pytest.raises(ValueError):
            self.lv.live_on_arc("use_a", "use_b")

    def test_call_treats_args_as_uses(self, loop_program):
        lv = LivenessAnalysis(loop_program.functions["main"].cfg)
        # r1 is an argument register, so it is live into the call block.
        assert R(1) in lv.live_in("loop")


NESTED_LOOP_SRC = """
func f:
  pre:
    movi r1, 0
  outer:
    movi r2, 0
  inner:
    addi r2, r2, 1
    slt r3, r2, r4
    brnz r3, inner
  after_inner:
    addi r1, r1, 1
    slt r3, r1, r5
    brnz r3, outer
  done:
    ret
"""


class TestDominatorsAndLoops:
    def setup_method(self):
        self.fn = assemble_function(NESTED_LOOP_SRC)
        self.dom = DominatorTree(self.fn.cfg)
        self.loops = LoopNest(self.fn.cfg)

    def test_entry_has_no_idom(self):
        assert self.dom.immediate_dominator("pre") is None

    def test_linear_domination(self):
        assert self.dom.immediate_dominator("outer") == "pre"
        assert self.dom.immediate_dominator("inner") == "outer"
        assert self.dom.dominates("pre", "done")
        assert not self.dom.dominates("inner", "pre")

    def test_diamond_merge_dominated_by_fork(self, diamond_function):
        dom = DominatorTree(diamond_function.cfg)
        assert dom.immediate_dominator("merge") == "top"
        assert not dom.dominates("left", "merge")

    def test_two_loops_found(self):
        assert len(self.loops) == 2
        assert set(self.loops.headers()) == {"outer", "inner"}

    def test_nesting(self):
        inner = next(l for l in self.loops if l.header == "inner")
        outer = next(l for l in self.loops if l.header == "outer")
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.depth == 2

    def test_loop_bodies(self):
        inner = next(l for l in self.loops if l.header == "inner")
        assert inner.body == {"inner"}
        outer = next(l for l in self.loops if l.header == "outer")
        assert outer.body == {"outer", "inner", "after_inner"}

    def test_loop_depth_query(self):
        assert self.loops.loop_depth("inner") == 2
        assert self.loops.loop_depth("pre") == 0


class TestWeights:
    def test_loop_weight_matches_trip_count(self):
        fn = assemble_function(NESTED_LOOP_SRC)
        # inner back edge taken 0.9 (10 iterations), outer 0.8 (5 iterations)
        est = estimate_weights(fn.cfg, {"inner": 0.9, "after_inner": 0.8})
        assert est.weight("outer") == pytest.approx(5.0, rel=1e-6)
        assert est.weight("inner") == pytest.approx(50.0, rel=1e-6)
        assert est.weight("done") == pytest.approx(1.0, rel=1e-6)

    def test_flow_conservation_at_merge(self, diamond_function):
        est = estimate_weights(diamond_function.cfg, {"top": 0.3})
        assert est.weight("merge") == pytest.approx(
            est.weight("left") + est.weight("right")
        )
        assert est.arc_weight("top", "right") == pytest.approx(0.3)

    def test_missing_probability_defaults_to_half(self, diamond_function):
        est = estimate_weights(diamond_function.cfg, {})
        assert est.weight("left") == pytest.approx(0.5)

    def test_always_taken_back_edge_stays_finite(self):
        fn = assemble_function(
            """
            func f:
              loop:
                addi r1, r1, 1
                brnz r1, loop
              out:
                ret
            """
        )
        est = estimate_weights(fn.cfg, {"loop": 1.0})
        assert est.weight("loop") > 100
        assert est.weight("loop") < 1e9

    def test_arc_probabilities_single_successor(self, loop_program):
        cfg = loop_program.functions["main"].cfg
        probs = arc_probabilities(cfg, {})
        assert probs[("entry", "loop")] == 1.0

    def test_multiple_entry_weights(self, diamond_function):
        est = estimate_weights(
            diamond_function.cfg,
            {"top": 0.5},
            entry_weights={"top": 10.0, "merge": 5.0},
        )
        assert est.weight("merge") == pytest.approx(15.0)
