"""Cross-validation: per-instruction pipeline vs block-level timing.

The cycle-accurate :class:`~repro.cpu.pipeline.InOrderPipeline` runs
real semantics instruction by instruction; the Figure 10 experiments
use the much faster block-granularity
:class:`~repro.cpu.timing.TimingSimulator`.  On programs small enough
to run both, the models must tell a consistent story.
"""

import pytest

from repro.cpu import InOrderPipeline
from repro.engine import Interpreter
from repro.isa.assembler import assemble
from repro.optimize import reorder_blocks, reorder_package
from repro.optimize.machine import MachineDescription

SERIAL_SRC = """
func main:
  entry:
    movi r1, 0
    movi r2, 200
  loop:
    addi r1, r1, 1
    mul r3, r1, r1
    add r4, r3, r3
    add r5, r4, r4
    slt r6, r1, r2
    brnz r6, loop
  done:
    halt
"""

PARALLEL_SRC = """
func main:
  entry:
    movi r1, 0
    movi r2, 200
  loop:
    addi r1, r1, 1
    add r10, r20, r21
    add r11, r22, r23
    add r12, r24, r25
    slt r6, r1, r2
    brnz r6, loop
  done:
    halt
"""


class TestInOrderPipeline:
    def test_counts_match_interpreter(self):
        program = assemble(SERIAL_SRC)
        result = InOrderPipeline(program).run()
        reference = Interpreter(program).run()
        assert result.instructions == reference.instructions
        assert result.interpreter.state.int_regs[1] == 200

    def test_serial_chain_bounds_ipc(self):
        # mul(3) -> add(1) -> add(1) dependency chain per iteration:
        # at least 6 cycles per 6-instruction iteration.
        program = assemble(SERIAL_SRC)
        result = InOrderPipeline(program).run()
        assert result.ipc < 1.5

    def test_independent_ops_pack(self):
        serial = InOrderPipeline(assemble(SERIAL_SRC)).run()
        parallel = InOrderPipeline(assemble(PARALLEL_SRC)).run()
        assert parallel.cycles < serial.cycles
        assert parallel.ipc > serial.ipc

    def test_biased_loop_predicts_well(self):
        program = assemble(SERIAL_SRC)
        result = InOrderPipeline(program).run()
        assert result.branches == 200
        assert result.mispredictions < 20

    def test_narrow_machine_is_slower(self):
        program = assemble(PARALLEL_SRC)
        wide = InOrderPipeline(program).run()
        narrow = InOrderPipeline(
            assemble(PARALLEL_SRC),
            MachineDescription(issue_width=1),
        ).run()
        assert narrow.cycles > wide.cycles


REORDER_SRC = """
func main:
  entry:
    movi r1, 0
    movi r2, 300
  loop:
    addi r1, r1, 1
    mul r3, r1, r1
    add r4, r3, r1
    add r10, r20, r21
    add r11, r22, r23
    add r12, r11, r10
    slt r6, r1, r2
    brnz r6, loop
  done:
    halt
"""


class TestPhysicalReordering:
    def test_reorder_preserves_semantics(self):
        program = assemble(REORDER_SRC)
        before = Interpreter(program).run()
        changed = reorder_blocks(program.functions["main"].blocks)
        program.functions["main"].replace_blocks(
            program.functions["main"].blocks
        )
        after = Interpreter(program).run()
        assert after.state.int_regs == before.state.int_regs
        assert changed >= 1

    def test_reorder_keeps_terminator_last(self):
        program = assemble(REORDER_SRC)
        reorder_blocks(program.functions["main"].blocks)
        for block in program.functions["main"].blocks:
            for inst in block.instructions[:-1]:
                assert not inst.is_control

    def test_reorder_helps_inorder_pipeline(self):
        baseline = InOrderPipeline(assemble(REORDER_SRC)).run()
        program = assemble(REORDER_SRC)
        reorder_blocks(program.functions["main"].blocks)
        program.functions["main"].replace_blocks(
            program.functions["main"].blocks
        )
        optimized = InOrderPipeline(program).run()
        # Interleaving the independent adds under the mul's latency
        # must not hurt and should help an in-order machine.
        assert optimized.cycles <= baseline.cycles


class TestModelAgreement:
    def test_block_model_and_pipeline_agree_on_winner(self):
        """Both timing models must agree which binary is faster."""
        from repro.cpu import TimingSimulator
        from repro.engine import BehaviorModel, ExecutionLimits, PhaseScript
        from repro.optimize import baseline_block_costs
        from repro.workloads.base import Workload

        serial = assemble(SERIAL_SRC)
        parallel = assemble(PARALLEL_SRC)

        pipeline_serial = InOrderPipeline(serial).run()
        pipeline_parallel = InOrderPipeline(parallel).run()

        def block_cycles_for(program):
            behavior = BehaviorModel()
            loop_uid = next(
                uid for uid, loc in program.branch_block_index().items()
                if loc == ("main", "loop")
            )
            # 200 iterations, then fall through (matches semantics).
            behavior.set_bias(loop_uid, 0.995)
            workload = Workload(
                "w", program, behavior,
                PhaseScript.from_pairs([(0, 1 << 20)]),
                ExecutionLimits(max_branches=100_000),
            )
            sim = TimingSimulator(program, baseline_block_costs(program))
            return sim.run(workload)

        block_serial = block_cycles_for(serial)
        block_parallel = block_cycles_for(parallel)

        # Same winner under both models.
        assert (pipeline_parallel.cycles < pipeline_serial.cycles) == (
            block_parallel.cycles / block_parallel.instructions
            < block_serial.cycles / block_serial.instructions
        )
