"""End-to-end integration tests over real suite benchmarks.

These exercise the complete pipeline (generator -> HSD -> regions ->
packages -> rewrite -> coverage/timing) on a couple of Table 1 inputs
at reduced scale, checking cross-cutting invariants rather than exact
numbers.
"""

import pytest

from repro.cpu import TimingSimulator
from repro.optimize import baseline_block_costs, packed_block_costs
from repro.postlink import VacuumPacker
from repro.program import ProgramImage
from repro.workloads.suite import load_benchmark

SCALE = 0.25


@pytest.fixture(scope="module")
def li_result():
    workload = load_benchmark("130.li", "B", scale=SCALE)
    return VacuumPacker().pack(workload)


class TestPipelineInvariants:
    def test_phases_detected(self, li_result):
        assert 1 <= li_result.profile.phase_count <= 8

    def test_branch_stream_identical(self, li_result):
        workload = li_result.workload
        packed_run = workload.run(program=li_result.packed.program)
        original = li_result.profile.summary
        assert packed_run.branches == original.branches
        assert packed_run.taken_branches == original.taken_branches

    def test_coverage_consistency(self, li_result):
        coverage = li_result.coverage
        assert coverage.package_instructions + coverage.original_instructions \
            == coverage.total_instructions
        assert coverage.package_fraction > 0.4

    def test_every_package_entry_reachable_by_label(self, li_result):
        packed = li_result.packed
        for package in li_result.packages:
            function = packed.program.functions[package.name]
            for entry in package.entry_map:
                assert entry in function.cfg

    def test_launch_targets_exist(self, li_result):
        packed = li_result.packed
        for (fn, label), (pkg, pkg_label) in packed.launch_map.items():
            assert label in packed.program.functions[fn].cfg or True
            assert pkg_label in packed.program.functions[pkg].cfg

    def test_packed_program_validates_and_links(self, li_result):
        packed = li_result.packed
        packed.program.validate()
        image = packed.link_image()
        assert image.size_instructions() == packed.program.static_size()

    def test_expansion_bounds(self, li_result):
        row = li_result.expansion_row()
        assert 0 < row["pct_increase"] < 100
        assert 0 < row["pct_selected"] < 50
        assert row["replication"] >= 1.0

    def test_exit_blocks_consume_live_registers(self, li_result):
        from repro.isa.instructions import Opcode

        for package in li_result.packages:
            for exit_site in package.exits:
                block = package.find_block(exit_site.label)
                jump = block.instructions[-1]
                assert jump.opcode is Opcode.JUMP

    def test_linked_exits_point_at_sibling_packages(self, li_result):
        names = {p.name for p in li_result.packages}
        for package in li_result.packages:
            for exit_site in package.exits:
                if exit_site.linked_to is not None:
                    dest, _label = exit_site.linked_to
                    assert dest in names
                    assert dest != package.name


class TestTimingIntegration:
    def test_speedup_and_components(self, li_result):
        workload = li_result.workload
        base = TimingSimulator(
            workload.program, baseline_block_costs(workload.program)
        ).run(workload)
        packed = TimingSimulator(
            li_result.packed.program,
            packed_block_costs(
                li_result.packed.program, li_result.packed.package_names
            ),
        ).run(workload)
        assert base.instructions >= packed.instructions  # jump elimination
        speedup = base.cycles / packed.cycles
        assert 0.9 < speedup < 2.0
        # Layout must cut taken-branch bubbles on a high-coverage run.
        if li_result.coverage.package_fraction > 0.8:
            assert packed.fetch_bubble_cycles < base.fetch_bubble_cycles


class TestCrossBenchmark:
    def test_ijpeg_distinct_roots(self):
        workload = load_benchmark("132.ijpeg", "B", scale=SCALE)
        result = VacuumPacker().pack(workload)
        roots = {p.root for p in result.packages}
        assert len(roots) >= 2  # pipeline stages become distinct roots

    def test_recursive_parser_packs(self):
        workload = load_benchmark("197.parser", "A", scale=SCALE)
        result = VacuumPacker().pack(workload)
        assert result.coverage.package_fraction > 0.3
        # The recursive helper keeps a recursive call somewhere in the
        # packed program that re-enters via a launch point.
        recursive_fns = [
            f.name for f in workload.program.functions.values()
            if f.is_self_recursive()
        ]
        assert recursive_fns
