"""Tests for basic blocks and control-flow graphs."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import R
from repro.program import ArcKind, BasicBlock, CfgError, ControlFlowGraph
from repro.program.cfg import (
    cross_function_target,
    is_cross_function,
    split_cross_function,
)


def block(label, *insts):
    return BasicBlock(label, list(insts))


def brnz(target):
    return Instruction(Opcode.BRNZ, srcs=(R(1),), target=target)


class TestBasicBlock:
    def test_terminator_extraction(self):
        b = block("a", Instruction(Opcode.NOP), Instruction(Opcode.RET))
        assert b.terminator.opcode is Opcode.RET
        assert [i.opcode for i in b.body] == [Opcode.NOP]

    def test_fallthrough_block_has_no_terminator(self):
        b = block("a", Instruction(Opcode.NOP))
        assert b.terminator is None

    def test_control_in_middle_rejected(self):
        with pytest.raises(ValueError, match="not last"):
            block("a", Instruction(Opcode.RET), Instruction(Opcode.NOP))

    def test_size_excludes_pseudo(self):
        b = block(
            "a",
            Instruction(Opcode.CONSUME, srcs=(R(1),)),
            Instruction(Opcode.NOP),
        )
        assert b.size() == 1

    def test_clone_tracks_origin_and_context(self):
        b = block("a", Instruction(Opcode.NOP))
        copy = b.clone("a_copy", context=(42,))
        assert copy.origin == b.uid
        assert copy.context == (42,)
        assert copy.instructions[0].origin == b.instructions[0].uid
        assert copy.clone("again").origin == b.uid  # root origin is stable


class TestCrossFunctionTargets:
    def test_build_and_split(self):
        target = cross_function_target("pkg", "entry")
        assert target == "pkg::entry"
        assert is_cross_function(target)
        assert split_cross_function(target) == ("pkg", "entry")

    def test_plain_label_is_local(self):
        assert not is_cross_function("entry")
        assert not is_cross_function(None)


class TestControlFlowGraph:
    def make_diamond(self):
        blocks = [
            block("top", brnz("right")),
            block("left", Instruction(Opcode.JUMP, target="merge")),
            block("right", Instruction(Opcode.NOP)),
            block("merge", Instruction(Opcode.RET)),
        ]
        return ControlFlowGraph(blocks)

    def test_diamond_arcs(self):
        cfg = self.make_diamond()
        assert {a.dst for a in cfg.successors("top")} == {"right", "left"}
        assert cfg.arc("top", "right").kind is ArcKind.TAKEN
        assert cfg.arc("top", "left").kind is ArcKind.FALLTHROUGH
        assert cfg.arc("right", "merge").kind is ArcKind.FALLTHROUGH
        assert {a.src for a in cfg.predecessors("merge")} == {"left", "right"}

    def test_call_block_flows_to_return_point(self):
        blocks = [
            block("a", Instruction(Opcode.CALL, target="f")),
            block("b", Instruction(Opcode.RET)),
        ]
        cfg = ControlFlowGraph(blocks)
        assert cfg.arc("a", "b").kind is ArcKind.CALL_RETURN

    def test_missing_branch_target_rejected(self):
        with pytest.raises(CfgError, match="missing"):
            ControlFlowGraph([block("a", brnz("ghost")), block("b", Instruction(Opcode.RET))])

    def test_fallthrough_past_end_rejected(self):
        with pytest.raises(CfgError):
            ControlFlowGraph([block("a", Instruction(Opcode.NOP))])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(CfgError, match="duplicate"):
            ControlFlowGraph(
                [block("a", Instruction(Opcode.RET)), block("a", Instruction(Opcode.RET))]
            )

    def test_cross_function_jump_has_no_local_arc(self):
        blocks = [
            block("a", Instruction(Opcode.JUMP, target="pkg::entry")),
            block("b", Instruction(Opcode.RET)),
        ]
        cfg = ControlFlowGraph(blocks)
        assert cfg.successors("a") == []

    def test_cross_function_branch_keeps_fallthrough(self):
        blocks = [
            block("a", brnz("pkg::entry")),
            block("b", Instruction(Opcode.RET)),
        ]
        cfg = ControlFlowGraph(blocks)
        arcs = cfg.successors("a")
        assert len(arcs) == 1
        assert arcs[0].kind is ArcKind.FALLTHROUGH

    def test_reachable_from_entry(self, diamond_function):
        cfg = diamond_function.cfg
        assert set(cfg.reachable_from()) == {"top", "left", "right", "merge"}

    def test_back_edge_detection(self, loop_program):
        cfg = loop_program.functions["main"].cfg
        back = cfg.back_edges()
        assert [(a.src, a.dst) for a in back] == [("cond", "loop")]

    def test_exit_labels(self, loop_program):
        assert loop_program.functions["main"].cfg.exit_labels() == ["tail"]
        assert loop_program.functions["work"].cfg.exit_labels() == ["w2"]
