"""Tests for package construction (paper section 3.3)."""

import pytest

from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.packages import (
    BranchInstance,
    Package,
    build_package,
    construct_packages,
    inlinable_functions,
    prune_region,
    select_roots,
)
from repro.regions import identify_region

from tests.test_regions import FIG3_PROFILE, FIGURE3_SRC


@pytest.fixture
def fig3_region():
    program = assemble(FIGURE3_SRC, entry="A")
    record = HotSpotRecord(
        index=0,
        detected_at_branch=0,
        branches={p.address: p for p in FIG3_PROFILE.values()},
    )
    locate = {p.address: loc for loc, p in FIG3_PROFILE.items()}
    return identify_region(program, record, locate)


class TestPruning:
    def test_pruned_functions_cover_region(self, fig3_region):
        pruned = prune_region(fig3_region)
        assert set(pruned) == {"A", "B"}
        assert set(pruned["A"].plans) == {"A1", "A2", "A3", "A4", "A5", "A6", "A9"}
        assert set(pruned["B"].plans) == {"B1", "B2", "B4", "B6"}

    def test_cold_directions_become_exits(self, fig3_region):
        pruned = prune_region(fig3_region)
        a2 = pruned["A"].plans["A2"]
        assert a2.taken_exit is not None
        assert a2.taken_exit.target == ("A", "A7")
        assert a2.fall_to == "A3"

    def test_exit_carries_live_registers(self, fig3_region):
        pruned = prune_region(fig3_region)
        a2 = pruned["A"].plans["A2"]
        from repro.isa.registers import R

        # r1 is read downstream of A7 (A10's ret uses the return reg).
        assert R(1) in a2.taken_exit.live

    def test_call_plan(self, fig3_region):
        pruned = prune_region(fig3_region)
        a4 = pruned["A"].plans["A4"]
        assert a4.call_target == "B"
        assert a4.fall_to == "A5"

    def test_bias_annotations(self, fig3_region):
        pruned = prune_region(fig3_region)
        assert pruned["A"].plans["A1"].bias() == "U"
        assert pruned["A"].plans["A2"].bias() == "F"
        assert pruned["A"].plans["A9"].bias() == "T"
        assert pruned["A"].plans["A3"].bias() is None

    def test_prologue_epilogue_path(self, fig3_region):
        pruned = prune_region(fig3_region)
        assert pruned["B"].has_prologue_epilogue_path()
        assert pruned["B"].prologue_included
        assert pruned["B"].epilogue_labels == ["B6"]


class TestRoots:
    def test_caller_less_function_is_root(self, fig3_region):
        pruned = prune_region(fig3_region)
        roots = select_roots(fig3_region, pruned)
        assert [r.function for r in roots] == ["A"]
        assert roots[0].no_region_callers

    def test_inlinable_set(self, fig3_region):
        pruned = prune_region(fig3_region)
        # B has prologue + epilogue + path; A's hot part never returns
        # (A10 is cold) so A could not be inlined anywhere — it is the
        # region's root instead.
        assert inlinable_functions(pruned) == {"B"}

    def test_callee_without_epilogue_becomes_root(self):
        # The hot part of `sink` never returns (hot loop only): it
        # cannot be inlined and must become its own root (3.3.2).
        program = assemble(
            """
            func top:
              t0:
                call sink
              t1:
                slt r1, r2, r3
                brnz r1, t0
              t2:
                ret
            func sink:
              s0:
                addi r1, r1, 1
                slt r2, r1, r3
                brnz r2, s0
              s1:
                ret
            """,
            entry="top",
        )
        profile = {
            ("top", "t1"): BranchProfile(0x10, executed=400, taken=390),
            ("sink", "s0"): BranchProfile(0x18, executed=480, taken=474),
        }
        record = HotSpotRecord(
            index=0,
            detected_at_branch=0,
            branches={p.address: p for p in profile.values()},
        )
        locate = {p.address: loc for loc, p in profile.items()}
        region = identify_region(program, record, locate)
        pruned = prune_region(region)
        # s1 (the epilogue) is cold: s0's exit direction carries ~1%.
        assert "s1" not in pruned["sink"].plans
        assert not pruned["sink"].has_prologue_epilogue_path()
        roots = {r.function: r for r in select_roots(region, pruned)}
        assert "sink" in roots
        assert roots["sink"].not_inlinable

    def test_self_recursive_function_is_root(self):
        program = assemble(
            """
            func rec:
              r0:
                slt r1, r2, r3
                brnz r1, base
              r1:
                call rec
              r2:
                ret
              base:
                ret
            """,
            entry="rec",
        )
        profile = {("rec", "r0"): BranchProfile(0x10, executed=400, taken=100)}
        record = HotSpotRecord(
            index=0, detected_at_branch=0,
            branches={p.address: p for p in profile.values()},
        )
        locate = {p.address: loc for loc, p in profile.items()}
        region = identify_region(program, record, locate)
        pruned = prune_region(region)
        roots = {r.function: r for r in select_roots(region, pruned)}
        assert roots["rec"].self_recursive


class TestInlining:
    @pytest.fixture
    def package(self, fig3_region):
        return construct_packages(fig3_region).packages[0]

    def test_callee_blocks_copied_with_context(self, package):
        contexts = {b.context for b in package.blocks}
        assert () in contexts
        inlined = [c for c in contexts if c]
        assert len(inlined) == 1  # B inlined once, at the A4 call site

    def test_call_replaced_by_jump(self, package):
        call_blocks = [
            b for b in package.blocks
            if b.terminator is not None and b.terminator.is_call
        ]
        assert not call_blocks  # B was inlinable: no calls remain

    def test_callee_return_becomes_jump_to_continuation(self, package):
        rets = [
            b for b in package.blocks
            if b.terminator is not None and b.terminator.is_return
        ]
        assert not rets  # A's hot part has no ret; B's was rewired

    def test_exits_reference_original_code(self, package):
        targets = {e.target for e in package.exits}
        assert ("A", "A7") in targets
        assert ("A", "A10") in targets
        assert ("B", "B5") in targets or ("B", "B3") in targets

    def test_inlined_exits_carry_continuations(self, package):
        b_exits = [e for e in package.exits if e.target[0] == "B"]
        assert b_exits
        for exit_site in b_exits:
            block = package.find_block(exit_site.label)
            assert block.continuations == (("A", "A5"),)

    def test_root_exits_have_no_continuations(self, package):
        a_exits = [e for e in package.exits if e.target[0] == "A"]
        for exit_site in a_exits:
            assert package.find_block(exit_site.label).continuations == ()

    def test_branch_instances_track_origin_and_context(self, package):
        by_context = {}
        for instance in package.branch_instances:
            by_context.setdefault(instance.context, []).append(instance)
        assert len(by_context[()]) == 4   # A1 A2 A6 A9
        (inlined_ctx,) = [c for c in by_context if c]
        assert len(by_context[inlined_ctx]) == 3  # B1 B2 B4

    def test_package_function_is_wellformed(self, package):
        function = package.build_function()
        # Entry is the copy of A1 and every block label is unique.
        assert function.entry_label in package.entry_map
        labels = [b.label for b in function.blocks]
        assert len(labels) == len(set(labels))

    def test_location_index_supports_linking(self, package):
        assert (("A", "A2"), ()) in package.location_index
        inlined_keys = [k for k in package.location_index if k[1]]
        assert all(k[0][0] == "B" for k in inlined_keys)

    def test_consume_marks_live_registers(self, package):
        exit_block = package.find_block(package.exits[0].label)
        consume = exit_block.instructions[0]
        assert consume.opcode is Opcode.CONSUME
        assert consume.srcs  # something was live across the exit


class TestRecursiveInlining:
    def test_self_recursive_root_inlined_once(self):
        program = assemble(
            """
            func rec:
              r0:
                slt r1, r2, r3
                brnz r1, base
              r1:
                call rec
              r2:
                ret
              base:
                ret
            """,
            entry="rec",
        )
        profile = {("rec", "r0"): BranchProfile(0x10, executed=400, taken=100)}
        record = HotSpotRecord(
            index=0, detected_at_branch=0,
            branches={p.address: p for p in profile.values()},
        )
        locate = {p.address: loc for loc, p in profile.items()}
        region = identify_region(program, record, locate)
        result = construct_packages(region)
        (package,) = result.packages
        depths = {len(b.context) for b in package.blocks}
        # Depth 0 (the root) and depth 1 (one self-inline); deeper
        # recursion re-enters via the original function's launch point.
        assert depths == {0, 1}
        calls = [
            b for b in package.blocks
            if b.terminator is not None and b.terminator.is_call
        ]
        assert len(calls) == 1
        assert calls[0].terminator.target == "rec"
