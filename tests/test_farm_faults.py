"""Fault tolerance of the packing farm: retries, timeouts, quarantine.

The farm's contract under faults: worker failures never abort the
fleet request; a shard that fails within the retry budget recovers
with a payload byte-identical to a clean run; a shard that exhausts
the budget degrades to the original layout (empty packages) instead
of poisoning the request; and none of the fault machinery changes
what a healthy farm produces at any ``--jobs``.
"""

import pytest

from repro.errors import ServiceError
from repro.service import (
    ArtifactStore,
    ChaosSpec,
    FarmConfig,
    FarmPolicy,
    armed,
    degraded_payload,
    ingest_dir,
    merge_runs,
    pack_fleet,
    simulate_fleet,
)

BENCH, INPUT, SCALE = "134.perl", "C", None


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A small merged fleet profile (several shards' worth of phases)."""
    out = tmp_path_factory.mktemp("farm-fault-profiles")
    simulate_fleet(BENCH, INPUT, runs=4, out_dir=out, base_seed=0,
                   scale=SCALE)
    merged = merge_runs(ingest_dir(out))
    assert len(merged.phases) >= 2  # the fault tests need >1 shard
    return merged


@pytest.fixture(scope="module")
def config():
    return FarmConfig(benchmark=BENCH, input_name=INPUT, scale=SCALE)


@pytest.fixture(scope="module")
def clean_payloads(fleet, config):
    packed = pack_fleet(fleet, config, jobs=1, store=ArtifactStore("off"))
    return [outcome.payload for outcome in packed.outcomes]


def _spec(tmp_path, mode, **kwargs):
    return ChaosSpec(mode=mode, tokens_dir=str(tmp_path / "tokens"),
                     **kwargs)


class TestFarmPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FarmPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FarmPolicy(shard_timeout=-1.0)
        with pytest.raises(ValueError):
            FarmPolicy(backoff_base=-0.1)

    def test_backoff_is_seeded_and_bounded(self):
        policy = FarmPolicy(backoff_base=0.05, backoff_cap=0.2,
                            backoff_seed=3)
        again = FarmPolicy(backoff_base=0.05, backoff_cap=0.2,
                           backoff_seed=3)
        delays = [policy.backoff(round_index) for round_index in (1, 2, 3)]
        assert delays == [again.backoff(i) for i in (1, 2, 3)]
        assert all(0 < delay <= 0.2 for delay in delays)

    def test_fault_free_run_is_jobs_invariant_under_any_policy(
        self, fleet, config, clean_payloads
    ):
        policy = FarmPolicy(max_attempts=2, shard_timeout=60.0,
                            backoff_base=0.01, backoff_seed=9)
        serial = pack_fleet(fleet, config, jobs=1,
                            store=ArtifactStore("off"), policy=policy)
        pooled = pack_fleet(fleet, config, jobs=4,
                            store=ArtifactStore("off"), policy=policy)
        assert [o.payload for o in serial.outcomes] == clean_payloads
        assert [o.payload for o in pooled.outcomes] == clean_payloads
        assert [o.key for o in serial.outcomes] == [
            o.key for o in pooled.outcomes
        ]
        assert serial.degraded_shards == pooled.degraded_shards == 0


class TestWorkerFaultRecovery:
    def test_worker_exception_is_retried_not_fatal(
        self, fleet, config, clean_payloads, tmp_path
    ):
        policy = FarmPolicy(max_attempts=3, backoff_base=0.01)
        with armed(_spec(tmp_path, "worker_exception")):
            packed = pack_fleet(fleet, config, jobs=2,
                                store=ArtifactStore("off"), policy=policy)
        assert packed.ok
        assert packed.degraded_shards == 0
        assert packed.retried_shards >= 1
        assert [o.payload for o in packed.outcomes] == clean_payloads
        assert max(o.attempts for o in packed.outcomes) >= 2

    def test_crashing_worker_cannot_abort_the_fleet(
        self, fleet, config, clean_payloads, tmp_path
    ):
        # os._exit in a worker breaks the whole pool: the farm must
        # re-spawn it and re-run only the missed shards.
        policy = FarmPolicy(max_attempts=3, backoff_base=0.01)
        with armed(_spec(tmp_path, "worker_crash")):
            packed = pack_fleet(fleet, config, jobs=2,
                                store=ArtifactStore("off"), policy=policy)
        assert packed.ok
        assert packed.degraded_shards == 0
        assert packed.retried_shards >= 1
        assert [o.payload for o in packed.outcomes] == clean_payloads

    def test_inline_dispatch_recovers_from_worker_exception(
        self, fleet, config, clean_payloads, tmp_path
    ):
        policy = FarmPolicy(max_attempts=3, backoff_base=0.01)
        with armed(_spec(tmp_path, "worker_exception")):
            packed = pack_fleet(fleet, config, jobs=1,
                                store=ArtifactStore("off"), policy=policy)
        assert packed.ok
        assert [o.payload for o in packed.outcomes] == clean_payloads

    def test_hung_shard_times_out_and_recovers(
        self, fleet, config, clean_payloads, tmp_path
    ):
        policy = FarmPolicy(max_attempts=3, shard_timeout=3.0,
                            backoff_base=0.01)
        spec = _spec(tmp_path, "shard_hang", hang_seconds=30.0)
        with armed(spec):
            packed = pack_fleet(fleet, config, jobs=2,
                                store=ArtifactStore("off"), policy=policy)
        assert packed.ok
        assert packed.retried_shards >= 1
        assert [o.payload for o in packed.outcomes] == clean_payloads


class TestQuarantine:
    def test_poisoned_shard_degrades_to_original_layout(
        self, fleet, config, clean_payloads, tmp_path
    ):
        # More firings than the retry budget, pinned to shard 0: the
        # farm must quarantine that shard and keep the rest healthy.
        policy = FarmPolicy(max_attempts=2, backoff_base=0.01)
        store = ArtifactStore(str(tmp_path / "store"))
        spec = _spec(tmp_path, "worker_exception", shards=(0,),
                     max_triggers=99)
        with armed(spec):
            packed = pack_fleet(fleet, config, jobs=2, store=store,
                                policy=policy)
        assert not packed.ok
        assert packed.degraded_shards == 1
        poisoned = packed.outcomes[0]
        assert poisoned.degraded
        assert poisoned.attempts == 2
        assert poisoned.payload["packages"] == []
        assert poisoned.payload["coverage"]["package_fraction"] == 0.0
        assert poisoned.payload["quarantined"] == poisoned.phases
        assert "degraded to original layout" in poisoned.payload[
            "diagnostics"][0]
        # The degraded placeholder must never be persisted as if it
        # were a real artifact.
        assert store.get(poisoned.key) is None
        for outcome, payload in zip(packed.outcomes[1:], clean_payloads[1:]):
            assert not outcome.degraded
            assert outcome.payload == payload

    def test_strict_policy_raises_instead_of_degrading(
        self, fleet, config, tmp_path
    ):
        policy = FarmPolicy(max_attempts=2, backoff_base=0.01,
                            quarantine=False)
        spec = _spec(tmp_path, "worker_exception", shards=(0,),
                     max_triggers=99)
        with armed(spec), pytest.raises(ServiceError):
            pack_fleet(fleet, config, jobs=2, store=ArtifactStore("off"),
                       policy=policy)

    def test_degraded_payload_shape(self):
        payload = degraded_payload([3, 5], "boom", attempts=2)
        assert payload["degraded"] is True
        assert payload["packages"] == []
        assert payload["quarantined"] == [3, 5]
        assert payload["expansion"] is None
        assert "boom" in payload["diagnostics"][0]
