"""Regression corpus: shrunk fuzzer cases replayed through the oracles.

Every JSON file under ``tests/corpus/`` is a case the fuzz driver once
flagged as novel (plus one real find, see below), minimized, and
committed.  Each must still build deterministically, pass the full
four-oracle conformance stack, and reproduce its recorded coverage
signature — drift in any of these means a pipeline change altered
observable behavior.

``case14-seed12.json`` is the fuzzer's first real find: the
cold-sinking pass moved a dead-on-hot-path instruction into an exit
stub, legitimately retiring fewer work instructions than the original
run.  The differential oracle used to demand exact work-count equality
and failed; it now accounts for recorded sinking per origin uid.  The
dedicated test below keeps that accounting honest.

The injected-bug tests close the loop on the driver itself: a
deliberately mis-patched launch point must be caught by the oracles,
shrink to a tiny program, and stay reproducible through a JSON
round-trip.
"""

import glob
import json
import os

import pytest

from repro.fuzz import (
    GenConfig,
    build_case,
    load_case,
    mispatch_launch,
    run_oracle_stack,
    save_case,
    shrink_case,
)
from repro.api import PipelineConfig
from repro.postlink import VacuumPacker, differential_check

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 10


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_case_passes_oracle_stack(path):
    case = load_case(path)
    report = run_oracle_stack(case)
    assert report.ok, f"{os.path.basename(path)}: {report.render()}"
    with open(path) as handle:
        stored = json.load(handle).get("signature")
    if stored is not None:
        assert list(report.signature) == list(stored), (
            f"{os.path.basename(path)} signature drifted: "
            f"{stored} -> {list(report.signature)}"
        )


def test_sunk_work_is_accounted_not_flagged():
    """The seed-12 regression: sinking reduces the packed run's retired
    work; the differential oracle must attribute the delta to recorded
    sunk origins instead of failing."""
    case = load_case(os.path.join(CORPUS_DIR, "case14-seed12.json"))
    result = VacuumPacker(PipelineConfig(validate=False)).pack(case.workload)
    report = differential_check(case.workload, result.packed)
    assert report.ok, report.render()
    assert report.work_sunk > 0
    assert report.work_packed == report.work_original - report.work_sunk
    assert report.work_unexplained == []


# ---------------------------------------------------------------------------
# injected rewriter bug: caught, shrunk, replayable
# ---------------------------------------------------------------------------

TINY = GenConfig(
    functions=1,
    loop_depth=1,
    call_fanout=0,
    diamonds=1,
    phases=1,
    phase_branches=50_000,
    cold_functions=0,
    irreducible_fraction=0.0,
    recursion=False,
)


@pytest.fixture(scope="module")
def shrunk_mispatch():
    case = build_case(0, TINY)
    report = run_oracle_stack(case, mutate_packed=mispatch_launch)
    assert not report.ok
    failing = tuple(report.failing())
    shrunk = shrink_case(
        case,
        failing=failing,
        mutate_packed=mispatch_launch,
        max_probes=40,
    )
    return shrunk, failing


def test_injected_mispatch_is_caught_and_shrinks_small(shrunk_mispatch):
    shrunk, failing = shrunk_mispatch
    assert "structure" in failing or "pack_differential" in failing
    assert len(shrunk.workload.program.functions) <= 3
    # The minimized case still exposes the bug...
    assert not run_oracle_stack(shrunk, mutate_packed=mispatch_launch).ok
    # ...and is not a degenerate always-failing program.
    assert run_oracle_stack(shrunk).ok


def test_shrunk_case_replays_from_json(tmp_path, shrunk_mispatch):
    shrunk, _ = shrunk_mispatch
    path = str(tmp_path / "mispatch.json")
    save_case(path, shrunk)
    replayed = load_case(path)
    assert replayed.seed == shrunk.seed
    assert replayed.config == shrunk.config
    assert replayed.reduction == shrunk.reduction
    assert not run_oracle_stack(replayed, mutate_packed=mispatch_launch).ok
