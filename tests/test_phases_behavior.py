"""Tests for phase scripts and the behavioral branch model."""

import pytest

from repro.engine import BehaviorModel, PhaseScript, PhaseSegment, uniform_script
from repro.engine.behavior import hash_unit


class TestPhaseScript:
    def test_phase_at_boundaries(self):
        script = PhaseScript.from_pairs([(0, 10), (1, 5), (0, 10)])
        assert script.phase_at(0) == 0
        assert script.phase_at(9) == 0
        assert script.phase_at(10) == 1
        assert script.phase_at(14) == 1
        assert script.phase_at(15) == 0

    def test_beyond_end_stays_in_last_phase(self):
        script = PhaseScript.from_pairs([(0, 10), (2, 5)])
        assert script.phase_at(1_000_000) == 2

    def test_phase_ids_first_appearance_order(self):
        script = PhaseScript.from_pairs([(3, 5), (1, 5), (3, 5), (0, 5)])
        assert script.phase_ids() == [3, 1, 0]

    def test_transitions(self):
        script = PhaseScript.from_pairs([(0, 10), (1, 5), (1, 5), (2, 10)])
        assert script.transitions() == [10, 20]

    def test_total_branches(self):
        assert uniform_script([0, 1, 2], 100).total_branches == 300

    def test_cursor_matches_phase_at(self):
        script = PhaseScript.from_pairs([(0, 3), (7, 2), (1, 4)])
        cursor = script.cursor()
        observed = [cursor.advance() for _ in range(12)]
        expected = [script.phase_at(i) for i in range(12)]
        assert observed == expected

    def test_invalid_segments_rejected(self):
        with pytest.raises(ValueError):
            PhaseSegment(0, 0)
        with pytest.raises(ValueError):
            PhaseScript([])


class TestBehaviorModel:
    def test_determinism(self):
        model = BehaviorModel(seed=7)
        model.set_bias(42, 0.3)
        first = [model.taken(42, i, 0) for i in range(100)]
        second = [model.taken(42, i, 0) for i in range(100)]
        assert first == second

    def test_seed_changes_outcomes(self):
        a = BehaviorModel(seed=1)
        b = BehaviorModel(seed=2)
        outcomes_a = [a.taken(42, i, 0) for i in range(200)]
        outcomes_b = [b.taken(42, i, 0) for i in range(200)]
        assert outcomes_a != outcomes_b

    def test_extreme_probabilities(self):
        model = BehaviorModel()
        model.set_bias(1, 1.0)
        model.set_bias(2, 0.0)
        assert all(model.taken(1, i, 0) for i in range(100))
        assert not any(model.taken(2, i, 0) for i in range(100))

    def test_empirical_rate_matches_probability(self):
        model = BehaviorModel(seed=123)
        model.set_bias(5, 0.8)
        rate = sum(model.taken(5, i, 0) for i in range(20_000)) / 20_000
        assert rate == pytest.approx(0.8, abs=0.02)

    def test_phase_specific_bias(self):
        model = BehaviorModel()
        model.set_phase_biases(9, {0: 0.9, 1: 0.1})
        assert model.prob(9, 0) == 0.9
        assert model.prob(9, 1) == 0.1

    def test_branch_default_falls_back(self):
        model = BehaviorModel(default_prob=0.25)
        model.set_bias(9, 0.7)          # branch default (phase=None)
        model.set_bias(9, 0.1, phase=2)
        assert model.prob(9, 2) == 0.1
        assert model.prob(9, 5) == 0.7   # unknown phase -> branch default
        assert model.prob(777, 0) == 0.25  # unknown branch -> global default

    def test_probability_validation(self):
        model = BehaviorModel()
        with pytest.raises(ValueError):
            model.set_bias(1, 1.5)

    def test_hash_unit_range_and_spread(self):
        values = [hash_unit(uid, occ, 0) for uid in range(10) for occ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.05
