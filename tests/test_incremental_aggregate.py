"""Streaming incremental aggregation: the determinism contract.

The contract under test (``docs/service.md``, "Streaming
aggregation"): ingest order must not change the merged fleet profile
beyond :data:`repro.service.aggregate.CONTRACT`, and the streaming
:class:`~repro.service.aggregate.IncrementalAggregator` must match the
from-scratch batch aggregator within that tolerance — on synthetic
fleets (hypothesis, arbitrary permutations) and on every workload in
the Table 1 suite (real profiles).  Plus the operational properties
that make streaming deployable: checkpoint/restore through the
artifact store with every corruption path degrading to a cold start,
per-path dedup so a restarted service re-scans without re-ingesting,
and the ``service.agg.*`` observability counters.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.service import (
    AGGREGATOR_STATE_VERSION,
    ArtifactStore,
    ClientRun,
    IncrementalAggregator,
    MergePolicy,
    checkpoint_key,
    equivalence_diffs,
    merge_runs,
    profiles_equivalent,
    simulate_fleet,
)
from repro.workloads.suite import SUITE


def rec(index, branches, detected=None):
    """branches = {address: (executed, taken)}"""
    return HotSpotRecord(
        index=index,
        detected_at_branch=detected if detected is not None else min(branches),
        branches={
            addr: BranchProfile(addr, executed, taken)
            for addr, (executed, taken) in branches.items()
        },
    )


def client(run_id, records, epoch=0, seed=0):
    return ClientRun(
        run_id=run_id, seed=seed, epoch=epoch,
        path=f"{run_id}.json", records=records,
    )


def stream(runs, policy=None):
    agg = IncrementalAggregator(policy)
    for run in runs:
        agg.ingest_run(run)
    return agg


# ---------------------------------------------------------------------------
# hypothesis: order invariance on synthetic fleets
# ---------------------------------------------------------------------------

#: Phase families with disjoint address ranges and biases kept clear of
#: the 0.7 similarity threshold, so the section 3.1 criterion is an
#: equivalence relation on the generated records — the regime the
#: determinism contract is stated for (well-separated phases).
@st.composite
def fleets(draw):
    n_families = draw(st.integers(1, 4))
    families = []
    for k in range(n_families):
        n_branches = draw(st.integers(3, 8))
        base = {}
        for i in range(n_branches):
            executed = draw(st.integers(100, 10_000))
            ratio = draw(st.one_of(
                st.floats(0.0, 0.6), st.floats(0.8, 1.0),
            ))
            base[0x10000 * (k + 1) + 8 * i] = (executed, ratio)
        families.append(base)
    n_runs = draw(st.integers(2, 8))
    runs = []
    for j in range(n_runs):
        member_of = draw(
            st.lists(st.integers(0, n_families - 1), min_size=1,
                     max_size=n_families, unique=True)
        )
        records = []
        for slot, k in enumerate(sorted(member_of)):
            factor = draw(st.floats(0.5, 4.0))
            branches = {}
            for address, (executed, ratio) in families[k].items():
                scaled = max(50, int(executed * factor))
                branches[address] = (scaled, min(int(scaled * ratio), scaled))
            records.append(rec(slot, branches))
        runs.append(client(
            f"r{j:02d}", records,
            epoch=draw(st.integers(0, 3)), seed=j,
        ))
    return runs


POLICIES = [
    MergePolicy(),
    MergePolicy(epoch_window=2),
    MergePolicy(epoch_window=2, max_epoch_skew=1),
    MergePolicy(branch_quorum=0.8, min_runs=2),
]


class TestOrderInvariance:
    @settings(max_examples=40, deadline=None)
    @given(fleets(), st.integers(0, len(POLICIES) - 1), st.randoms())
    def test_permuting_ingest_order_stays_within_contract(
        self, runs, policy_index, rng
    ):
        policy = POLICIES[policy_index]
        batch = merge_runs(
            sorted(runs, key=lambda r: r.run_id), policy
        )
        shuffled = list(runs)
        rng.shuffle(shuffled)
        snap = stream(shuffled, policy).snapshot()
        assert equivalence_diffs(batch, snap) == []

    @settings(max_examples=20, deadline=None)
    @given(fleets(), st.randoms())
    def test_two_streaming_orders_agree_with_each_other(self, runs, rng):
        a = list(runs)
        b = list(runs)
        rng.shuffle(b)
        snap_a = stream(a).snapshot()
        snap_b = stream(b).snapshot()
        assert equivalence_diffs(snap_a, snap_b) == []
        # Merged counters are integer sums divided once, so when the
        # orders agree on membership (always, for separated phases)
        # the snapshots are bit-identical, not merely within tolerance.
        assert snap_a.digest() == snap_b.digest()

    def test_contract_tolerance_catches_real_divergence(self):
        # equivalence_diffs must actually report, not rubber-stamp.
        a = stream([client("r0", [rec(0, {0x10: (100, 90)})])]).snapshot()
        b = stream([client("r0", [rec(0, {0x10: (200, 90)})])]).snapshot()
        diffs = equivalence_diffs(a, b)
        assert diffs and "executed" in diffs[0]
        c = stream([client("r1", [rec(0, {0x10: (100, 90)})])]).snapshot()
        assert any("run_ids" in d for d in equivalence_diffs(a, c))


# ---------------------------------------------------------------------------
# the whole Table 1 suite: real profiles, streaming == batch
# ---------------------------------------------------------------------------

SUITE_SCALE = 0.1
SUITE_CLIENTS = 3


@pytest.fixture(scope="module")
def suite_fleets(tmp_path_factory):
    """A small real fleet per suite workload (batched engine)."""
    root = tmp_path_factory.mktemp("suite-fleets")
    dirs = {}
    for entry in SUITE:
        out = root / entry.full_name.replace("/", "_")
        simulate_fleet(
            entry.benchmark, entry.input_name, runs=SUITE_CLIENTS,
            out_dir=out, base_seed=3, epochs=2, scale=SUITE_SCALE,
        )
        dirs[entry.full_name] = out
    return dirs


class TestSuiteEquivalence:
    def test_streaming_matches_batch_on_every_suite_workload(
        self, suite_fleets
    ):
        from repro.service import ingest_dir

        failures = {}
        for name, out in suite_fleets.items():
            paths = sorted(out.glob("*.json"))
            batch = merge_runs(ingest_dir(out))
            for order in (paths, list(reversed(paths))):
                agg = IncrementalAggregator()
                for path in order:
                    assert agg.ingest_path(path)
                diffs = equivalence_diffs(batch, agg.snapshot())
                if diffs:
                    failures[name] = diffs
                    break
        assert not failures, failures

    def test_membership_weights_and_provenance_agree_exactly(
        self, suite_fleets
    ):
        # Spot-check the strongest form on one workload: identical
        # membership/provenance and bit-identical counters mean the
        # profile digests (and hence all artifact-store keys
        # downstream) coincide.
        name, out = sorted(suite_fleets.items())[0]
        from repro.service import ingest_dir

        batch = merge_runs(ingest_dir(out))
        agg = IncrementalAggregator()
        agg.ingest_paths(sorted(out.glob("*.json")))
        snap = agg.snapshot()
        assert [p.provenance.to_dict() for p in snap.phases] == [
            p.provenance.to_dict() for p in batch.phases
        ]
        assert snap.digest() == batch.digest()


# ---------------------------------------------------------------------------
# checkpoint / restore and its corruption paths
# ---------------------------------------------------------------------------

def small_fleet():
    return [
        client("r0", [rec(0, {0x10: (100, 90), 0x18: (80, 10)})], epoch=0),
        client("r1", [rec(0, {0x10: (140, 120), 0x18: (90, 12)})], epoch=1),
        client("r2", [rec(1, {0x99: (500, 100)})], epoch=1),
    ]


class TestCheckpoint:
    def make_store(self, tmp_path):
        return ArtifactStore(root=str(tmp_path / "store"))

    def checkpoint(self, tmp_path, policy=None):
        store = self.make_store(tmp_path)
        agg = stream(small_fleet(), policy)
        assert agg.save_checkpoint(store, "t")
        return store, agg

    def entry_path(self, store, policy=None):
        return store.path_of(checkpoint_key("t", policy or MergePolicy()))

    def test_restore_resumes_without_reingesting(self, tmp_path):
        store, agg = self.checkpoint(tmp_path)
        back = IncrementalAggregator.restore(store, "t")
        assert back is not None
        assert back.documents == agg.documents
        assert profiles_equivalent(back.snapshot(), agg.snapshot())
        # The restored state keeps absorbing: both sides fold one more
        # document and still agree with a from-scratch batch merge.
        extra = client("r9", [rec(0, {0x10: (90, 80), 0x18: (70, 9)})],
                       epoch=1)
        agg.ingest_run(extra)
        back.ingest_run(extra)
        batch = merge_runs(
            sorted(small_fleet() + [extra], key=lambda r: r.run_id)
        )
        assert profiles_equivalent(back.snapshot(), batch)
        assert back.snapshot().digest() == agg.snapshot().digest()

    def test_truncated_checkpoint_is_a_miss_then_cold_start(self, tmp_path):
        store, _ = self.checkpoint(tmp_path)
        path = self.entry_path(store)
        body = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(body[: len(body) // 2])
        before = obs.default_registry().counter("service.agg.checkpoint.miss")
        assert IncrementalAggregator.restore(store, "t") is None
        assert obs.default_registry().counter(
            "service.agg.checkpoint.miss"
        ) == before + 1

    def test_stale_state_version_is_refused(self, tmp_path):
        store, _ = self.checkpoint(tmp_path)
        path = self.entry_path(store)
        entry = json.loads(open(path).read())
        entry["payload"]["agg_version"] = AGGREGATOR_STATE_VERSION + 1
        # Rewrite through the store so the outer stamp stays valid:
        # only the aggregator-level version check can catch this.
        key = checkpoint_key("t", MergePolicy())
        assert store.put(key, entry["payload"])
        before = obs.default_registry().counter(
            "service.agg.checkpoint.corrupt"
        )
        assert IncrementalAggregator.restore(store, "t") is None
        assert obs.default_registry().counter(
            "service.agg.checkpoint.corrupt"
        ) == before + 1

    def test_hash_mismatched_state_is_never_trusted(self, tmp_path):
        store, _ = self.checkpoint(tmp_path)
        key = checkpoint_key("t", MergePolicy())
        payload = json.loads(open(self.entry_path(store)).read())["payload"]
        payload["state"]["documents"] = 999  # tamper; digest now stale
        assert store.put(key, payload)
        assert IncrementalAggregator.restore(store, "t") is None

    def test_policy_mismatch_is_a_plain_miss(self, tmp_path):
        store, _ = self.checkpoint(tmp_path, MergePolicy())
        assert IncrementalAggregator.restore(
            store, "t", MergePolicy(epoch_window=2)
        ) is None

    def test_malformed_state_shape_degrades_to_cold_start(self, tmp_path):
        store, agg = self.checkpoint(tmp_path)
        key = checkpoint_key("t", MergePolicy())
        state = agg.to_state()
        del state["groups"][0]["buckets"]
        assert store.put(key, {
            "kind": "aggregator-checkpoint",
            "agg_version": AGGREGATOR_STATE_VERSION,
            "state_digest": agg.state_digest(state),
            "state": state,
        })
        assert IncrementalAggregator.restore(store, "t") is None

    def test_disabled_store_checkpoints_are_clean_misses(self):
        store = ArtifactStore(root="off")
        agg = stream(small_fleet())
        assert not agg.save_checkpoint(store, "t")
        assert IncrementalAggregator.restore(store, "t") is None


class TestPathDedup:
    def write_fleet(self, out):
        from repro.hsd.serialize import make_provenance, save_profile

        out.mkdir(exist_ok=True)
        for i in range(4):
            save_profile(
                out / f"client-{i}.json",
                [rec(0, {0x10: (100 + i, 90)})],
                meta={"provenance": make_provenance(f"r{i}", i, 0)},
            )

    def test_rescanning_an_unchanged_directory_is_a_noop(self, tmp_path):
        out = tmp_path / "fleet"
        self.write_fleet(out)
        agg = IncrementalAggregator()
        assert agg.ingest_paths(out.glob("*.json")) == 4
        digest = agg.snapshot().digest()
        assert agg.ingest_paths(out.glob("*.json")) == 0
        assert agg.duplicates == 4
        assert agg.documents == 4
        assert agg.snapshot().digest() == digest

    def test_changed_content_at_a_seen_path_is_refolded(self, tmp_path):
        from repro.hsd.serialize import make_provenance, save_profile

        out = tmp_path / "fleet"
        self.write_fleet(out)
        agg = IncrementalAggregator()
        agg.ingest_paths(out.glob("*.json"))
        save_profile(
            out / "client-0.json",
            [rec(0, {0x10: (900, 90)})],
            meta={"provenance": make_provenance("r0b", 0, 1)},
        )
        assert agg.ingest_paths(out.glob("*.json")) == 1
        assert agg.documents == 5

    def test_quarantined_paths_reject_with_stage_and_counter(self, tmp_path):
        out = tmp_path / "fleet"
        out.mkdir()
        (out / "bad.json").write_text("{nope")
        registry = obs.default_registry()
        before = registry.counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="parse",
        )
        agg = IncrementalAggregator()
        assert agg.ingest_paths(out.glob("*.json")) == 0
        assert len(agg.rejected) == 1
        assert agg.rejected[0].stage == "parse"
        assert registry.counter(
            "service.ingest.quarantined",
            exception_type="ProfileFormatError", stage="parse",
        ) == before + 1
        # Rejected documents never enter the live state.
        assert agg.documents == 0


class TestAggCounters:
    def test_matched_new_clusters_folded_and_aged_out(self):
        registry = obs.default_registry()
        before = {
            name: registry.counter(f"service.agg.{name}")
            for name in ("matched", "new_clusters", "folded", "aged_out")
        }
        agg = IncrementalAggregator(MergePolicy(epoch_window=1))
        agg.ingest_run(client("r0", [rec(0, {0x10: (100, 90)})], epoch=0))
        agg.ingest_run(client("r1", [rec(0, {0x10: (120, 100)})], epoch=0))
        agg.ingest_run(client("r2", [rec(0, {0x99: (50, 10)})], epoch=9))
        agg.snapshot()
        after = {
            name: registry.counter(f"service.agg.{name}")
            for name in ("matched", "new_clusters", "folded", "aged_out")
        }
        assert after["folded"] - before["folded"] == 3
        assert after["new_clusters"] - before["new_clusters"] == 2
        assert after["matched"] - before["matched"] == 1
        assert after["aged_out"] - before["aged_out"] == 2
        # aged_out reports the delta, not the running total, so a
        # second snapshot with no new arrivals adds nothing.
        agg.snapshot()
        assert registry.counter("service.agg.aged_out") == after["aged_out"]
