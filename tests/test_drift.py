"""Drift injection, the decay detector, and the re-optimization loop."""

import pytest

from repro.service import (
    ControllerConfig,
    DriftDetector,
    DriftSpec,
    apply_drift,
    run_controller,
)
from repro.workloads.suite import load_benchmark

BENCH, INPUT, SCALE = "181.mcf", "A", 0.2


def _cold_positions(behavior, cold_before):
    """Indices (within the pristine cold list) that are now warm."""
    still_cold = set(behavior.default_cold_branches())
    return [
        position for position, uid in enumerate(cold_before)
        if uid not in still_cold
    ]


class TestApplyDrift:
    def test_warms_a_severity_fraction_of_cold_guards(self):
        workload = load_benchmark(BENCH, INPUT, scale=SCALE)
        behavior = workload.behavior
        cold = behavior.default_cold_branches()
        assert cold  # the generator pins never-taken guards at 0.0
        spec = DriftSpec(epoch=2, severity=0.5, warm_bias=0.4)
        warmed = apply_drift(behavior, spec)
        assert 0 < warmed <= len(cold)
        assert len(behavior.default_cold_branches()) == len(cold) - warmed
        for uid in set(cold) - set(behavior.default_cold_branches()):
            assert behavior.prob(uid, phase=0) == spec.warm_bias

    def test_extreme_severities(self):
        workload = load_benchmark(BENCH, INPUT, scale=SCALE)
        cold = workload.behavior.default_cold_branches()
        assert apply_drift(workload.behavior, DriftSpec(severity=0.0)) == 0
        assert apply_drift(
            workload.behavior, DriftSpec(severity=1.0)
        ) == len(cold)
        assert workload.behavior.default_cold_branches() == []

    def test_idempotent_for_a_given_spec(self):
        workload = load_benchmark(BENCH, INPUT, scale=SCALE)
        spec = DriftSpec(severity=0.5)
        first = apply_drift(workload.behavior, spec)
        assert first > 0
        # Surviving cold guards keep their losing draws: nothing new.
        assert apply_drift(workload.behavior, spec) == 0

    def test_same_structural_branches_across_seeded_rebuilds(self):
        # Clients rebuild their own workload instances; uids differ but
        # registration order is identical, so the same drift must hit
        # the same *positions* in each instance's cold list.
        spec = DriftSpec(severity=0.5, seed=3)
        positions = []
        for _ in range(2):
            workload = load_benchmark(BENCH, INPUT, scale=SCALE)
            cold = workload.behavior.default_cold_branches()
            apply_drift(workload.behavior, spec)
            positions.append(_cold_positions(workload.behavior, cold))
        assert positions[0] == positions[1]
        assert positions[0]  # something actually warmed

    def test_restore_biases_undoes_drift(self):
        workload = load_benchmark(BENCH, INPUT, scale=SCALE)
        behavior = workload.behavior
        pristine = behavior.bias_snapshot()
        cold = behavior.default_cold_branches()
        apply_drift(behavior, DriftSpec(severity=1.0))
        assert behavior.default_cold_branches() == []
        behavior.restore_biases(pristine)
        assert behavior.default_cold_branches() == cold

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DriftSpec(severity=1.5)
        with pytest.raises(ValueError):
            DriftSpec(warm_bias=0.0)
        with pytest.raises(ValueError):
            DriftSpec(epoch=-1)


class TestDriftDetector:
    def test_both_gates_must_open(self):
        detector = DriftDetector(decay_threshold=0.1, min_staleness=2)
        assert not detector.observe(decay=0.5, staleness=1)  # fresh
        assert not detector.observe(decay=0.05, staleness=5)  # fits
        assert detector.observe(decay=0.5, staleness=2)

    def test_patience_debounces_single_epoch_blips(self):
        detector = DriftDetector(decay_threshold=0.1, min_staleness=1,
                                 patience=2)
        assert not detector.observe(decay=0.3, staleness=1)
        assert not detector.observe(decay=0.0, staleness=2)  # blip ended
        assert detector.strikes == 0
        assert not detector.observe(decay=0.3, staleness=3)
        assert detector.observe(decay=0.3, staleness=4)

    def test_reset_clears_strikes(self):
        detector = DriftDetector(patience=1)
        assert detector.observe(decay=0.5, staleness=1)
        detector.reset()
        assert detector.strikes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(decay_threshold=-0.1)
        with pytest.raises(ValueError):
            DriftDetector(patience=0)


class TestControllerEndToEnd:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        config = ControllerConfig(
            benchmark=BENCH,
            input_name=INPUT,
            scale=SCALE,
            epochs=5,
            clients_per_epoch=3,
            epoch_window=2,
            drift=DriftSpec(epoch=2, severity=0.5),
        )
        work = tmp_path_factory.mktemp("controller")
        return run_controller(config, work, jobs=2)

    def test_drift_is_detected_and_recovered(self, report):
        recovery = report.document["recovery"]
        assert recovery["drift_epoch"] == 2
        assert recovery["warmed_branches"] > 0
        assert recovery["detected_epoch"] is not None
        assert recovery["repack_epochs"]
        assert report.recovered
        assert report.time_to_recover is not None
        assert report.time_to_recover >= 0

    def test_probe_coverage_decays_at_the_drift_epoch(self, report):
        rows = {row["epoch"]: row for row in report.document["epochs"]}
        assert rows[2]["drifted"]
        assert rows[2]["probe_coverage"] < rows[1]["probe_coverage"]
        assert rows[2]["decay"] > 0.1
        recovery = report.document["recovery"]
        assert recovery["drifted_coverage"] < recovery["pre_drift_coverage"]
        assert (
            recovery["post_recovery_coverage"]
            >= recovery["drifted_coverage"]
        )

    def test_event_log_tells_the_story_in_order(self, report):
        kinds = [event["kind"] for event in report.document["events"]]
        assert kinds.index("ship") < kinds.index("drift")
        assert kinds.index("drift") <= kinds.index("detect")
        assert kinds.index("detect") <= kinds.index("repack")
        assert "recover" in kinds

    def test_render_mentions_recovery(self, report):
        text = report.render()
        assert "recovered in" in text
        assert "drift at epoch 2" in text

    def test_document_round_trips_through_json(self, report):
        import json

        document = json.loads(report.to_json())
        assert document["controller_version"] == 1
        assert len(document["epochs"]) == 5
