"""Service-scale chaos: spec plumbing, token claims, and the campaign."""

import json
import os

import pytest

from repro.errors import ServiceError
from repro.service import ChaosSpec, armed, chaos_hook
from repro.service.chaos import ENV_CHAOS, _claim_trigger


class TestChaosSpec:
    def test_unknown_mode_is_a_service_error(self):
        with pytest.raises(ServiceError):
            ChaosSpec(mode="worker_meltdown", tokens_dir="/tmp/x")

    def test_file_fault_modes_are_not_worker_specs(self):
        # corrupt_artifact etc. are applied by the campaign directly;
        # arming them in workers would silently never fire.
        with pytest.raises(ServiceError):
            ChaosSpec(mode="corrupt_artifact", tokens_dir="/tmp/x")

    def test_validation(self):
        with pytest.raises(ServiceError):
            ChaosSpec(mode="worker_exception", tokens_dir="")
        with pytest.raises(ServiceError):
            ChaosSpec(mode="worker_exception", tokens_dir="/tmp/x",
                      max_triggers=0)
        with pytest.raises(ServiceError):
            ChaosSpec(mode="shard_hang", tokens_dir="/tmp/x",
                      hang_seconds=0)

    def test_round_trips_through_dict(self, tmp_path):
        spec = ChaosSpec(mode="shard_hang", tokens_dir=str(tmp_path),
                         shards=(1, 3), max_triggers=2, hang_seconds=5.0)
        assert ChaosSpec.from_dict(spec.to_dict()) == spec


class TestTriggerTokens:
    def test_claims_are_bounded_by_max_triggers(self, tmp_path):
        spec = ChaosSpec(mode="worker_exception",
                         tokens_dir=str(tmp_path), max_triggers=2)
        assert _claim_trigger(spec)
        assert _claim_trigger(spec)
        assert not _claim_trigger(spec)  # budget spent
        assert len(list(tmp_path.iterdir())) == 2

    def test_armed_sets_and_restores_the_environment(self, tmp_path):
        spec = ChaosSpec(mode="worker_exception",
                         tokens_dir=str(tmp_path / "tokens"))
        assert ENV_CHAOS not in os.environ
        with armed(spec):
            assert json.loads(os.environ[ENV_CHAOS])["mode"] == (
                "worker_exception"
            )
            assert (tmp_path / "tokens").is_dir()
        assert ENV_CHAOS not in os.environ


class TestChaosHook:
    def test_noop_without_armed_spec(self):
        chaos_hook("farm.shard", 0)  # must not raise

    def test_noop_on_garbage_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "{not json")
        chaos_hook("farm.shard", 0)  # must not raise

    def test_fires_only_on_matching_site_and_shard(self, tmp_path):
        spec = ChaosSpec(mode="worker_exception",
                         tokens_dir=str(tmp_path), shards=(2,),
                         max_triggers=5)
        with armed(spec):
            chaos_hook("somewhere.else", 2)  # wrong site: no-op
            chaos_hook("farm.shard", 0)  # wrong shard: no-op
            with pytest.raises(ServiceError):
                chaos_hook("farm.shard", 2)
        assert len(list(tmp_path.glob("trigger-*"))) == 1


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments.chaos_campaign import run_chaos_campaign

        # The fast subset: worker crash/hang recovery is exercised by
        # test_farm_faults; here the end-to-end serve path is the point.
        return run_chaos_campaign(
            benchmark="181.mcf", input_name="A", scale=0.2, seed=0,
            trials=1,
            modes=("worker_exception", "corrupt_artifact",
                   "truncated_profile", "epoch_skew"),
            jobs=2,
        )

    def test_campaign_survives_every_mode(self, report):
        assert report.survival_rate == 1.0
        assert report.ok
        assert not report.failures()

    def test_recoverable_modes_match_the_control(self, report):
        by_mode = {trial.mode: trial for trial in report.trials}
        assert by_mode["worker_exception"].matched is True
        assert by_mode["worker_exception"].retried_shards >= 1
        assert by_mode["corrupt_artifact"].matched is True
        assert by_mode["corrupt_artifact"].corrupt_detected >= 1
        assert by_mode["epoch_skew"].matched is True

    def test_truncated_profile_quarantines_exactly_one_ingest(self, report):
        trial = next(
            t for t in report.trials if t.mode == "truncated_profile"
        )
        assert trial.matched is None  # lossy by construction
        assert trial.quarantined_ingests == 1
        assert trial.degraded_shards == 0

    def test_document_is_json_able(self, report):
        document = json.loads(
            json.dumps(report.to_dict(), sort_keys=True)
        )
        assert document["survival_rate"] == 1.0
        assert document["ok"] is True
        assert len(document["trials"]) == 4

    def test_render_summarizes_per_mode(self, report):
        text = report.render()
        assert "100% survival" in text
        assert "truncated_profile" in text

    def test_cli_exit_code_reflects_campaign_health(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "chaos.json"
        code = main([
            "chaos", "--bench", "181.mcf/A", "--scale", "0.2",
            "--mode", "worker_exception", "--mode", "epoch_skew",
            "--jobs", "2", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["ok"] is True
        assert {t["mode"] for t in document["trials"]} == {
            "worker_exception", "epoch_skew"
        }

    def test_cli_rejects_unknown_mode(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["chaos", "--bench", "181.mcf/A", "--mode", "nope"])
