"""Tests for the Branch Behavior Buffer (contention, saturation, candidates)."""

from repro.hsd import BranchBehaviorBuffer, HSDConfig


def tiny_config(**overrides):
    defaults = dict(bbb_sets=2, bbb_ways=2, candidate_threshold=4)
    defaults.update(overrides)
    return HSDConfig(**defaults)


def addr_in_set(config, set_index, slot):
    """An address mapping to the given BBB set."""
    return ((slot * config.bbb_sets + set_index) << config.address_shift)


class TestBasicProfiling:
    def test_counts_accumulate(self):
        bbb = BranchBehaviorBuffer(tiny_config())
        for i in range(10):
            bbb.access(0x1000, taken=i % 2 == 0)
        (profile,) = [e.profile() for e in bbb.entries()]
        assert profile.executed == 10
        assert profile.taken == 5

    def test_candidate_flag_after_threshold(self):
        config = tiny_config(candidate_threshold=4)
        bbb = BranchBehaviorBuffer(config)
        for i in range(3):
            entry = bbb.access(0x1000, True)
            assert not entry.candidate
        entry = bbb.access(0x1000, True)
        assert entry.candidate

    def test_snapshot_contains_only_candidates(self):
        config = tiny_config(candidate_threshold=4)
        bbb = BranchBehaviorBuffer(config)
        for _ in range(5):
            bbb.access(0x1000, True)
        bbb.access(0x2000, False)  # never reaches threshold
        snapshot = bbb.snapshot_profiles()
        assert set(snapshot) == {0x1000}


class TestSaturation:
    def test_counters_freeze_at_max(self):
        config = tiny_config(counter_bits=4)  # max 15
        bbb = BranchBehaviorBuffer(config)
        for _ in range(40):
            bbb.access(0x1000, True)
        (entry,) = bbb.entries()
        assert entry.executed == 15
        assert entry.taken == 15

    def test_taken_fraction_preserved_at_saturation(self):
        # Paper 3.1: "at saturation, the taken fraction for the branch
        # is preserved."
        config = tiny_config(counter_bits=4)
        bbb = BranchBehaviorBuffer(config)
        for i in range(100):
            bbb.access(0x1000, taken=(i % 4 != 0))  # 75% taken
        (entry,) = bbb.entries()
        fraction = entry.profile().taken_fraction
        assert abs(fraction - 0.75) < 0.15


class TestContention:
    def test_non_candidate_evicted_lru(self):
        config = tiny_config(bbb_sets=1, bbb_ways=2)
        bbb = BranchBehaviorBuffer(config)
        a, b, c = (addr_in_set(config, 0, i) for i in range(3))
        bbb.access(a, True)
        bbb.access(b, True)
        bbb.access(a, True)  # refresh a; b is now LRU
        bbb.access(c, True)  # evicts b
        tracked = {e.address for e in bbb.entries()}
        assert tracked == {a, c}

    def test_candidates_are_not_evicted(self):
        # Paper 3.1: contention "in the worst case, prevent[s] the
        # branch from being tracked at all."
        config = tiny_config(bbb_sets=1, bbb_ways=2, candidate_threshold=2)
        bbb = BranchBehaviorBuffer(config)
        a, b, c = (addr_in_set(config, 0, i) for i in range(3))
        for _ in range(3):
            bbb.access(a, True)
            bbb.access(b, True)
        assert all(e.candidate for e in bbb.entries())
        result = bbb.access(c, True)
        assert result is None
        assert bbb.misses_untracked == 1
        assert {e.address for e in bbb.entries()} == {a, b}

    def test_set_indexing_isolates_sets(self):
        config = tiny_config(bbb_sets=2, bbb_ways=1)
        bbb = BranchBehaviorBuffer(config)
        a0 = addr_in_set(config, 0, 0)
        a1 = addr_in_set(config, 1, 0)
        bbb.access(a0, True)
        bbb.access(a1, True)
        assert bbb.occupancy() == 2  # different sets, no eviction

    def test_clear_flushes_everything(self):
        bbb = BranchBehaviorBuffer(tiny_config())
        bbb.access(0x1000, True)
        bbb.clear()
        assert bbb.occupancy() == 0
        assert 0x1000 not in bbb


class TestConfigValidation:
    def test_sets_must_be_power_of_two(self):
        import pytest

        with pytest.raises(ValueError):
            HSDConfig(bbb_sets=3)

    def test_table2_defaults(self):
        config = HSDConfig()
        assert config.bbb_sets == 512
        assert config.bbb_ways == 4
        assert config.candidate_threshold == 16
        assert config.counter_max == 511
        assert config.hdc_max == 8191
        assert config.refresh_interval == 8192
        assert config.clear_interval == 65526
        assert config.bbb_entries == 2048
