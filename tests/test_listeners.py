"""Tests for the executor branch-event listeners."""

from repro.engine import BranchTrace, PhaseBranchStats
from repro.engine.listeners import HSDListener
from repro.hsd import HotSpotDetector, HSDConfig


class TestPhaseBranchStats:
    def test_counts_accumulate_per_phase(self):
        stats = PhaseBranchStats()
        for _ in range(10):
            stats(1, True, 0)
        for _ in range(5):
            stats(1, False, 1)
        assert stats.executed(1, 0) == 10
        assert stats.executed(1, 1) == 5
        assert stats.taken_fraction(1, 0) == 1.0
        assert stats.taken_fraction(1, 1) == 0.0

    def test_phases_of_branch(self):
        stats = PhaseBranchStats()
        stats(7, True, 2)
        stats(7, True, 0)
        stats(9, False, 1)
        assert stats.phases_of(7) == [0, 2]
        assert stats.phases_of(9) == [1]

    def test_unknown_queries(self):
        stats = PhaseBranchStats()
        assert stats.executed(42, 0) == 0
        assert stats.taken_fraction(42, 0) is None

    def test_by_branch_bulk_view(self):
        stats = PhaseBranchStats()
        stats(1, True, 0)
        stats(1, False, 0)
        stats(2, True, 1)
        table = stats.by_branch()
        assert table[1][0] == (2, 1)
        assert table[2][1] == (1, 1)


class TestBranchTrace:
    def test_bounded_recording(self):
        trace = BranchTrace(limit=3)
        for i in range(5):
            trace(i, True, 0)
        assert len(trace.events) == 3
        assert trace.dropped == 2

    def test_event_contents(self):
        trace = BranchTrace()
        trace(11, False, 4)
        assert trace.events == [(11, False, 4)]


class TestHSDListener:
    def test_counts_raw_and_unique(self):
        config = HSDConfig(bbb_sets=8, bbb_ways=2, candidate_threshold=4,
                           hdc_bits=7)
        listener = HSDListener(HotSpotDetector(config), {1: 0x1000, 2: 0x1008})
        for _ in range(2000):
            listener(1, True, 0)
            listener(2, False, 0)
        assert listener.raw_detections > 1
        assert len(listener.unique_records) == 1
        record = listener.unique_records[0]
        assert set(record.branches) == {0x1000, 0x1008}
