"""Tests for reaching definitions (and thereby the forward solver)."""

from repro.analysis import ReachingDefinitions
from repro.isa.assembler import assemble_function
from repro.isa.registers import R

DIAMOND_SRC = """
func f:
  top:
    movi r1, 1
    brnz r1, right
  left:
    movi r2, 10
    jump merge
  right:
    movi r2, 20
  merge:
    add r3, r2, r1
    ret
"""

LOOP_SRC = """
func f:
  pre:
    movi r1, 0
  head:
    addi r1, r1, 1
    slt r2, r1, r3
    brnz r2, head
  out:
    ret
"""


class TestDiamond:
    def setup_method(self):
        self.fn = assemble_function(DIAMOND_SRC)
        self.reach = ReachingDefinitions(self.fn.cfg)

    def test_both_arm_definitions_reach_merge(self):
        definers = self.reach.definers_of("merge", R(2))
        assert len(definers) == 2
        assert not self.reach.is_single_reaching_def("merge", R(2))

    def test_unique_definition_reaches_merge(self):
        assert self.reach.is_single_reaching_def("merge", R(1))

    def test_arm_sees_only_entry_definitions(self):
        assert self.reach.definers_of("left", R(2)) == frozenset()
        assert len(self.reach.definers_of("left", R(1))) == 1

    def test_kill_inside_block(self):
        # r2 defined in `left` kills nothing upstream but appears in out.
        out = {r for r, _uid in self.reach.reaching_out("left")}
        assert R(2) in out


class TestLoop:
    def setup_method(self):
        self.fn = assemble_function(LOOP_SRC)
        self.reach = ReachingDefinitions(self.fn.cfg)

    def test_head_sees_preheader_and_latch_defs(self):
        definers = self.reach.definers_of("head", R(1))
        assert len(definers) == 2  # movi from pre + addi around the loop

    def test_exit_sees_loop_definition(self):
        definers = self.reach.definers_of("out", R(1))
        addi_uid = self.fn.cfg.by_label["head"].instructions[0].uid
        assert addi_uid in definers
