"""Tests for region identification (paper section 3.2).

The centerpiece is a reconstruction of the paper's Figure 3 worked
example: two functions whose hot spot was only partially captured by a
tiny BBB, where inference must recover the missing blocks and
propagate cold information.  Every narrative claim made in
section 3.2.4 is asserted:

* "Since A2's branch is strongly not-taken, the flow to A7 is
  identified as Cold."
* "The flow from A9 to A10 is similarly identified as Cold."
* "Since the flow from A2 to A7 is Cold, block A7 must be Cold."
* "Since A2 is Hot and is also strongly not-taken, the flow to A3 is
  Hot ... propagated to block A3 ... even though it was missing from
  the hot branch profile."
* "The fact that B4 is Hot implies that B2 and B6 are Hot."
"""

import pytest

from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.isa.assembler import assemble
from repro.regions import (
    RegionConfig,
    Temp,
    adopt_unknown_arcs,
    entry_blocks_of,
    grow_region,
    identify_region,
    infer_temperatures,
    seed_marking,
)

FIGURE3_SRC = """
func A:
  A1:
    slt r3, r1, r2
    brnz r3, A9
  A2:
    sne r3, r1, r2
    brnz r3, A7
  A3:
    addi r4, r4, 1
  A4:
    call B
  A5:
    addi r5, r5, 1
  A6:
    slt r3, r1, r2
    brnz r3, A2
  A9:
    seq r3, r1, r2
    brnz r3, A1
  A10:
    ret
  A7:
    addi r6, r6, 1
  A8:
    jump A10

func B:
  B1:
    slt r3, r1, r2
    brnz r3, B5
  B2:
    sne r3, r1, r2
    brnz r3, B4
  B3:
    jump B6
  B4:
    slt r3, r1, r2
    brnz r3, B6
  B5:
    addi r7, r7, 1
  B6:
    ret
"""

# The tiny four-entry BBB captured only A1, A2, A9, and B4 (half of the
# hot branches): A1 unbiased, A2 strongly not-taken, A9 strongly taken,
# B4 strongly taken.
FIG3_PROFILE = {
    ("A", "A1"): BranchProfile(0x10, executed=400, taken=200),
    ("A", "A2"): BranchProfile(0x18, executed=400, taken=10),
    ("A", "A9"): BranchProfile(0x20, executed=390, taken=375),
    ("B", "B4"): BranchProfile(0x28, executed=500, taken=490),
}


@pytest.fixture
def fig3():
    program = assemble(FIGURE3_SRC, entry="A")
    record = HotSpotRecord(
        index=0,
        detected_at_branch=100_000,
        branches={p.address: p for p in FIG3_PROFILE.values()},
    )
    locate = {p.address: loc for loc, p in FIG3_PROFILE.items()}
    return program, record, locate


class TestSeeding:
    def test_profiled_blocks_seeded_hot(self, fig3):
        program, record, locate = fig3
        marking = seed_marking(program, record, locate, RegionConfig())
        a = marking.marking("A")
        assert a.block("A1") is Temp.HOT
        assert a.block("A2") is Temp.HOT
        assert a.block("A9") is Temp.HOT
        assert marking.marking("B").block("B4") is Temp.HOT
        assert a.seeded_blocks == {"A1", "A2", "A9"}

    def test_unbiased_branch_heats_both_arcs(self, fig3):
        program, record, locate = fig3
        marking = seed_marking(program, record, locate, RegionConfig())
        a = marking.marking("A")
        assert a.arc(("A1", "A9")) is Temp.HOT
        assert a.arc(("A1", "A2")) is Temp.HOT

    def test_strongly_biased_branch_cold_direction(self, fig3):
        program, record, locate = fig3
        marking = seed_marking(program, record, locate, RegionConfig())
        a = marking.marking("A")
        # A2 taken only 10/400 (2.5% < 25% and weight 10 <= 16).
        assert a.arc(("A2", "A7")) is Temp.COLD
        assert a.arc(("A2", "A3")) is Temp.HOT
        # A9 falls through only 15/390.
        assert a.arc(("A9", "A10")) is Temp.COLD

    def test_low_fraction_but_heavy_direction_stays_hot(self, fig3):
        program, record, locate = fig3
        # 20% of flow but weight 80 > 16: still Hot per the OR rule.
        record = HotSpotRecord(
            index=0,
            detected_at_branch=0,
            branches={0x18: BranchProfile(0x18, executed=400, taken=80)},
        )
        marking = seed_marking(program, record, locate, RegionConfig())
        assert marking.marking("A").arc(("A2", "A7")) is Temp.HOT

    def test_taken_probability_recorded(self, fig3):
        program, record, locate = fig3
        marking = seed_marking(program, record, locate, RegionConfig())
        assert marking.marking("A").taken_prob["A2"] == pytest.approx(10 / 400)

    def test_unknown_addresses_ignored(self, fig3):
        program, record, locate = fig3
        record.branches[0xDEAD] = BranchProfile(0xDEAD, executed=100, taken=50)
        marking = seed_marking(program, record, locate, RegionConfig())
        assert marking.hot_block_count() == 4


class TestInference:
    @pytest.fixture
    def inferred(self, fig3):
        program, record, locate = fig3
        config = RegionConfig()
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        return marking

    def test_cold_arc_freezes_a7(self, inferred):
        assert inferred.marking("A").block("A7") is Temp.COLD

    def test_cold_propagates_down_cold_chain(self, inferred):
        a = inferred.marking("A")
        assert a.arc(("A7", "A8")) is Temp.COLD  # statement 6
        assert a.block("A8") is Temp.COLD        # statement 3
        assert a.block("A10") is Temp.COLD       # via A9->A10 cold

    def test_missing_branch_block_a3_inferred_hot(self, inferred):
        assert inferred.marking("A").block("A3") is Temp.HOT

    def test_hot_chain_recovered_through_a6(self, inferred):
        a = inferred.marking("A")
        for label in ("A4", "A5", "A6"):
            assert a.block(label) is Temp.HOT, label

    def test_hot_call_heats_callee_prologue(self, inferred):
        # Statement 9: A4 is a hot call block, so B1 becomes hot.
        assert inferred.marking("B").block("B1") is Temp.HOT

    def test_b4_implies_b2_and_b6(self, inferred):
        b = inferred.marking("B")
        assert b.block("B2") is Temp.HOT  # statements 7 + 4
        assert b.block("B6") is Temp.HOT  # statement 4

    def test_unidentifiable_blocks_stay_unknown(self, inferred):
        b = inferred.marking("B")
        assert b.block("B3") is Temp.UNKNOWN
        assert b.block("B5") is Temp.UNKNOWN

    def test_inference_reaches_fixpoint(self, fig3):
        program, record, locate = fig3
        config = RegionConfig()
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        # Running again must change nothing (single pass, no updates).
        assert infer_temperatures(marking, config) == 1


class TestInferenceDisabled:
    def test_branch_blocks_not_inferred_hot(self, fig3):
        program, record, locate = fig3
        config = RegionConfig(inference=False)
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        a = marking.marking("A")
        # A3 has no branch: still inferred.
        assert a.block("A3") is Temp.HOT
        # A6 ends in a conditional branch missing from the profile:
        # with inference off it must stay unknown.
        assert a.block("A6") is Temp.UNKNOWN
        b = marking.marking("B")
        assert b.block("B2") is Temp.UNKNOWN

    def test_cold_inference_also_restricted_to_branchless(self, fig3):
        program, record, locate = fig3
        config = RegionConfig(inference=False)
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        # A7/A8/A10 contain no conditional branch: cold still flows.
        a = marking.marking("A")
        assert a.block("A7") is Temp.COLD
        assert a.block("A10") is Temp.COLD


class TestGrowth:
    def test_unknown_arc_between_hot_blocks_adopted(self, fig3):
        program, record, locate = fig3
        config = RegionConfig()
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        a = marking.marking("A")
        # A6 has two unknown out-arcs, so flow conservation cannot
        # solve them; growth adopts them because both endpoints are hot.
        assert a.arc(("A6", "A2")) is Temp.UNKNOWN
        assert a.arc(("A6", "A9")) is Temp.UNKNOWN
        adopted = adopt_unknown_arcs(marking)
        assert adopted >= 2
        assert a.arc(("A6", "A2")) is Temp.HOT
        assert a.arc(("A6", "A9")) is Temp.HOT

    def test_cold_arcs_between_hot_blocks_stay_excluded(self, fig3):
        program, record, locate = fig3
        config = RegionConfig()
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        grow_region(marking, config)
        # A2 -> A7 stays a (cold) exit even though both regions grew.
        assert marking.marking("A").arc(("A2", "A7")) is Temp.COLD

    def test_entry_blocks_ignore_back_edges(self, fig3):
        program, record, locate = fig3
        config = RegionConfig()
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        grow_region(marking, config)
        assert entry_blocks_of(marking.marking("A")) == ["A1"]
        assert entry_blocks_of(marking.marking("B")) == ["B1"]

    def test_predecessor_growth_respects_max_blocks(self):
        # Entry block with a chain of three unknown predecessors: only
        # MAX_BLOCKS of them may be pulled in.
        program = assemble(
            """
            func f:
              p1:
                addi r1, r1, 1
              p2:
                addi r1, r1, 1
              p3:
                addi r1, r1, 1
              hot:
                slt r2, r1, r3
                brnz r2, hot
              out:
                ret
            """,
            entry="f",
        )
        record = HotSpotRecord(
            index=0,
            detected_at_branch=0,
            branches={0x10: BranchProfile(0x10, executed=400, taken=300)},
        )
        locate = {0x10: ("f", "hot")}
        config = RegionConfig(max_growth_blocks=1)
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        grow_region(marking, config)
        f = marking.marking("f")
        assert f.block("p3") is Temp.HOT      # one predecessor adopted
        assert f.block("p2") is Temp.UNKNOWN  # budget exhausted
        assert f.block("p1") is Temp.UNKNOWN

    def test_larger_budget_grows_further(self):
        program = assemble(
            """
            func f:
              p1:
                addi r1, r1, 1
              p2:
                addi r1, r1, 1
              hot:
                slt r2, r1, r3
                brnz r2, hot
              out:
                ret
            """,
            entry="f",
        )
        record = HotSpotRecord(
            index=0,
            detected_at_branch=0,
            branches={0x10: BranchProfile(0x10, executed=400, taken=300)},
        )
        locate = {0x10: ("f", "hot")}
        config = RegionConfig(max_growth_blocks=4)
        marking = seed_marking(program, record, locate, config)
        infer_temperatures(marking, config)
        grow_region(marking, config)
        f = marking.marking("f")
        assert f.block("p1") is Temp.HOT
        assert f.block("p2") is Temp.HOT


class TestHotRegion:
    @pytest.fixture
    def region(self, fig3):
        program, record, locate = fig3
        return identify_region(program, record, locate)

    def test_region_spans_both_functions(self, region):
        assert region.function_names() == ["A", "B"]

    def test_subgraph_contents(self, region):
        sub_a = region.subgraph("A")
        assert set(sub_a.blocks) == {"A1", "A2", "A3", "A4", "A5", "A6", "A9"}
        assert ("A2", "A7") not in sub_a.arcs
        assert ("A2", "A3") in sub_a.arcs
        sub_b = region.subgraph("B")
        assert set(sub_b.blocks) == {"B1", "B2", "B4", "B6"}
        assert ("B2", "B4") in sub_b.arcs
        assert ("B4", "B6") in sub_b.arcs

    def test_region_call_graph(self, region):
        graph = region.call_graph()
        assert {(s.caller, s.callee) for s in graph.sites} == {("A", "B")}

    def test_hot_counts(self, region):
        assert region.hot_block_count() == 11
        assert region.hot_instruction_count() > 0

    def test_weight_estimation_uses_taken_probs(self, region):
        est = region.estimate_weights("A")
        # The loop body (A2..A6) must be much heavier than the exit A10.
        assert est.weight("A2") > 10 * est.weight("A10")
