"""Content-addressed trace cache: hits, invalidation-by-key, robustness."""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.engine.trace_cache import (
    _FORMAT_VERSION,
    TraceCache,
    trace_key,
    traced_run,
)
from repro.workloads.synthetic import MIN_PHASE_BRANCHES, SyntheticSpec, build_workload


def small_spec(**overrides):
    defaults = dict(
        name="t.cache",
        seed=21,
        phases=2,
        work_functions=3,
        functions_per_phase=2,
        cold_functions=2,
        cold_blocks_per_function=3,
        branch_budget=2 * MIN_PHASE_BRANCHES,
    )
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


@pytest.fixture()
def workload():
    return build_workload(small_spec())


def key_of(workload):
    return trace_key(
        workload.program,
        workload.behavior,
        workload.phase_script,
        workload.limits,
    )


def traces_equal(a, b):
    return (
        np.array_equal(a.uids, b.uids)
        and np.array_equal(a.taken, b.taken)
        and a.summary.block_visits == b.summary.block_visits
        and a.summary.stop_reason == b.summary.stop_reason
        and a.summary.instructions == b.summary.instructions
    )


class TestHit:
    def test_second_run_is_served_from_cache(self, workload, tmp_path):
        cache = TraceCache(root=str(tmp_path))
        first = traced_run(workload, cache=cache)
        assert cache.stats.puts == 1
        second = traced_run(workload, cache=cache)
        assert cache.stats.hits == 1
        assert traces_equal(first, second)

    def test_disk_entry_survives_new_cache_instance(self, workload, tmp_path):
        first = traced_run(workload, cache=TraceCache(root=str(tmp_path)))
        fresh = TraceCache(root=str(tmp_path))
        second = traced_run(workload, cache=fresh)
        assert fresh.stats.hits == 1
        assert fresh.stats.puts == 0
        assert traces_equal(first, second)


class TestInvalidation:
    def test_program_content_changes_key(self, workload):
        other = build_workload(small_spec(seed=22))
        assert key_of(workload) != key_of(other)

    def test_limits_change_key(self, workload):
        shorter = replace(workload, limits=replace(workload.limits, max_branches=10))
        assert key_of(workload) != key_of(shorter)

    def test_behavior_change_key(self, workload):
        uid = int(next(iter(workload.behavior._stable_id)))
        before = key_of(workload)
        workload.behavior.set_bias(uid, 0.123)
        assert key_of(workload) != before

    def test_changed_workload_reruns_instead_of_hitting(
        self, workload, tmp_path
    ):
        cache = TraceCache(root=str(tmp_path))
        traced_run(workload, cache=cache)
        shorter = replace(
            workload, limits=replace(workload.limits, max_branches=25)
        )
        trace = traced_run(shorter, cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.puts == 2
        assert trace.summary.branches == 25


class TestRobustness:
    def test_corrupt_file_is_a_miss_and_removed(self, workload, tmp_path):
        cache = TraceCache(root=str(tmp_path))
        traced_run(workload, cache=cache)
        path = cache.path_of(key_of(workload))
        with open(path, "wb") as handle:
            handle.write(b"not an npz file")
        fresh = TraceCache(root=str(tmp_path))
        trace = traced_run(workload, cache=fresh)
        assert fresh.stats.errors == 1
        assert trace.summary.branches == workload.limits.max_branches

    def test_disabled_cache_never_stores(self, workload, monkeypatch):
        cache = TraceCache(root="off")
        assert not cache.enabled
        trace = traced_run(workload, cache=cache)
        assert cache.stats.puts == 0
        assert cache.stats.hits == 0
        assert trace.summary.branches == workload.limits.max_branches

    def test_truncated_file_is_a_miss_and_removed(self, workload, tmp_path):
        cache = TraceCache(root=str(tmp_path))
        reference = traced_run(workload, cache=cache)
        path = cache.path_of(key_of(workload))
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        fresh = TraceCache(root=str(tmp_path))
        trace = traced_run(workload, cache=fresh)
        assert fresh.stats.errors == 1
        assert fresh.stats.hits == 0
        assert not os.path.exists(path) or fresh.stats.puts == 1
        assert traces_equal(trace, reference)

    def test_stale_schema_version_is_a_miss(self, workload, tmp_path):
        cache = TraceCache(root=str(tmp_path))
        reference = traced_run(workload, cache=cache)
        key = key_of(workload)
        path = cache.path_of(key)
        # Rewrite the entry claiming an older schema version.
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        arrays["stamp"] = np.asarray([key, f"v{_FORMAT_VERSION - 1}"])
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        fresh = TraceCache(root=str(tmp_path))
        trace = traced_run(workload, cache=fresh)
        assert fresh.stats.errors == 1
        assert fresh.stats.hits == 0
        assert traces_equal(trace, reference)

    def test_pre_stamp_entry_is_a_miss(self, workload, tmp_path):
        cache = TraceCache(root=str(tmp_path))
        traced_run(workload, cache=cache)
        path = cache.path_of(key_of(workload))
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        del arrays["stamp"]
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        fresh = TraceCache(root=str(tmp_path))
        assert fresh.get(key_of(workload), workload.program) is None
        assert fresh.stats.errors == 1

    def test_hash_mismatch_entry_is_a_miss(self, workload, tmp_path):
        """An entry whose embedded key disagrees with its file name
        (misnamed copy, tampering) must never be trusted."""
        cache = TraceCache(root=str(tmp_path))
        traced_run(workload, cache=cache)
        source = cache.path_of(key_of(workload))
        other = build_workload(small_spec(seed=22))
        other_key = key_of(other)
        with open(source, "rb") as src, open(
            cache.path_of(other_key), "wb"
        ) as dst:
            dst.write(src.read())
        fresh = TraceCache(root=str(tmp_path))
        trace = traced_run(other, cache=fresh)
        assert fresh.stats.errors == 1
        assert fresh.stats.hits == 0
        # The recomputed trace belongs to `other`, not to the workload
        # whose bytes were copied over its slot.
        assert trace.summary.branches == other.limits.max_branches
        assert not np.array_equal(
            trace.uids,
            traced_run(workload, cache=TraceCache(root="off")).uids,
        )
