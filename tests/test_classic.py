"""Tests for the classic optimization passes (copy prop, folding, DCE)."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import R
from repro.optimize import (
    constant_folding,
    copy_propagation,
    dead_code_elimination,
    run_classic_passes,
)
from repro.packages.package import Package
from repro.program.block import BasicBlock


def make_package(instruction_lists):
    """Package with straight-line blocks ending in explicit transfers."""
    package = Package(name="pkg", region_index=0, root="f")
    labels = [f"b{i}" for i in range(len(instruction_lists))]
    for i, (label, instructions) in enumerate(zip(labels, instruction_lists)):
        body = list(instructions)
        if i + 1 < len(labels):
            body.append(Instruction(Opcode.JUMP, target=labels[i + 1]))
        else:
            body.append(Instruction(Opcode.RET))
        package.blocks.append(BasicBlock(label, body))
    package.entry_map[labels[0]] = ("f", labels[0])
    return package


class TestCopyPropagation:
    def test_basic_forwarding(self):
        package = make_package([[
            Instruction(Opcode.MOV, dest=R(2), srcs=(R(1),)),
            Instruction(Opcode.ADD, dest=R(3), srcs=(R(2), R(2))),
        ]])
        assert copy_propagation(package) == 1
        add = package.blocks[0].instructions[1]
        assert add.srcs == (R(1), R(1))

    def test_copy_killed_by_redefinition_of_source(self):
        package = make_package([[
            Instruction(Opcode.MOV, dest=R(2), srcs=(R(1),)),
            Instruction(Opcode.MOVI, dest=R(1), imm=9),   # kills the copy
            Instruction(Opcode.ADD, dest=R(3), srcs=(R(2), R(2))),
        ]])
        copy_propagation(package)
        add = package.blocks[0].instructions[2]
        assert add.srcs == (R(2), R(2))

    def test_copy_killed_by_redefinition_of_dest(self):
        package = make_package([[
            Instruction(Opcode.MOV, dest=R(2), srcs=(R(1),)),
            Instruction(Opcode.MOVI, dest=R(2), imm=9),
            Instruction(Opcode.ADD, dest=R(3), srcs=(R(2), R(2))),
        ]])
        copy_propagation(package)
        add = package.blocks[0].instructions[2]
        assert add.srcs == (R(2), R(2))

    def test_does_not_cross_blocks(self):
        package = make_package([
            [Instruction(Opcode.MOV, dest=R(2), srcs=(R(1),))],
            [Instruction(Opcode.ADD, dest=R(3), srcs=(R(2), R(2)))],
        ])
        assert copy_propagation(package) == 0


class TestConstantFolding:
    def test_fold_into_immediate_form(self):
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(1), imm=5),
            Instruction(Opcode.ADD, dest=R(2), srcs=(R(3), R(1))),
        ]])
        assert constant_folding(package) == 1
        folded = package.blocks[0].instructions[1]
        assert folded.opcode is Opcode.ADDI
        assert folded.srcs == (R(3),)
        assert folded.imm == 5

    def test_constant_killed_by_redefinition(self):
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(1), imm=5),
            Instruction(Opcode.ADD, dest=R(1), srcs=(R(1), R(1))),
            Instruction(Opcode.ADD, dest=R(2), srcs=(R(3), R(1))),
        ]])
        constant_folding(package)
        assert package.blocks[0].instructions[2].opcode is Opcode.ADD


class TestDeadCodeElimination:
    def test_overwritten_value_removed(self):
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(1), imm=1),   # dead: overwritten
            Instruction(Opcode.MOVI, dest=R(1), imm=2),
        ]])
        assert dead_code_elimination(package) == 1
        (survivor, _ret) = package.blocks[0].instructions
        assert survivor.imm == 2

    def test_values_escaping_the_package_survive(self):
        # r40 is never read inside the package, but a later `ret` means
        # the caller may read it: boundary liveness keeps it.
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(40), imm=7),
        ]])
        assert dead_code_elimination(package) == 0

    def test_chain_of_dead_producers_removed(self):
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(1), imm=1),
            Instruction(Opcode.ADD, dest=R(2), srcs=(R(1), R(1))),
            Instruction(Opcode.MOVI, dest=R(2), imm=0),   # kills the add
            Instruction(Opcode.MOVI, dest=R(1), imm=0),   # kills the movi
        ]])
        removed = dead_code_elimination(package)
        assert removed == 2

    def test_stores_and_control_never_removed(self):
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(1), imm=1),
            Instruction(Opcode.STORE, srcs=(R(1), R(2))),
        ]])
        assert dead_code_elimination(package) == 0


class TestEndToEndSemantics:
    def test_classic_passes_preserve_real_semantics(self):
        """Optimize a real package and run the interpreter on both."""
        from repro.engine import Interpreter
        from tests.test_postlink import build_semantic_packed

        program, packed_plain = build_semantic_packed()
        baseline = Interpreter(program).run()

        # Re-pack with the classic passes applied to every package.
        from repro.hsd.records import HotSpotRecord
        from repro.isa.assembler import assemble
        from repro.packages import construct_all
        from repro.postlink import rewrite_program
        from repro.regions import identify_region
        from tests.test_postlink import SEMANTIC_PROFILE, SEMANTIC_SRC

        program2 = assemble(SEMANTIC_SRC)
        record = HotSpotRecord(
            index=0, detected_at_branch=0,
            branches={p.address: p for p in SEMANTIC_PROFILE.values()},
        )
        locate = {p.address: loc for loc, p in SEMANTIC_PROFILE.items()}
        region = identify_region(program2, record, locate)
        plan = construct_all([region])
        total_changes = 0
        for package in plan.packages:
            total_changes += run_classic_passes(package).total
        packed = rewrite_program(program2, plan)

        optimized = Interpreter(packed.program).run()
        baseline2 = Interpreter(program2).run()
        assert optimized.state.int_regs.get(10) == baseline2.state.int_regs.get(10)
        assert optimized.state.int_regs.get(12) == baseline2.state.int_regs.get(12)

    def test_report_totals(self):
        package = make_package([[
            Instruction(Opcode.MOVI, dest=R(1), imm=5),
            Instruction(Opcode.MOV, dest=R(2), srcs=(R(1),)),
            Instruction(Opcode.ADD, dest=R(3), srcs=(R(4), R(2))),
            Instruction(Opcode.MOVI, dest=R(3), imm=0),
        ]])
        report = run_classic_passes(package)
        assert report.copies_propagated >= 1
        assert report.constants_folded >= 1
        assert report.dead_removed >= 1
        assert report.total == (
            report.copies_propagated
            + report.constants_folded
            + report.dead_removed
        )
