"""Tests for the block-granularity behavioral executor."""

import pytest

from repro.engine import (
    BehaviorModel,
    BlockExecutor,
    BranchTrace,
    ExecutionLimits,
    PhaseScript,
    StopReason,
)
from repro.isa.assembler import assemble


def branch_uid(program, fn, label):
    block = program.functions[fn].cfg.by_label[label]
    return block.terminator.uid


def run(program, biases, max_branches=10_000, script=None, hooks=(), block_hook=None):
    behavior = BehaviorModel()
    for (fn, label), prob in biases.items():
        behavior.set_bias(branch_uid(program, fn, label), prob)
    executor = BlockExecutor(
        program,
        behavior,
        script or PhaseScript.from_pairs([(0, 1 << 30)]),
        branch_hooks=list(hooks),
        block_hook=block_hook,
        limits=ExecutionLimits(max_branches=max_branches),
    )
    return executor, executor.run()


class TestControlFlow:
    def test_halt_stops_execution(self):
        program = assemble("func main:\n  e:\n    movi r1, 1\n    halt\n")
        _, summary = run(program, {})
        assert summary.stop_reason is StopReason.HALTED
        assert summary.instructions == 2
        assert summary.branches == 0

    def test_loop_iterates_and_calls_every_iteration(self, loop_program):
        _, summary = run(
            loop_program,
            {("main", "cond"): 1.0, ("work", "w0"): 0.5},
            max_branches=1000,
        )
        assert summary.stop_reason is StopReason.BRANCH_LIMIT
        assert summary.calls == summary.block_visits[
            loop_program.functions["work"].cfg.by_label["w0"].uid
        ]
        assert summary.calls >= 400  # two branches per iteration

    def test_biased_loop_eventually_falls_through(self, loop_program):
        # cond taken with p=0.9: geometric exit, must halt well before
        # the generous branch budget.
        _, summary = run(
            loop_program, {("main", "cond"): 0.9, ("work", "w0"): 0.5},
            max_branches=100_000,
        )
        assert summary.stop_reason is StopReason.HALTED
        tail_uid = loop_program.functions["main"].cfg.by_label["tail"].uid
        assert summary.block_visits[tail_uid] == 1

    def test_branch_limit(self, loop_program):
        _, summary = run(
            loop_program, {("main", "cond"): 1.0}, max_branches=500
        )
        assert summary.stop_reason is StopReason.BRANCH_LIMIT
        assert summary.branches == 500

    def test_instruction_limit(self, loop_program):
        behavior = BehaviorModel()
        behavior.set_bias(branch_uid(loop_program, "main", "cond"), 1.0)
        executor = BlockExecutor(
            loop_program,
            behavior,
            PhaseScript.from_pairs([(0, 1 << 30)]),
            limits=ExecutionLimits(max_instructions=1000),
        )
        summary = executor.run()
        assert summary.stop_reason is StopReason.INSTRUCTION_LIMIT
        assert summary.instructions >= 1000

    def test_call_and_return_stack(self):
        program = assemble(
            """
            func main:
              e:
                call a
              x:
                halt
            func a:
              a0:
                call b
              a1:
                ret
            func b:
              b0:
                ret
            """
        )
        _, summary = run(program, {})
        assert summary.stop_reason is StopReason.HALTED
        assert summary.calls == 2

    def test_return_with_empty_stack_underflows(self):
        program = assemble("func main:\n  e:\n    ret\n")
        _, summary = run(program, {})
        assert summary.stop_reason is StopReason.STACK_UNDERFLOW

    def test_block_visits_counted(self, loop_program):
        _, summary = run(loop_program, {("main", "cond"): 0.0})
        loop_uid = loop_program.functions["main"].cfg.by_label["loop"].uid
        assert summary.block_visits[loop_uid] == 1


class TestHooksAndPhases:
    def test_branch_hook_sees_every_branch(self, loop_program):
        trace = BranchTrace()
        _, summary = run(
            loop_program, {("main", "cond"): 0.9}, hooks=[trace]
        )
        assert len(trace.events) == summary.branches

    def test_phase_passed_to_hook(self, loop_program):
        script = PhaseScript.from_pairs([(0, 10), (1, 1 << 30)])
        trace = BranchTrace()
        run(
            loop_program,
            {("main", "cond"): 1.0},
            script=script,
            hooks=[trace],
            max_branches=60,
        )
        phases = [phase for (_uid, _taken, phase) in trace.events]
        assert len(phases) == 60
        assert phases[:10] == [0] * 10
        assert all(p == 1 for p in phases[10:])

    def test_block_hook_sequence_starts_at_entry(self, loop_program):
        visited = []
        run(
            loop_program,
            {("main", "cond"): 0.0},
            block_hook=lambda info: visited.append((info.function, info.label)),
        )
        assert visited[0] == ("main", "entry")
        assert ("work", "w0") in visited

    def test_phase_changes_branch_behaviour(self, loop_program):
        # w0 taken in phase 0, not taken in phase 1; check the split.
        behavior = BehaviorModel()
        behavior.set_bias(branch_uid(loop_program, "main", "cond"), 0.999)
        behavior.set_phase_biases(
            branch_uid(loop_program, "work", "w0"), {0: 1.0, 1: 0.0}
        )
        trace = BranchTrace()
        executor = BlockExecutor(
            loop_program,
            behavior,
            PhaseScript.from_pairs([(0, 100), (1, 100)]),
            branch_hooks=[trace],
            limits=ExecutionLimits(max_branches=200),
        )
        executor.run()
        w0 = branch_uid(loop_program, "work", "w0")
        phase0 = [t for (uid, t, p) in trace.events if uid == w0 and p == 0]
        phase1 = [t for (uid, t, p) in trace.events if uid == w0 and p == 1]
        assert all(phase0) and phase0
        assert not any(phase1) and phase1


class TestDeterminismAcrossPrograms:
    def test_origin_uid_aligns_copies(self, loop_program):
        """A cloned branch resolves identically to its original."""
        behavior = BehaviorModel()
        uid = branch_uid(loop_program, "work", "w0")
        behavior.set_bias(uid, 0.37)
        original = [behavior.taken(uid, i, 0) for i in range(50)]
        clone = loop_program.functions["work"].cfg.by_label["w0"].terminator.clone()
        cloned = [behavior.taken(clone.root_origin(), i, 0) for i in range(50)]
        assert original == cloned

    def test_identical_runs_identical_summaries(self, loop_program):
        _, first = run(loop_program, {("main", "cond"): 0.97})
        _, second = run(loop_program, {("main", "cond"): 0.97})
        assert first.instructions == second.instructions
        assert first.branches == second.branches
        assert first.block_visits == second.block_visits


class TestCrossFunctionTransfers:
    def test_cross_function_jump(self):
        program = assemble(
            """
            func main:
              e:
                jump helper::inside
              dead:
                halt
            func helper:
              h0:
                movi r1, 1
              inside:
                halt
            """,
            validate=True,
        )
        _, summary = run(program, {})
        assert summary.stop_reason is StopReason.HALTED
        inside_uid = program.functions["helper"].cfg.by_label["inside"].uid
        h0_uid = program.functions["helper"].cfg.by_label["h0"].uid
        assert summary.block_visits[inside_uid] == 1
        assert h0_uid not in summary.block_visits

    def test_continuations_restore_return_path(self):
        # Model of a package side exit leaving inlined callee code: the
        # exit block pushes the original return point, then jumps into
        # the original callee body; its `ret` must land there.
        from repro.program import BasicBlock, Function
        from repro.isa.instructions import Instruction, Opcode

        program = assemble(
            """
            func main:
              e:
                jump pkg::p0
              after_call:
                halt
            func callee:
              c0:
                movi r2, 5
              c1:
                ret
            """,
            validate=True,
        )
        exit_block = BasicBlock(
            "p0",
            [Instruction(Opcode.JUMP, target="callee::c0")],
            continuations=(("main", "after_call"),),
        )
        program.add_function(Function("pkg", [exit_block]))
        _, summary = run(program, {})
        assert summary.stop_reason is StopReason.HALTED
        after_uid = program.functions["main"].cfg.by_label["after_call"].uid
        assert summary.block_visits[after_uid] == 1
