"""Tests for the Hot Spot Detector (HDC dynamics, timers, detection)."""

from repro.hsd import HotSpotDetector, HSDConfig


def small_config(**overrides):
    defaults = dict(
        bbb_sets=16,
        bbb_ways=4,
        candidate_threshold=4,
        hdc_bits=7,            # max 127: fast detection in tests
        refresh_interval=4096,
        clear_interval=65526,
    )
    defaults.update(overrides)
    return HSDConfig(**defaults)


def drive(detector, addresses, repetitions):
    """Feed a round-robin branch stream; return detections."""
    records = []
    for _ in range(repetitions):
        for address in addresses:
            record = detector.observe(address, taken=True)
            if record is not None:
                records.append(record)
    return records


class TestDetection:
    def test_hot_loop_detected(self):
        detector = HotSpotDetector(small_config())
        records = drive(detector, [0x1000, 0x1008], repetitions=200)
        assert records, "a tight two-branch loop must be detected"
        assert set(records[0].branches) == {0x1000, 0x1008}

    def test_detection_resets_monitoring(self):
        detector = HotSpotDetector(small_config())
        drive(detector, [0x1000], repetitions=400)
        assert detector.stats.detections >= 2  # re-detects after reset
        assert detector.hdc > 0  # armed again after last detection

    def test_record_counts_reflect_bias(self):
        detector = HotSpotDetector(small_config())
        records = []
        for i in range(400):
            record = detector.observe(0x1000, taken=(i % 4 != 0))
            if record is not None:
                records.append(record)
        profile = records[0].branches[0x1000]
        assert abs(profile.taken_fraction - 0.75) < 0.1

    def test_cold_stream_never_detects(self):
        # Every branch unique: nothing reaches the candidate threshold.
        detector = HotSpotDetector(small_config())
        for i in range(20_000):
            record = detector.observe(0x1000 + 8 * i, True)
            assert record is None
        assert detector.stats.detections == 0

    def test_detection_indices_increase(self):
        detector = HotSpotDetector(small_config())
        records = drive(detector, [0x1000], repetitions=500)
        indices = [r.index for r in records]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)


class TestHDCDynamics:
    def test_candidate_moves_toward_detection(self):
        config = small_config()
        detector = HotSpotDetector(config)
        # Warm one branch to candidate status.
        for _ in range(config.candidate_threshold):
            detector.observe(0x1000, True)
        armed = detector.hdc
        detector.observe(0x1000, True)
        assert detector.hdc == armed - config.hdc_candidate_step

    def test_noncandidate_moves_away(self):
        config = small_config(hdc_bits=13)
        detector = HotSpotDetector(config)
        for _ in range(config.candidate_threshold):
            detector.observe(0x1000, True)
        for _ in range(10):
            detector.observe(0x1000, True)
        low = detector.hdc
        detector.observe(0x9000, True)  # a fresh, non-candidate branch
        assert detector.hdc == min(config.hdc_max, low + config.hdc_noncandidate_step)

    def test_hdc_saturates_at_max(self):
        config = small_config()
        detector = HotSpotDetector(config)
        for i in range(50):
            detector.observe(0x1000 + 8 * i, True)
        assert detector.hdc == config.hdc_max


class TestTimers:
    def test_refresh_rearms_hdc(self):
        config = small_config(refresh_interval=64, hdc_bits=13)
        detector = HotSpotDetector(config)
        # A 50% candidate mix drifts down but cannot beat the refresh.
        for i in range(8):
            detector.observe(0x1000, True)  # becomes candidate quickly
        for i in range(500):
            detector.observe(0x1000, True)
            detector.observe(0x2000 + 8 * (i % 64), True)
        assert detector.stats.detections == 0
        assert detector.stats.refreshes > 0

    def test_clear_timer_flushes_stale_bbb(self):
        config = small_config(clear_interval=128)
        detector = HotSpotDetector(config)
        detector.observe(0x1000, True)
        # A cold stream of unique branches: no candidates, no detection,
        # so the clear timer must eventually flush the stale entry.
        for i in range(200):
            detector.observe(0x2000 + 8 * i, False)
            if detector.stats.clears:
                break
        assert detector.stats.clears >= 1
        assert 0x1000 not in detector.bbb
        assert detector.stats.detections == 0

    def test_table2_detector_reacts_within_tens_of_thousands(self):
        # With Table 2 parameters a fully hot loop is detected in
        # roughly hdc_max / step branches after warmup (< 3 refreshes).
        detector = HotSpotDetector(HSDConfig())
        count = 0
        for _ in range(30_000):
            count += 1
            if detector.observe(0x1000, True) is not None:
                break
        assert count < 16_384
