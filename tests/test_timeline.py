"""Tests for the phase-timeline rendering helpers."""

from repro.engine.phases import PhaseScript
from repro.experiments import detection_latencies, render_timeline
from repro.experiments.timeline import render_record_lanes, render_truth_lane
from repro.hsd.records import BranchProfile, HotSpotRecord


def record(index, detected_at):
    return HotSpotRecord(
        index=index,
        detected_at_branch=detected_at,
        branches={0x10: BranchProfile(0x10, 100, 50)},
    )


class TestTruthLane:
    def test_phases_fill_proportionally(self):
        script = PhaseScript.from_pairs([(0, 500), (1, 500)])
        lane = render_truth_lane(script, width=10)
        assert lane == "0000011111"

    def test_phase_ids_wrap_mod_ten(self):
        script = PhaseScript.from_pairs([(12, 100)])
        assert render_truth_lane(script, width=4) == "2222"


class TestRecordLanes:
    def test_detection_marker_and_reign(self):
        lanes = render_record_lanes([record(0, 0), record(1, 500)], 1000, 10)
        assert lanes[0].cells[0] == "^"
        assert lanes[1].cells[5] == "^"
        assert "#" in lanes[0].cells[1:5]
        assert lanes[0].cells[6:] == "    "

    def test_lanes_sorted_by_detection(self):
        lanes = render_record_lanes([record(5, 900), record(2, 100)], 1000, 10)
        assert lanes[0].label == "record 2"
        assert lanes[1].label == "record 5"


class TestRenderTimeline:
    def test_full_render_contains_all_lanes(self):
        script = PhaseScript.from_pairs([(0, 600), (1, 400)])
        text = render_timeline(script, [record(0, 10), record(3, 620)], width=40)
        lines = text.splitlines()
        assert lines[0].startswith("truth")
        assert any(line.startswith("record 0") for line in lines)
        assert any(line.startswith("record 3") for line in lines)
        assert "1,000" in lines[-1]

    def test_lane_widths_equal(self):
        script = PhaseScript.from_pairs([(0, 100)])
        text = render_timeline(script, [record(0, 5)], width=30)
        lanes = text.splitlines()[:-1]
        assert len({len(line) for line in lanes}) == 1


class TestDetectionLatencies:
    def test_latency_per_transition(self):
        script = PhaseScript.from_pairs([(0, 1000), (1, 1000)])
        records = [record(0, 150), record(1, 1200)]
        assert detection_latencies(script, records) == [150, 200]

    def test_missing_detection_skipped(self):
        script = PhaseScript.from_pairs([(0, 1000), (1, 1000)])
        records = [record(0, 150)]  # nothing detected after the boundary
        assert detection_latencies(script, records) == [150]
