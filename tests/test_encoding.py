"""Tests for the fixed-width binary encoding and post-link patching."""

import pytest

from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    EncodingError,
    decode_instruction,
    encode_instruction,
    patch_target,
)
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import F, R


def roundtrip(inst, address=0x1000, resolver=None):
    data = encode_instruction(inst, address, resolver)
    assert len(data) == INSTRUCTION_BYTES
    return decode_instruction(data, address)


class TestRoundTrip:
    def test_alu_roundtrip(self):
        inst = Instruction(Opcode.ADD, dest=R(3), srcs=(R(1), R(2)))
        decoded = roundtrip(inst)
        assert decoded.opcode is Opcode.ADD
        assert decoded.dest == R(3)
        assert decoded.srcs == (R(1), R(2))

    def test_immediate_roundtrip_negative(self):
        inst = Instruction(Opcode.ADDI, dest=R(3), srcs=(R(1),), imm=-17)
        decoded = roundtrip(inst)
        assert decoded.imm == -17

    def test_float_register_encoding(self):
        inst = Instruction(Opcode.FADD, dest=F(2), srcs=(F(0), F(31)))
        decoded = roundtrip(inst)
        assert decoded.dest == F(2)
        assert decoded.srcs == (F(0), F(31))

    def test_branch_displacement(self):
        inst = Instruction(Opcode.BRZ, srcs=(R(1),), target="lbl")
        data = encode_instruction(inst, 0x1000, lambda t: 0x1080)
        decoded = decode_instruction(data, 0x1000)
        assert decoded.imm == 0x80
        assert decoded.target == "0x1080"

    def test_backward_branch_displacement(self):
        inst = Instruction(Opcode.JUMP, target="lbl")
        data = encode_instruction(inst, 0x1100, lambda t: 0x1000)
        decoded = decode_instruction(data, 0x1100)
        assert decoded.imm == -0x100
        assert decoded.target == "0x1000"

    def test_representative_opcodes_roundtrip(self):
        cases = [
            Instruction(Opcode.MOVI, dest=R(1), imm=12345),
            Instruction(Opcode.MOV, dest=R(1), srcs=(R(2),)),
            Instruction(Opcode.NOP),
            Instruction(Opcode.LOAD, dest=R(1), srcs=(R(2),), imm=64),
            Instruction(Opcode.STORE, srcs=(R(1), R(2)), imm=-8),
            Instruction(Opcode.FSQRT, dest=F(1), srcs=(F(2),)),
            Instruction(Opcode.CVTIF, dest=F(1), srcs=(R(2),)),
            Instruction(Opcode.RET),
            Instruction(Opcode.HALT),
        ]
        for inst in cases:
            decoded = roundtrip(inst)
            assert decoded.opcode is inst.opcode
            assert decoded.dest == inst.dest
            assert decoded.srcs == inst.srcs
            if inst.opcode not in (Opcode.RET, Opcode.HALT, Opcode.NOP):
                assert decoded.imm == inst.imm


class TestErrors:
    def test_pseudo_instruction_rejected(self):
        consume = Instruction(Opcode.CONSUME, srcs=(R(1),))
        with pytest.raises(EncodingError):
            encode_instruction(consume, 0)

    def test_target_without_resolver_rejected(self):
        inst = Instruction(Opcode.CALL, target="f")
        with pytest.raises(EncodingError):
            encode_instruction(inst, 0)

    def test_decode_wrong_length_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(b"\x01\x02", 0)

    def test_decode_unknown_opcode_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(bytes([0xEE] + [0] * 7), 0)


class TestPatching:
    def test_patch_target_rewrites_displacement(self):
        inst = Instruction(Opcode.JUMP, target="a")
        image = bytearray(encode_instruction(inst, 0, lambda t: 0x40))
        assert decode_instruction(bytes(image), 0).imm == 0x40
        patch_target(image, 0, 0x100)
        assert decode_instruction(bytes(image), 0).imm == 0x100

    def test_patch_only_touches_displacement_bytes(self):
        inst = Instruction(Opcode.BRNZ, srcs=(R(9),), target="a")
        image = bytearray(encode_instruction(inst, 0, lambda t: 8))
        before = bytes(image[:4])
        patch_target(image, 0, -64)
        assert bytes(image[:4]) == before
        decoded = decode_instruction(bytes(image), 0)
        assert decoded.srcs == (R(9),)
        assert decoded.imm == -64
