"""Tests for the CPU timing substrate: predictors, caches, block timing."""

import pytest

from repro.cpu import (
    BranchTargetBuffer,
    FetchHierarchy,
    GsharePredictor,
    MemoryHierarchyConfig,
    ReturnAddressStack,
    SetAssociativeCache,
    TimingSimulator,
)
from repro.engine import BehaviorModel, BlockExecutor, ExecutionLimits, PhaseScript
from repro.isa.assembler import assemble
from repro.optimize import baseline_block_costs
from repro.workloads.base import Workload


class TestGshare:
    def test_learns_constant_direction(self):
        predictor = GsharePredictor()
        for _ in range(20):
            predictor.predict_and_update(0x1000, True)
        assert predictor.predict_and_update(0x1000, True)
        assert predictor.stats.accuracy > 0.8

    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor()
        correct_late = 0
        for i in range(400):
            correct = predictor.predict_and_update(0x1000, i % 2 == 0)
            if i >= 200:
                correct_late += correct
        assert correct_late > 190  # history disambiguates the pattern

    def test_random_stream_near_chance(self):
        from repro.engine.behavior import hash_unit

        predictor = GsharePredictor()
        hits = sum(
            predictor.predict_and_update(0x1000, hash_unit(1, i, 3) < 0.5)
            for i in range(4000)
        )
        assert 0.4 < hits / 4000 < 0.65

    def test_history_length(self):
        predictor = GsharePredictor(history_bits=10)
        assert predictor.table_size == 1024


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=1024, ways=4)
        assert not btb.lookup_and_update(0x1000)
        assert btb.lookup_and_update(0x1000)

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(entries=4, ways=1)
        addresses = [0x1000 + 8 * 4 * i for i in range(3)]  # same set
        for address in addresses:
            btb.lookup_and_update(address)
        # Oldest was evicted from the 1-way set.
        assert not btb.lookup_and_update(addresses[0])


class TestRAS:
    def test_push_pop_matches(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop_and_check(0x100)

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack()
        assert ras.pop() is None
        assert not ras.pop_and_check(0x100)

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for address in (1, 2, 3):
            ras.push(address)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped at overflow


class TestCaches:
    def test_cache_hit_after_fill(self):
        cache = SetAssociativeCache(size_bytes=1024, line_bytes=64, ways=2)
        assert not cache.access(5)
        assert cache.access(5)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_lru_within_set(self):
        cache = SetAssociativeCache(size_bytes=128, line_bytes=64, ways=2)
        # One set when sets = 128/(64*2) = 1.
        cache.access(0)
        cache.access(1)
        cache.access(0)  # refresh 0
        cache.access(2)  # evict 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_fetch_hierarchy_penalties(self):
        config = MemoryHierarchyConfig(
            l1i_bytes=1024, l2_bytes=4096, l2_latency=10, memory_latency=100
        )
        hierarchy = FetchHierarchy(config)
        first = hierarchy.fetch_penalty(0x4000, 8)
        assert first == 100  # cold: L1 and L2 miss
        again = hierarchy.fetch_penalty(0x4000, 8)
        assert again == 0    # L1 hit

    def test_multi_line_block_counts_each_line(self):
        hierarchy = FetchHierarchy(MemoryHierarchyConfig(l1i_bytes=1024, l2_bytes=4096))
        penalty = hierarchy.fetch_penalty(0x4000, 200)  # spans 4 lines
        assert penalty == 4 * hierarchy.config.memory_latency

    def test_zero_size_block_free(self):
        hierarchy = FetchHierarchy()
        assert hierarchy.fetch_penalty(0x4000, 0) == 0


def timing_workload():
    program = assemble(
        """
        func main:
          entry:
            movi r1, 0
          loop:
            addi r1, r1, 1
            call work
          cond:
            slt r2, r1, r3
            brnz r2, loop
          done:
            halt
        func work:
          w0:
            add r4, r5, r6
            mul r7, r4, r4
            ret
        """
    )
    behavior = BehaviorModel(seed=5)
    cond_uid = next(
        uid for uid, loc in program.branch_block_index().items()
        if loc == ("main", "cond")
    )
    behavior.set_bias(cond_uid, 1.0)
    return Workload(
        "timing", program, behavior,
        PhaseScript.from_pairs([(0, 1 << 20)]),
        ExecutionLimits(max_branches=2000),
    )


class TestTimingSimulator:
    def test_cycles_accumulate_components(self):
        workload = timing_workload()
        costs = baseline_block_costs(workload.program)
        result = TimingSimulator(workload.program, costs).run(workload)
        parts = (
            result.mispredict_cycles
            + result.fetch_bubble_cycles
            + result.icache_stall_cycles
            + result.btb_redirect_cycles
            + result.ras_penalty_cycles
        )
        assert result.cycles > parts
        assert result.instructions == result.summary.instructions

    def test_perfectly_biased_branch_predicts_well(self):
        workload = timing_workload()
        costs = baseline_block_costs(workload.program)
        result = TimingSimulator(workload.program, costs).run(workload)
        assert result.predictor_accuracy > 0.95

    def test_calls_and_returns_match_ras(self):
        workload = timing_workload()
        costs = baseline_block_costs(workload.program)
        result = TimingSimulator(workload.program, costs).run(workload)
        # Perfectly nested call/return: the RAS never mispredicts.
        assert result.ras_penalty_cycles == 0

    def test_taken_transfers_cost_bubbles(self):
        workload = timing_workload()
        costs = baseline_block_costs(workload.program)
        result = TimingSimulator(workload.program, costs).run(workload)
        # Each iteration: taken branch + call + ret = 3 bubbles.
        assert result.fetch_bubble_cycles >= 3 * 1900

    def test_deterministic(self):
        workload = timing_workload()
        costs = baseline_block_costs(workload.program)
        first = TimingSimulator(workload.program, costs).run(workload)
        second = TimingSimulator(workload.program, costs).run(workload)
        assert first.cycles == second.cycles

    def test_inverted_branch_direction_fed_to_predictor(self):
        # A physically inverted branch (hot path = fallthrough) must
        # train the predictor on the *physical* direction.  The
        # original branch is 100%-taken; after inversion it is
        # physically 100% not-taken — equally predictable, and the hot
        # path no longer pays a taken bubble at the branch itself.
        program = assemble(
            """
            func main:
              entry:
                movi r1, 0
              loop:
                addi r1, r1, 1
                slt r2, r1, r3
              cond:
                brz r2, done
              tramp:
                jump loop
              done:
                halt
            """
        )
        cond_block = program.functions["main"].cfg.by_label["cond"]
        cond_block.meta["branch_inverted"] = True
        behavior = BehaviorModel(seed=5)
        behavior.set_bias(cond_block.terminator.uid, 1.0)  # original taken
        workload = Workload(
            "inv", program, behavior,
            PhaseScript.from_pairs([(0, 1 << 20)]),
            ExecutionLimits(max_branches=2000),
        )
        costs = baseline_block_costs(program)
        result = TimingSimulator(program, costs).run(workload)
        assert result.summary.branches == 2000  # loops via the inversion
        assert result.predictor_accuracy > 0.95
        # Bubbles come only from the trampoline jump (1 per iteration).
        assert result.fetch_bubble_cycles <= 2001
