"""Tests for software hot-spot redundancy filtering (paper section 3.1)."""

from repro.hsd import (
    BranchProfile,
    HotSpotFilter,
    HotSpotRecord,
    SimilarityPolicy,
    bias_flips,
    filter_records,
    missing_fraction,
    same_hot_spot,
)


def record(index, profiles):
    return HotSpotRecord(
        index=index,
        detected_at_branch=index * 1000,
        branches={p.address: p for p in profiles},
    )


def taken(address):
    return BranchProfile(address, executed=100, taken=90)


def not_taken(address):
    return BranchProfile(address, executed=100, taken=10)


def unbiased(address):
    return BranchProfile(address, executed=100, taken=50)


class TestSimilarityCriteria:
    def test_identical_records_are_same(self):
        a = record(0, [taken(0x10), not_taken(0x18)])
        b = record(1, [taken(0x10), not_taken(0x18)])
        assert same_hot_spot(a, b)

    def test_thirty_percent_missing_rule(self):
        # 3 of 10 branches missing = 30% -> different hot spots.
        base = [taken(0x10 + 8 * i) for i in range(10)]
        a = record(0, base)
        b = record(1, base[:7])
        assert missing_fraction(a, b) >= 0.30
        assert not same_hot_spot(a, b)

    def test_under_thirty_percent_missing_is_same(self):
        base = [taken(0x10 + 8 * i) for i in range(10)]
        a = record(0, base)
        b = record(1, base[:8])  # only 20% missing
        assert same_hot_spot(a, b)

    def test_asymmetric_missing_uses_worse_side(self):
        big = record(0, [taken(0x10 + 8 * i) for i in range(20)])
        small = record(1, [taken(0x10 + 8 * i) for i in range(10)])
        # Half of big's branches are missing from small.
        assert missing_fraction(big, small) == 0.5
        assert missing_fraction(small, big) == 0.5  # symmetric helper

    def test_single_bias_flip_separates(self):
        # Paper: "if a single biased branch ... has a different bias
        # (taken vs. not-taken) between A and B, then A and B are
        # different hot spots."
        a = record(0, [taken(0x10), taken(0x18), taken(0x20)])
        b = record(1, [taken(0x10), taken(0x18), not_taken(0x20)])
        assert bias_flips(a, b) == 1
        assert not same_hot_spot(a, b)

    def test_unbiased_branch_cannot_flip(self):
        a = record(0, [taken(0x10), unbiased(0x18)])
        b = record(1, [taken(0x10), not_taken(0x18)])
        assert bias_flips(a, b) == 0
        assert same_hot_spot(a, b)

    def test_raised_flip_threshold_merges_phases(self):
        # The paper notes the flip threshold "could be increased to
        # more than one, yielding fewer unique hot spots."
        a = record(0, [taken(0x10), taken(0x18), taken(0x20)])
        b = record(1, [taken(0x10), not_taken(0x18), not_taken(0x20)])
        strict = SimilarityPolicy()
        relaxed = SimilarityPolicy(max_bias_flips=3)
        assert not same_hot_spot(a, b, strict)
        assert same_hot_spot(a, b, relaxed)


class TestHotSpotFilter:
    def test_duplicate_stream_collapses(self):
        records = [record(i, [taken(0x10), taken(0x18)]) for i in range(5)]
        unique = filter_records(records)
        assert len(unique) == 1
        assert unique[0].index == 0

    def test_distinct_phases_survive(self):
        phase_a = [taken(0x10), taken(0x18)]
        phase_b = [taken(0x40), taken(0x48)]
        stream = [record(0, phase_a), record(1, phase_b), record(2, phase_a)]
        unique = filter_records(stream)
        assert [r.index for r in unique] == [0, 1]

    def test_filter_compares_against_full_history(self):
        # A recurrence of phase A after phase B is still redundant.
        hs_filter = HotSpotFilter()
        assert hs_filter.accept(record(0, [taken(0x10)]))
        assert hs_filter.accept(record(1, [taken(0x80)]))
        assert not hs_filter.accept(record(2, [taken(0x10)]))
        assert hs_filter.rejected_count == 1

    def test_empty_record_rejected(self):
        hs_filter = HotSpotFilter()
        assert not hs_filter.accept(record(0, []))
