"""Tests for the repro.api facade, PipelineConfig, and the legacy shim."""

from __future__ import annotations

import json
import warnings

import pytest

import repro
from repro import api
from repro.api import (
    CONFIG_VERSION,
    SERVER_CONFIG_VERSION,
    ObsConfig,
    PipelineConfig,
    ServerConfig,
    config_from_legacy,
)
from repro.hsd.config import HSDConfig
from repro.postlink.vacuum import VacuumPacker
from repro.regions import selected_origins
from repro.regions.config import RegionConfig
from repro.service.farm import shard_payload
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def mcf():
    return load_benchmark("181.mcf", "A", scale=0.2)


# ---------------------------------------------------------------------------
# config round-trips
# ---------------------------------------------------------------------------

class TestPipelineConfig:
    def test_to_dict_from_dict_round_trip(self):
        config = PipelineConfig(
            hsd=HSDConfig(counter_bits=8),
            region=RegionConfig(max_growth_blocks=3),
            classic=True,
            ordering="worst",
            strict=True,
            validate=False,
            obs=ObsConfig(trace=True, trace_format="jsonl"),
        )
        assert PipelineConfig.from_dict(config.to_dict()) == config

    def test_document_is_json_round_trippable(self):
        document = PipelineConfig().to_dict()
        assert document["version"] == CONFIG_VERSION
        assert PipelineConfig.from_dict(
            json.loads(json.dumps(document))
        ) == PipelineConfig()

    def test_partial_document_takes_defaults(self):
        config = PipelineConfig.from_dict(
            {"classic": True, "hsd": {"counter_bits": 7}}
        )
        assert config.classic is True
        assert config.hsd.counter_bits == 7
        assert config.region == RegionConfig()
        assert config.validate is True

    def test_unknown_top_level_key_raises(self):
        with pytest.raises(ValueError, match="unknown key"):
            PipelineConfig.from_dict({"clasic": True})

    def test_unknown_nested_key_raises(self):
        with pytest.raises(ValueError, match="hsd"):
            PipelineConfig.from_dict({"hsd": {"counter_bitz": 9}})

    def test_version_mismatch_raises(self):
        with pytest.raises(ValueError, match="version"):
            PipelineConfig.from_dict({"version": 99})

    def test_bad_ordering_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PipelineConfig(ordering="bogus")

    def test_load_reads_config_file(self, tmp_path):
        path = tmp_path / "pipeline.json"
        path.write_text(json.dumps({"link": False}))
        assert PipelineConfig.load(str(path)).link is False

    def test_replace_returns_modified_copy(self):
        base = PipelineConfig()
        changed = base.replace(strict=True)
        assert changed.strict is True and base.strict is False

    def test_config_from_legacy_maps_kwargs(self):
        config = config_from_legacy(
            hsd_config=HSDConfig(counter_bits=6), classic=True
        )
        assert config.hsd.counter_bits == 6
        assert config.classic is True


class TestServerConfig:
    def test_to_dict_from_dict_round_trip(self):
        config = ServerConfig(
            benchmark="099.go",
            input_name="A",
            host="0.0.0.0",
            port=9090,
            scale=0.2,
            jobs=4,
            pipeline=PipelineConfig(classic=True).to_dict(),
            tag="fleet",
            gc_max_bytes=1_000_000,
        )
        assert ServerConfig.from_dict(config.to_dict()) == config

    def test_document_is_json_round_trippable(self):
        config = ServerConfig(benchmark="181.mcf")
        document = config.to_dict()
        assert document["version"] == SERVER_CONFIG_VERSION
        assert ServerConfig.from_dict(
            json.loads(json.dumps(document))
        ) == config

    def test_partial_document_takes_defaults(self):
        config = ServerConfig.from_dict(
            {"benchmark": "130.li", "port": 8080}
        )
        assert config.benchmark == "130.li"
        assert config.port == 8080
        assert config.input_name == "A"
        assert config.pipeline is None
        assert config.default_tenant == "130.li/A"

    def test_partial_pipeline_section_normalizes(self):
        config = ServerConfig.from_dict(
            {"benchmark": "130.li", "pipeline": {"classic": True}}
        )
        assert config.pipeline == PipelineConfig(classic=True).to_dict()
        assert PipelineConfig.from_dict(config.pipeline).classic is True

    def test_benchmark_is_required(self):
        with pytest.raises(ValueError, match="benchmark"):
            ServerConfig.from_dict({"port": 8080})

    def test_unknown_top_level_key_raises(self):
        with pytest.raises(ValueError, match="unknown key"):
            ServerConfig.from_dict({"benchmark": "181.mcf", "prot": 1})

    def test_unknown_nested_pipeline_key_raises(self):
        with pytest.raises(ValueError, match="unknown key"):
            ServerConfig.from_dict(
                {"benchmark": "181.mcf", "pipeline": {"clasic": True}}
            )

    def test_version_mismatch_raises(self):
        with pytest.raises(ValueError, match="version"):
            ServerConfig.from_dict({"benchmark": "181.mcf", "version": 99})

    def test_load_reads_config_file(self, tmp_path):
        path = tmp_path / "server.json"
        path.write_text(json.dumps({"benchmark": "181.mcf", "jobs": 3}))
        config = ServerConfig.load(str(path))
        assert config.jobs == 3 and config.benchmark == "181.mcf"

    def test_replace_returns_modified_copy(self):
        base = ServerConfig(benchmark="181.mcf")
        changed = base.replace(port=7777)
        assert changed.port == 7777 and base.port == 0

    def test_frozen(self):
        with pytest.raises(Exception):
            ServerConfig(benchmark="181.mcf").port = 1


# ---------------------------------------------------------------------------
# facades
# ---------------------------------------------------------------------------

class TestFacades:
    def test_pack_matches_vacuum_packer(self, mcf):
        via_facade = repro.pack(mcf)
        direct = VacuumPacker(PipelineConfig()).pack(mcf)
        assert via_facade.expansion_row() == direct.expansion_row()

    def test_pack_accepts_benchmark_spec(self):
        result = repro.pack("181.mcf/A", scale=0.2)
        assert result.packages

    def test_profile_facade(self, mcf):
        profile = repro.profile(mcf)
        assert profile.records

    def test_lazy_exports_resolve(self):
        assert repro.PipelineConfig is PipelineConfig
        assert repro.ObsConfig is ObsConfig
        with pytest.raises(AttributeError):
            repro.does_not_exist


# ---------------------------------------------------------------------------
# legacy shim
# ---------------------------------------------------------------------------

class TestLegacyShim:
    def test_config_path_never_warns(self, mcf):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            packer = VacuumPacker(PipelineConfig(validate=False))
            packer.pack(mcf)

    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="PipelineConfig"):
            packer = VacuumPacker(strict=True, link=False)
        assert packer.config.strict is True
        assert packer.config.link is False

    def test_legacy_positional_hsd_config_warns(self):
        hsd = HSDConfig(counter_bits=8)
        with pytest.warns(DeprecationWarning):
            packer = VacuumPacker(hsd)
        assert packer.config.hsd == hsd
        assert packer.hsd_config == hsd  # back-compat mirror

    def test_wrong_config_type_raises(self):
        with pytest.raises(TypeError, match="PipelineConfig"):
            VacuumPacker(config="classic")

    def test_shim_matches_config_spelling(self, mcf):
        with pytest.warns(DeprecationWarning):
            legacy = VacuumPacker(classic=True, validate=False)
        modern = VacuumPacker(
            PipelineConfig(classic=True, validate=False)
        )
        assert (
            legacy.pack(mcf).expansion_row()
            == modern.pack(mcf).expansion_row()
        )


# ---------------------------------------------------------------------------
# one shared unique-selected-instruction count (satellite regression)
# ---------------------------------------------------------------------------

class TestUniqueSelected:
    def test_expansion_row_and_shard_payload_agree(self, mcf):
        result = repro.pack(mcf)
        expected = len(selected_origins(result.regions))
        assert result.unique_selected_instructions() == expected
        row = result.expansion_row()
        original = result.packed.original_static_size
        assert row["pct_selected"] == 100.0 * expected / original
        phases = sorted(
            {region.record.index for region in result.regions}
        )
        payload = shard_payload(result, phases)
        assert payload["unique_selected"] == expected
