"""Tests for the register model and calling convention."""

import pytest

from repro.isa.registers import (
    ARG_REGS,
    CALLEE_SAVED,
    CALLER_SAVED,
    F,
    INT_RETURN_REG,
    R,
    Reg,
    RegClass,
    STACK_POINTER,
    parse_reg,
)


class TestRegConstruction:
    def test_int_register_name(self):
        assert R(5).name == "r5"
        assert str(R(5)) == "r5"

    def test_float_register_name(self):
        assert F(3).name == "f3"

    def test_out_of_range_int_register_rejected(self):
        with pytest.raises(ValueError):
            R(64)

    def test_out_of_range_float_register_rejected(self):
        with pytest.raises(ValueError):
            F(32)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            R(-1)

    def test_registers_hashable_and_equal(self):
        assert R(7) == Reg(RegClass.INT, 7)
        assert len({R(7), Reg(RegClass.INT, 7), F(7)}) == 2

    def test_registers_ordered(self):
        assert sorted([R(2), R(1)]) == [R(1), R(2)]


class TestParseReg:
    def test_parse_int(self):
        assert parse_reg("r12") == R(12)

    def test_parse_float(self):
        assert parse_reg(" f3 ") == F(3)

    def test_parse_rejects_garbage(self):
        for bad in ("x1", "r", "rr3", "r1a", ""):
            with pytest.raises(ValueError):
                parse_reg(bad)

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            parse_reg("f40")


class TestCallingConvention:
    def test_arg_regs_are_r1_to_r8(self):
        assert list(ARG_REGS) == [R(i) for i in range(1, 9)]

    def test_return_reg_is_first_arg(self):
        assert INT_RETURN_REG == R(1)

    def test_caller_and_callee_saved_disjoint(self):
        assert not (CALLER_SAVED & CALLEE_SAVED)

    def test_stack_pointer_is_callee_saved(self):
        assert STACK_POINTER in CALLEE_SAVED

    def test_args_are_caller_saved(self):
        assert set(ARG_REGS) <= CALLER_SAVED
