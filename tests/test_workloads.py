"""Tests for the synthetic workload generator and the Table 1 suite."""

import pytest

from repro.workloads.suite import (
    SUITE,
    benchmark_names,
    load_benchmark,
    suite_entries,
)
from repro.workloads.synthetic import (
    MIN_PHASE_BRANCHES,
    SyntheticSpec,
    build_workload,
)


def small_spec(**overrides):
    defaults = dict(
        name="t.bench",
        seed=3,
        phases=2,
        work_functions=4,
        functions_per_phase=2,
        cold_functions=5,
        cold_blocks_per_function=4,
        branch_budget=2 * MIN_PHASE_BRANCHES,
    )
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


class TestGenerator:
    def test_program_validates(self):
        workload = build_workload(small_spec())
        workload.program.validate()
        assert workload.program.entry == "main"

    def test_deterministic_from_seed(self):
        a = build_workload(small_spec())
        b = build_workload(small_spec())
        assert a.program.static_size() == b.program.static_size()
        sa = a.run()
        sb = b.run()
        assert (sa.instructions, sa.taken_branches) == (
            sb.instructions,
            sb.taken_branches,
        )

    def test_different_seeds_differ(self):
        a = build_workload(small_spec(seed=3))
        b = build_workload(small_spec(seed=4))
        assert a.run().instructions != b.run().instructions

    def test_phase_script_respects_floor(self):
        workload = build_workload(small_spec(branch_budget=100))
        for segment in workload.phase_script.segments:
            assert segment.branches >= MIN_PHASE_BRANCHES

    def test_run_exhausts_branch_budget(self):
        workload = build_workload(small_spec())
        summary = workload.run()
        assert summary.branches == workload.limits.max_branches

    def test_cold_functions_never_execute(self):
        workload = build_workload(small_spec())
        summary = workload.run()
        visited = set(summary.block_visits)
        for function in workload.program.functions.values():
            if "_cold" in function.name:
                for block in function.blocks:
                    assert block.uid not in visited, function.name

    def test_phase_changes_dispatch_behaviour(self):
        workload = build_workload(small_spec(shared_fraction=0.0))
        # Executed functions differ between the two phase halves.
        halves = [set(), set()]
        boundary = workload.phase_script.segments[0].branches
        state = {"branches": 0}

        def branch_hook(_uid, _taken, _phase):
            state["branches"] += 1

        fn_of = {}
        for function in workload.program.functions.values():
            for block in function.blocks:
                fn_of[block.uid] = function.name

        def block_hook(info):
            half = 0 if state["branches"] < boundary else 1
            halves[half].add(fn_of[info.uid])

        workload.run(branch_hooks=[branch_hook], block_hook=block_hook)
        work0 = {f for f in halves[0] if "_work" in f and "_h" not in f}
        work1 = {f for f in halves[1] if "_work" in f and "_h" not in f}
        assert work0 != work1

    def test_recursion_flag_creates_self_call(self):
        workload = build_workload(small_spec(recursion=True))
        recursive = [
            f for f in workload.program.functions.values()
            if f.is_self_recursive()
        ]
        assert recursive

    def test_shared_root_dispatcher(self):
        workload = build_workload(small_spec(shared_root=True))
        assert any(
            name.endswith("_proc") for name in workload.program.functions
        )

    def test_per_phase_drivers(self):
        workload = build_workload(small_spec(shared_root=False))
        drivers = [
            name for name in workload.program.functions if "_drv" in name
        ]
        assert len(drivers) == 2


class TestSuite:
    def test_nineteen_inputs_thirteen_benchmarks(self):
        assert len(SUITE) == 19
        assert len(benchmark_names()) == 12

    def test_all_entries_loadable_structurally(self):
        # Programs build and validate for every entry (no execution).
        for entry in suite_entries():
            workload = load_benchmark(entry.benchmark, entry.input_name,
                                      scale=0.01)
            workload.program.validate()
            assert workload.program.static_size() > 500

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("999.nope")

    def test_scale_changes_budget_above_floor(self):
        big = load_benchmark("164.gzip", "A", scale=1.0)
        small = load_benchmark("164.gzip", "A", scale=0.5)
        assert big.limits.max_branches > small.limits.max_branches

    def test_table1_sizes_ordinal(self):
        budgets = {
            e.full_name: e.spec.branch_budget for e in suite_entries()
        }
        assert budgets["164.gzip/A"] > budgets["181.mcf/A"]
        assert budgets["134.perl/A"] > budgets["134.perl/C"]

    def test_meta_carries_entry(self):
        workload = load_benchmark("181.mcf", "A", scale=0.01)
        entry = workload.meta["entry"]
        assert entry.benchmark == "181.mcf"
        assert entry.paper_minsts == 105
