"""Tests for the semantic interpreter (real register/memory execution)."""

import pytest

from repro.engine import Interpreter, InterpreterError
from repro.isa.assembler import assemble


def run(src, **kwargs):
    program = assemble(src, **kwargs)
    return Interpreter(program).run()


class TestArithmetic:
    def test_sum_loop(self):
        result = run(
            """
            func main:
              e:
                movi r1, 0
                movi r2, 10
              loop:
                add r1, r1, r2
                subi r2, r2, 1
                brnz r2, loop
              out:
                halt
            """
        )
        assert result.state.int_regs[1] == sum(range(1, 11))
        assert result.halted

    def test_alu_operations(self):
        result = run(
            """
            func main:
              e:
                movi r1, 12
                movi r2, 5
                sub r3, r1, r2
                mul r4, r1, r2
                and r5, r1, r2
                or r6, r1, r2
                xor r7, r1, r2
                shli r8, r2, 2
                slt r9, r2, r1
                seq r10, r1, r1
                sne r11, r1, r1
                halt
            """
        )
        regs = result.state.int_regs
        assert regs[3] == 7
        assert regs[4] == 60
        assert regs[5] == 12 & 5
        assert regs[6] == 12 | 5
        assert regs[7] == 12 ^ 5
        assert regs[8] == 20
        assert regs[9] == 1
        assert regs[10] == 1
        assert regs[11] == 0

    def test_float_pipeline(self):
        result = run(
            """
            func main:
              e:
                movi r1, 9
                cvtif f1, r1
                fsqrt f2, f1
                movi r2, 2
                cvtif f3, r2
                fdiv f4, f1, f3
                fmul f5, f4, f3
                cvtfi r3, f2
                halt
            """
        )
        assert result.state.float_regs[2] == pytest.approx(3.0)
        assert result.state.float_regs[5] == pytest.approx(9.0)
        assert result.state.int_regs[3] == 3


class TestMemory:
    def test_store_then_load(self):
        result = run(
            """
            func main:
              e:
                movi r1, 100
                movi r2, 77
                store r2, [r1+8]
                load r3, [r1+8]
                halt
            """
        )
        assert result.state.int_regs[3] == 77
        assert result.state.memory[108] == 77

    def test_uninitialized_memory_reads_zero(self):
        result = run(
            """
            func main:
              e:
                movi r1, 4
                load r2, [r1+0]
                halt
            """
        )
        assert result.state.int_regs[2] == 0


class TestControl:
    def test_brz_taken_on_zero(self):
        result = run(
            """
            func main:
              e:
                movi r1, 0
                brz r1, yes
              no:
                movi r2, 1
                halt
              yes:
                movi r2, 2
                halt
            """
        )
        assert result.state.int_regs[2] == 2

    def test_call_computes_in_callee(self):
        result = run(
            """
            func main:
              e:
                movi r1, 21
                call double
              after:
                mov r5, r1
                halt
            func double:
              d:
                add r1, r1, r1
                ret
            """
        )
        assert result.state.int_regs[5] == 42

    def test_recursion_factorial(self):
        # factorial(5) via memory-based stack discipline
        result = run(
            """
            func main:
              e:
                movi r1, 5
                call fact
              after:
                halt
            func fact:
              f0:
                slti r9, r1, 2
                brnz r9, base
              rec:
                mov r10, r1
                store r10, [r60+0]
                addi r60, r60, 8
                subi r1, r1, 1
                call fact
              unwind:
                subi r60, r60, 8
                load r10, [r60+0]
                mul r1, r1, r10
                ret
              base:
                movi r1, 1
                ret
            """
        )
        assert result.state.int_regs[1] == 120

    def test_main_return_halts(self):
        result = run("func main:\n  e:\n    movi r1, 3\n    ret\n")
        assert result.halted
        assert result.state.int_regs[1] == 3

    def test_budget_exhaustion_raises(self):
        program = assemble(
            """
            func main:
              loop:
                movi r1, 1
                brnz r1, loop
              out:
                halt
            """
        )
        with pytest.raises(InterpreterError, match="budget"):
            Interpreter(program, max_instructions=1000).run()

    def test_trace_records_blocks(self):
        program = assemble(
            """
            func main:
              e:
                movi r1, 0
                brz r1, t
              f:
                halt
              t:
                halt
            """
        )
        result = Interpreter(program).run(trace_blocks=True)
        assert result.trace == [("main", "e"), ("main", "t")]
