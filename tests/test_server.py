"""The HTTP profile daemon: ingest, equivalence, artifacts, GC, restart."""

import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.hsd.serialize import make_provenance, records_to_dict
from repro.obs.render import stage_table
from repro.server import (
    DaemonClient,
    ProfileDaemon,
    ServerConfig,
    start_daemon_thread,
)
from repro.service import (
    ArtifactStore,
    ClientRun,
    ContractTolerance,
    FarmConfig,
    FleetProfile,
    MergePolicy,
    canonical_json,
    checkpoint_key,
    equivalence_diffs,
    merge_runs,
    pack_fleet,
    simulate_fleet,
)
from repro.hsd.serialize import document_from_json

BENCH, INPUT, SCALE = "181.mcf", "A", 0.2

#: The snapshot travels through ``FleetProfile.to_dict``, which rounds
#: the provenance agreement score to six decimals on the wire; every
#: other field (counters, run ids, epochs, branch sets) is exact.  The
#: relaxation absorbs wire rounding only — not aggregation divergence.
WIRE_CONTRACT = ContractTolerance(agreement_abs_tol=5e-7)


def rec(index, branches, detected=0):
    """branches = {address: (executed, taken)}"""
    return HotSpotRecord(
        index=index,
        detected_at_branch=detected,
        branches={
            addr: BranchProfile(addr, executed, taken)
            for addr, (executed, taken) in branches.items()
        },
    )


def doc_text(i, tenant=None):
    """One pinned-seed synthetic profile document as NDJSON-safe text.

    ``tenant`` stamps ``meta.benchmark``, which the daemon's flat
    ``POST /profiles`` uses to demultiplex; unstamped documents fold
    into the default tenant.
    """
    rng = random.Random(1000 + i)
    phase = i % 5
    base = 0x100 * (phase + 1)
    branches = {}
    for b in range(4 + phase % 3):
        executed = 50 + rng.randrange(200)
        branches[base + 8 * b] = (executed, rng.randrange(executed + 1))
    run_id = (f"{tenant}#client-{i:04d}" if tenant
              else f"client-{i:04d}")
    meta = {"provenance": make_provenance(run_id, seed=i, epoch=i % 3)}
    if tenant is not None:
        meta["benchmark"] = tenant
    return json.dumps(records_to_dict([rec(0, branches, detected=base)], meta))


def runs_of(texts):
    """Batch-ingest the same texts locally for comparison."""
    runs = []
    for text in texts:
        doc = document_from_json(text)
        runs.append(ClientRun.from_document(doc.run_id, doc))
    return runs


def daemon_config(**overrides):
    defaults = dict(
        benchmark=BENCH, input_name=INPUT, port=0, scale=SCALE, tag="test"
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestIngestEquivalence:
    N_DOCS = 1000

    @pytest.fixture(scope="class")
    def posted(self, tmp_path_factory):
        """Daemon fed N pinned docs over HTTP; returns (texts, snapshot)."""
        store = ArtifactStore(str(tmp_path_factory.mktemp("store")))
        texts = [doc_text(i) for i in range(self.N_DOCS)]
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                for start in range(0, len(texts), 250):
                    status, body = client.tenant().upload(
                        texts[start:start + 250]
                    )
                    assert status == 200
                    assert body["folded"] == 250
                status, snap = client.tenant().snapshot()
                assert status == 200
        return texts, snap

    def test_snapshot_equivalent_to_batch_merge(self, posted):
        texts, snap = posted
        wire = FleetProfile.from_dict(snap["fleet"])
        batch = merge_runs(runs_of(texts))
        assert equivalence_diffs(batch, wire, WIRE_CONTRACT) == []

    def test_wire_digest_matches_reserialized_profile(self, posted):
        _, snap = posted
        assert FleetProfile.from_dict(snap["fleet"]).digest() == snap["digest"]

    def test_corrupt_documents_quarantine_as_4xx_never_500(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                status, body = client.tenant().upload([
                    doc_text(0),
                    "this is not json",
                    '{"format": "wrong"}',
                    doc_text(1),
                ])
                assert status == 400
                assert body["folded"] == 2
                stages = {r["stage"] for r in body["rejected"]}
                assert stages == {"parse", "schema"}
                assert all(r["line"] in (2, 3) for r in body["rejected"])
                status, health = client.healthz()
                assert status == 200
                assert health["quarantined"] == 2
                assert health["documents"] == 2

    def test_truncated_upload_is_a_400_not_a_500(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            payload = doc_text(0).encode()
            sock = socket.create_connection(("127.0.0.1", handle.port), 5)
            try:
                head = (
                    f"POST /profiles HTTP/1.1\r\n"
                    f"Host: x\r\nContent-Length: {len(payload) + 500}\r\n"
                    f"\r\n"
                ).encode()
                sock.sendall(head + payload[: len(payload) // 2])
                sock.shutdown(socket.SHUT_WR)
                response = b""
                while chunk := sock.recv(4096):
                    response += chunk
            finally:
                sock.close()
            assert b"HTTP/1.1 400" in response
            assert b"truncated" in response
            # The daemon survives and keeps serving.
            with DaemonClient.for_daemon(handle) as client:
                assert client.healthz()[0] == 200

    def test_duplicate_content_dedups(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                texts = [doc_text(i) for i in range(8)]
                assert client.tenant().upload(texts)[0] == 200
                status, body = client.tenant().upload(texts)
                assert status == 200
                assert body["folded"] == 0
                assert body["duplicates"] == 8
                assert body["documents"] == 8

    def test_empty_aggregator_snapshot_is_404(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                assert client.tenant().snapshot()[0] == 404

    def test_routing_errors(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                assert client.request("GET", "/nope")[0] == 404
                assert client.request("DELETE", "/profiles")[0] == 405
                assert client.request("POST", "/artifacts/abc")[0] == 405


class TestArtifactsAndRepack:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        """A repacked daemon over a real simulated fleet."""
        root = tmp_path_factory.mktemp("repack")
        profiles = root / "profiles"
        store = ArtifactStore(str(root / "store"))
        simulate_fleet(BENCH, INPUT, runs=6, out_dir=str(profiles),
                       base_seed=0, epochs=2, scale=SCALE)
        texts = [p.read_text() for p in sorted(profiles.glob("*.json"))]
        handle = start_daemon_thread(daemon_config(), store=store)
        client = DaemonClient.for_daemon(handle)
        assert client.tenant().upload(texts)[0] == 200
        status, repack = client.tenant().repack()
        assert status == 200
        yield client, store, repack
        client.close()
        handle.stop()

    def test_artifact_get_round_trips_store_bytes(self, served):
        client, store, repack = served
        assert repack["artifacts"]
        for key in repack["artifacts"]:
            status, raw = client.artifact(key)
            assert status == 200
            assert raw == canonical_json(store.get(key))

    def test_repack_matches_local_pack_fleet(self, served, tmp_path):
        client, _, repack = served
        status, snap = client.tenant().snapshot()
        assert status == 200
        fleet = FleetProfile.from_dict(snap["fleet"])
        config = FarmConfig(
            benchmark=BENCH, input_name=INPUT, scale=SCALE,
            pipeline=None, shard_size=1,
        )
        local_store = ArtifactStore(str(tmp_path / "local-store"))
        local = pack_fleet(fleet, config, store=local_store)
        # Wire rounding can nudge the profile digest, so compare the
        # packed payloads — byte-identical artifacts either way.
        assert [o.payload for o in local.outcomes] == [
            json.loads(client.artifact(key)[1])
            for key in repack["artifacts"]
        ]

    def test_artifact_miss_is_404(self, served):
        client, _, _ = served
        assert client.artifact("0" * 40)[0] == 404
        # A key aimed at the hit-sidecar namespace is a plain miss.
        assert client.artifact("0" * 40 + ".hits")[0] == 404

    def test_dashboard_renders_fleet_and_repack(self, served):
        client, _, repack = served
        status, page = client.tenant(f"{BENCH}/{INPUT}").dashboard()
        assert status == 200
        assert "Merged fleet snapshot" in page
        assert "Last repack" in page
        assert f"/artifacts/{repack['artifacts'][0]}" in page

    def test_index_page_links_tenant_dashboards(self, served):
        client, _, _ = served
        status, page = client.dashboard()
        assert status == 200
        assert "tenant index" in page
        assert f'href="/tenants/{BENCH}/{INPUT}/"' in page
        status, index = client.tenants()
        assert status == 200
        assert index["default"] == f"{BENCH}/{INPUT}"
        assert f"{BENCH}/{INPUT}" in index["tenants"]

    def test_metrics_snapshot_counts_requests(self, served):
        client, _, _ = served
        status, body = client.metrics()
        assert status == 200
        assert body["server"]["requests"] > 0
        assert any(key.startswith("server.requests")
                   for key in body["metrics"]["counters"])


class TestWireHardening:
    def raw(self, port, payload):
        """One raw exchange; reads until the server closes."""
        sock = socket.create_connection(("127.0.0.1", port), 5)
        try:
            sock.settimeout(5)
            sock.sendall(payload)
            response = b""
            while chunk := sock.recv(4096):
                response += chunk
        finally:
            sock.close()
        return response

    def test_duplicate_content_length_is_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            response = self.raw(handle.port, (
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 0\r\nContent-Length: 5\r\n\r\n"
            ))
        assert b"HTTP/1.1 400" in response
        assert b"duplicate content-length" in response

    def test_repeated_benign_headers_list_combine(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            response = self.raw(handle.port, (
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                b"Accept: application/json\r\nAccept: text/html\r\n"
                b"Connection: close\r\n\r\n"
            ))
        assert b"HTTP/1.1 200" in response

    def test_handler_crash_closes_the_keep_alive_connection(
        self, tmp_path, monkeypatch
    ):
        from repro.server import routes

        async def boom(daemon, request):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(routes._EXACT, ("POST", "/boom"), boom)
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            body = b'{"unread": "body"}'
            response = self.raw(handle.port, (
                b"POST /boom HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            ))
        # Exactly one response: the 500 must close the connection
        # instead of letting the unread body desynchronize keep-alive
        # framing into a spurious second (400) response.
        assert b"HTTP/1.1 500" in response
        assert response.count(b"HTTP/1.1") == 1
        assert b"Connection: close" in response


class TestAggregatorLocking:
    def test_checkpoint_serializes_state_under_the_lock(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        daemon = ProfileDaemon(daemon_config(), store=store)
        assert daemon.aggregator.ingest_text(doc_text(0))
        locked_during = []
        original = daemon.aggregator.to_state

        def spy():
            locked_during.append(daemon.agg_lock.locked())
            return original()

        daemon.aggregator.to_state = spy
        assert daemon.checkpoint()
        assert locked_during == [True]

    def test_snapshot_helper_holds_the_lock(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        daemon = ProfileDaemon(daemon_config(), store=store)
        assert daemon.aggregator.ingest_text(doc_text(0))
        locked_during = []
        original = daemon.aggregator.snapshot

        def spy():
            locked_during.append(daemon.agg_lock.locked())
            return original()

        daemon.aggregator.snapshot = spy
        daemon.snapshot()
        assert locked_during == [True]

    def test_concurrent_ingest_and_snapshot_never_500(self, tmp_path):
        """Uploads racing snapshots/checkpoints must never tear state.

        Unsynchronized, the worker-thread ``to_state()``/``snapshot()``
        iterations race event-loop ingest mutations into
        ``RuntimeError: dictionary changed size during iteration``
        (surfacing as 500s) — the lock makes this deterministic."""
        store = ArtifactStore(str(tmp_path / "store"))
        texts = [doc_text(i) for i in range(240)]
        failures = []
        done = threading.Event()
        with start_daemon_thread(daemon_config(), store=store) as handle:

            def post():
                try:
                    with DaemonClient.for_daemon(handle) as client:
                        for start in range(0, len(texts), 8):
                            status, _ = client.tenant().upload(
                                texts[start:start + 8]
                            )
                            if status != 200:
                                failures.append(("post", status))
                finally:
                    done.set()

            def snap():
                with DaemonClient.for_daemon(handle) as client:
                    while not done.is_set():
                        status, _ = client.tenant().snapshot()
                        if status not in (200, 404):
                            failures.append(("snapshot", status))

            threads = [threading.Thread(target=post)] + [
                threading.Thread(target=snap) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
        assert failures == []


class TestStoreGC:
    def put_n(self, store, n, size=200):
        for i in range(n):
            store.put(f"key-{i}", {"index": i, "pad": "x" * size})

    def test_get_stamps_hit_sidecar(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.put("k", {"v": 1})
        assert not os.path.exists(store.sidecar_of("k"))
        store.get("k")
        store.get("k")
        stamp = json.loads(Path(store.sidecar_of("k")).read_text())
        assert stamp["hit_count"] == 2
        assert stamp["key"] == "k"
        (entry,) = store.entries()
        assert entry.hit_count == 2
        assert entry.last_hit == stamp["last_hit"]

    def test_evict_drops_least_recently_hit_first(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self.put_n(store, 4)
        # Hit 2 and 0, in that order: LRU order is 1, 3, 2, 0.
        store.get("key-2")
        time.sleep(0.02)
        store.get("key-0")
        per_entry = store.total_bytes() // 4
        evicted = store.evict(per_entry * 2 + per_entry // 2)
        assert evicted == ["key-1", "key-3"]
        assert store.get("key-0") is not None
        assert store.get("key-2") is not None
        assert not os.path.exists(store.path_of("key-1"))
        assert not os.path.exists(store.sidecar_of("key-1"))
        assert store.stats.evictions == 2

    def test_evict_never_touches_pinned_keys(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self.put_n(store, 3)
        store.pin("key-0")
        evicted = store.evict(0)
        assert "key-0" not in evicted
        assert sorted(evicted) == ["key-1", "key-2"]
        # Still over the (zero) cap because of the pin — by design.
        assert store.get("key-0") is not None

    def test_hits_suffixed_keys_cannot_alias_sidecars(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.put("k", {"v": 1})
        assert store.get("k") is not None  # writes the read stamp
        with pytest.raises(ValueError):
            store.put("k.hits", {"evil": True})
        with pytest.raises(ValueError):
            store.pin("k.hits")
        # Reading the colliding key is a plain miss and must not
        # corrupt-delete k's sidecar.
        assert store.get("k.hits") is None
        stamp = json.loads(Path(store.sidecar_of("k")).read_text())
        assert stamp["hit_count"] == 1
        assert [entry.key for entry in store.entries()] == ["k"]

    def test_evict_on_disabled_store_is_a_noop(self):
        store = ArtifactStore("off")
        assert store.evict(0) == []

    def test_gc_counters_surface_in_stage_table(self, tmp_path):
        from repro.obs import default_registry

        store = ArtifactStore(str(tmp_path / "store"))
        self.put_n(store, 2)
        store.get("key-0")
        store.evict(0)
        table = stage_table([], default_registry().snapshot())
        assert "artifact reads stamped" in table
        assert "artifact store bytes" in table

    def test_daemon_sweep_bounds_store_and_keeps_checkpoint(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self.put_n(store, 6, size=500)
        config = daemon_config(gc_max_bytes=1200, gc_interval=0.05)
        with start_daemon_thread(config, store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                assert client.tenant().upload([doc_text(0)])[0] == 200
                deadline = time.time() + 5
                while handle.daemon.gc_sweeps < 2 and time.time() < deadline:
                    time.sleep(0.05)
            assert handle.daemon.gc_sweeps >= 2
        slot = checkpoint_key("test", MergePolicy())
        keys = {entry.key for entry in store.entries()}
        # The junk entries were evicted under the cap; the (pinned)
        # checkpoint slot survives even though it alone may exceed it.
        assert slot in keys
        assert not any(key.startswith("key-") for key in keys)


class TestRestart:
    def test_checkpoint_restart_never_double_counts(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        texts = [doc_text(i) for i in range(24)]
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                assert client.tenant().upload(texts)[0] == 200
                first = client.tenant().snapshot()[1]

        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                status, health = client.healthz()
                assert health["checkpoint"] == "restored"
                assert health["documents"] == len(texts)
                # Replaying every upload is pure dedup: nothing folds
                # twice, and the snapshot digest is unchanged.
                status, body = client.tenant().upload(texts)
                assert status == 200
                assert body["folded"] == 0
                assert body["duplicates"] == len(texts)
                second = client.tenant().snapshot()[1]
        assert first["digest"] == second["digest"]

    def test_sigterm_checkpoints_and_subprocess_restart_resumes(
        self, tmp_path
    ):
        store_dir = str(tmp_path / "store")
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                str(Path(__file__).resolve().parent.parent / "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        command = [
            sys.executable, "-m", "repro", "server",
            "--bench", f"{BENCH}/{INPUT}", "--listen", "127.0.0.1:0",
            "--scale", str(SCALE), "--store", store_dir,
        ]

        def launch():
            proc = subprocess.Popen(
                command, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True, env=env,
            )
            banner = proc.stdout.readline()
            port = int(re.search(r":(\d+) ", banner).group(1))
            return proc, banner, port

        proc, banner, port = launch()
        try:
            assert "checkpoint cold" in banner
            with DaemonClient("127.0.0.1", port) as client:
                texts = [doc_text(i) for i in range(6)]
                assert client.tenant().upload(texts)[0] == 200
                other = [doc_text(i, tenant="999.go/B") for i in range(4)]
                assert client.tenant("999.go/B").upload(other)[0] == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

        store = ArtifactStore(store_dir)
        slot = checkpoint_key("server", MergePolicy())
        assert store.get(slot) is not None
        # The named tenant checkpoints under its own derived slot.
        other_slot = checkpoint_key("server:999.go/B", MergePolicy())
        assert store.get(other_slot) is not None

        proc, banner, port = launch()
        try:
            # Every tenant resumes, not just the first to see traffic.
            assert "checkpoint restored" in banner
            assert "[2/2 tenant(s)]" in banner
            with DaemonClient("127.0.0.1", port) as client:
                status, health = client.healthz()
                assert health["documents"] == 10
                assert health["tenants"][f"{BENCH}/{INPUT}"] == {
                    "documents": 6, "duplicates": 0, "quarantined": 0,
                    "checkpoint": "restored",
                }
                assert health["tenants"]["999.go/B"]["documents"] == 4
                assert (health["tenants"]["999.go/B"]["checkpoint"]
                        == "restored")
                # Replaying an upload after restart is pure dedup.
                status, body = client.tenant("999.go/B").upload(
                    [doc_text(i, tenant="999.go/B") for i in range(4)]
                )
                assert status == 200
                assert body["folded"] == 0
                assert body["duplicates"] == 4
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestMultiTenant:
    """The PR-10 tentpole: many binaries behind one daemon."""

    TENANTS = (f"{BENCH}/{INPUT}", "999.go/B", "256.bzip2/C")

    def test_flat_upload_demuxes_by_stamp(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                docs = [
                    doc_text(0),                                # unstamped
                    doc_text(1, tenant="999.go/B"),
                    doc_text(2, tenant=f"{BENCH}/{INPUT}"),     # = default
                ]
                status, body = client.tenant().upload(docs)
                assert status == 200
                assert body["folded"] == 3
                assert body["tenants"] == {
                    f"{BENCH}/{INPUT}": 2, "999.go/B": 1,
                }
                # `documents` on the flat route is the cross-tenant sum.
                assert body["documents"] == 3
                status_a, snap_a = client.tenant(
                    f"{BENCH}/{INPUT}"
                ).snapshot()
                status_b, snap_b = client.tenant("999.go/B").snapshot()
                assert status_a == 200 and status_b == 200
                assert snap_a["digest"] != snap_b["digest"]
                # The flat snapshot aliases the default tenant.
                _, flat = client.request_json("GET", "/snapshot")
                assert flat["digest"] == snap_a["digest"]
                assert flat["tenant"] == f"{BENCH}/{INPUT}"

    def test_scoped_upload_quarantines_misrouted_stamps(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                gcc = client.tenant("gcc/train")
                status, body = gcc.upload([
                    doc_text(0, tenant="gcc/train"),
                    doc_text(1, tenant="999.go/B"),  # misaddressed
                    doc_text(2),                     # unstamped: pinned
                ])
                assert status == 400
                assert body["folded"] == 2
                assert body["tenant"] == "gcc/train"
                (reject,) = body["rejected"]
                assert reject["stage"] == "route"
                assert reject["tenant"] == "gcc/train"
                # The misroute never creates (or bleeds into) the
                # stamped tenant.
                _, index = client.tenants()
                assert "999.go/B" not in index["tenants"]
                assert index["tenants"]["gcc/train"]["documents"] == 2
                assert index["tenants"]["gcc/train"]["quarantined"] == 1

    def test_unroutable_stamp_quarantines_into_default(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                bad = json.loads(doc_text(0))
                bad["meta"]["benchmark"] = "no spaces allowed"
                worse = json.loads(doc_text(1))
                worse["meta"]["benchmark"] = 123
                status, body = client.tenant().upload(
                    [json.dumps(bad), json.dumps(worse)]
                )
                assert status == 400
                assert [r["stage"] for r in body["rejected"]] == [
                    "route", "route",
                ]
                assert all(r["tenant"] == f"{BENCH}/{INPUT}"
                           for r in body["rejected"])
                _, health = client.healthz()
                assert health["quarantined"] == 2

    def test_tenant_name_validation_and_reserved_segments(self, tmp_path):
        from repro.server import check_tenant_name

        assert check_tenant_name("gcc/train") is None
        assert check_tenant_name("181.mcf/A") is None
        for bad in ("", "repack", "a/profiles", "x/snapshot",
                    "a//b", "/a", "a/", "sp ace", "x" * 200):
            assert check_tenant_name(bad) is not None, bad
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                # A reserved-suffix name can never become a tenant.
                status, body = client.tenant("bad/repack").upload(
                    [doc_text(0)]
                )
                assert status == 400
                assert "reserved" in body["error"]
                # Reads of unknown tenants are 404s, never creations.
                assert client.tenant("nope/X").snapshot()[0] == 404
                assert client.tenant("nope/X").repack()[0] == 404
                assert client.request("GET", "/tenants/nope/X/")[0] == 404
                _, index = client.tenants()
                assert list(index["tenants"]) == [f"{BENCH}/{INPUT}"]

    def test_concurrent_multi_tenant_hammer(self, tmp_path):
        """N uploader threads × T interleaved tenants on one daemon.

        The acceptance bar: per-tenant wire snapshots digest-equal to
        per-tenant local streaming merges (no cross-tenant bleed),
        while snapshots and dashboards render concurrently.
        """
        from repro.service import IncrementalAggregator

        store = ArtifactStore(str(tmp_path / "store"))
        per_tenant = {
            name: [doc_text(i, tenant=name) for i in range(64)]
            for name in self.TENANTS
        }
        interleaved = []
        for i in range(64):
            for name in self.TENANTS:
                interleaved.append(per_tenant[name][i])
        n_uploaders = 4
        shards = [interleaved[k::n_uploaders] for k in range(n_uploaders)]
        failures = []
        done = threading.Event()

        with start_daemon_thread(daemon_config(), store=store) as handle:

            def upload(shard):
                try:
                    with DaemonClient.for_daemon(handle) as client:
                        flat = client.tenant()
                        for start in range(0, len(shard), 8):
                            status, _ = flat.upload(shard[start:start + 8])
                            if status != 200:
                                failures.append(("upload", status))
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(("upload", repr(exc)))

            def watch():
                with DaemonClient.for_daemon(handle) as client:
                    while not done.is_set():
                        status, _ = client.tenant(
                            self.TENANTS[1]
                        ).snapshot()
                        if status not in (200, 404):
                            failures.append(("snapshot", status))
                        status, _ = client.request("GET", "/")
                        if status != 200:
                            failures.append(("dashboard", status))

            uploaders = [
                threading.Thread(target=upload, args=(shard,))
                for shard in shards
            ]
            watcher = threading.Thread(target=watch)
            for thread in uploaders:
                thread.start()
            watcher.start()
            for thread in uploaders:
                thread.join(timeout=300)
            done.set()
            watcher.join(timeout=30)
            assert not any(t.is_alive() for t in uploaders + [watcher])
            assert failures == []

            with DaemonClient.for_daemon(handle) as client:
                for name in self.TENANTS:
                    status, snap = client.tenant(name).snapshot()
                    assert status == 200
                    local = IncrementalAggregator(MergePolicy())
                    for text in per_tenant[name]:
                        assert local.ingest_text(text)
                    fleet = local.snapshot()
                    assert snap["digest"] == fleet.digest()
                    wire = FleetProfile.from_dict(snap["fleet"])
                    assert equivalence_diffs(
                        fleet, wire, WIRE_CONTRACT
                    ) == []
                _, health = client.healthz()
                assert health["documents"] == 64 * len(self.TENANTS)

    def test_named_tenant_repack_packs_its_own_benchmark(self, tmp_path):
        profiles = tmp_path / "profiles"
        store = ArtifactStore(str(tmp_path / "store"))
        simulate_fleet("099.go", "A", runs=4, out_dir=str(profiles),
                       base_seed=0, epochs=1, scale=SCALE)
        texts = [p.read_text() for p in sorted(profiles.glob("*.json"))]
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                # simulate_fleet stamps meta.benchmark, so the flat
                # route demuxes these into the 099.go/A tenant.
                status, body = client.tenant().upload(texts)
                assert status == 200
                assert body["tenants"] == {"099.go/A": len(texts)}
                status, repack = client.tenant("099.go/A").repack()
                assert status == 200
                assert repack["tenant"] == "099.go/A"
                snap = client.tenant("099.go/A").snapshot()[1]
                fleet = FleetProfile.from_dict(snap["fleet"])
                local = pack_fleet(
                    fleet,
                    FarmConfig(benchmark="099.go", input_name="A",
                               scale=SCALE, pipeline=None, shard_size=1),
                    store=ArtifactStore(str(tmp_path / "local")),
                )
                assert [o.payload for o in local.outcomes] == [
                    json.loads(client.artifact(key)[1])
                    for key in repack["artifacts"]
                ]
                # The per-tenant dashboard shows that repack.
                _, page = client.tenant("099.go/A").dashboard()
                assert f"/artifacts/{repack['artifacts'][0]}" in page

    def test_thread_restart_resumes_every_tenant(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        second = "999.go/B"
        texts_a = [doc_text(i) for i in range(8)]
        texts_b = [doc_text(i, tenant=second) for i in range(5)]
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                assert client.tenant().upload(texts_a)[0] == 200
                assert client.tenant(second).upload(texts_b)[0] == 200
                first_a = client.tenant().snapshot()[1]["digest"]
                first_b = client.tenant(second).snapshot()[1]["digest"]

        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                _, health = client.healthz()
                # Both resumed eagerly (tenant directory), not only
                # the first to see traffic.
                for name in (f"{BENCH}/{INPUT}", second):
                    assert health["tenants"][name]["checkpoint"] == \
                        "restored"
                # Replaying an upload is pure dedup per tenant.
                body = client.tenant(second).upload(texts_b)[1]
                assert body["folded"] == 0
                assert body["duplicates"] == len(texts_b)
                assert client.tenant().snapshot()[1]["digest"] == first_a
                assert client.tenant(second).snapshot()[1]["digest"] \
                    == first_b

    def test_gc_never_evicts_any_tenant_checkpoint_slot(self, tmp_path):
        from repro.server import tenant_directory_key

        store = ArtifactStore(str(tmp_path / "store"))
        for i in range(6):
            store.put(f"key-{i}", {"index": i, "pad": "x" * 500})
        config = daemon_config(gc_max_bytes=1, gc_interval=0.05)
        with start_daemon_thread(config, store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                assert client.tenant().upload([doc_text(0)])[0] == 200
                assert client.tenant("999.go/B").upload(
                    [doc_text(1, tenant="999.go/B")]
                )[0] == 200
                deadline = time.time() + 5
                while (handle.daemon.gc_sweeps < 2
                       and time.time() < deadline):
                    time.sleep(0.05)
            assert handle.daemon.gc_sweeps >= 2
        keys = {entry.key for entry in store.entries()}
        # Under an impossible 1-byte budget every unpinned artifact is
        # gone, yet every tenant's checkpoint slot and the tenant
        # directory survive — pinned state is never GC fodder.
        assert checkpoint_key("test", MergePolicy()) in keys
        assert checkpoint_key("test:999.go/B", MergePolicy()) in keys
        assert tenant_directory_key("test") in keys
        assert not any(key.startswith("key-") for key in keys)


class TestDeprecatedShims:
    def test_flat_client_methods_warn_and_delegate(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with start_daemon_thread(daemon_config(), store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                texts = [doc_text(i) for i in range(3)]
                with pytest.deprecated_call():
                    status, body = client.post_profiles(texts)
                assert status == 200 and body["folded"] == 3
                with pytest.deprecated_call():
                    status, snap = client.snapshot()
                assert status == 200
                assert snap["tenant"] == f"{BENCH}/{INPUT}"
                with pytest.deprecated_call():
                    status, _ = client.repack()
                assert status == 200


class TestCliSurface:
    def _server_args(self, *argv):
        from repro.cli import build_parser

        args = build_parser().parse_args(list(argv))
        args.pipeline = None
        return args

    def test_server_flags_build_the_config(self):
        from repro.cli import _server_config_from_args

        args = self._server_args("server", "--bench", "181.mcf/A")
        config = _server_config_from_args(args)
        assert (config.host, config.port) == ("127.0.0.1", 8080)
        assert config.benchmark == "181.mcf"
        assert config.shard_size == 1 and config.store is None
        assert config.tag == "server"

    def test_serve_listen_forwards_with_fleet_flags(self):
        from repro.cli import _server_config_from_args, build_parser

        serve = build_parser().parse_args([
            "serve", "--bench", "181.mcf/A", "--profiles", "p",
            "--listen", "0.0.0.0:0",
        ])
        serve.pipeline = None
        assert serve.listen == "0.0.0.0:0"
        assert serve.shard_size == 1 and serve.store is None
        config = _server_config_from_args(serve)
        assert (config.host, config.port) == ("0.0.0.0", 0)
        assert config.profiles_dir == "p"

    def test_server_config_file_with_flag_overrides(self, tmp_path):
        from repro.cli import _server_config_from_args

        path = tmp_path / "server.json"
        base = ServerConfig(
            benchmark=BENCH, input_name=INPUT, port=7777, scale=SCALE,
            tag="filed", gc_max_bytes=4096,
        )
        path.write_text(json.dumps(base.to_dict()))
        args = self._server_args(
            "server", "--config", str(path), "--listen", "127.0.0.1:0",
        )
        config = _server_config_from_args(args)
        # File values survive where no flag overrides them...
        assert config.benchmark == BENCH
        assert config.tag == "filed"
        assert config.gc_max_bytes == 4096
        assert config.scale == SCALE
        # ...and explicit flags win.
        assert config.port == 0
        # The embedded pipeline section normalizes to a full document.
        from repro.api import PipelineConfig

        assert PipelineConfig.from_dict(config.pipeline)

    def test_server_config_file_unknown_keys_are_a_typed_error(
        self, tmp_path
    ):
        from repro.cli import _server_config_from_args

        path = tmp_path / "server.json"
        path.write_text(json.dumps({"benchmark": BENCH, "bogus": 1}))
        args = self._server_args("server", "--config", str(path))
        with pytest.raises(SystemExit, match="unknown key"):
            _server_config_from_args(args)
        with pytest.raises(ValueError, match="unknown key"):
            ServerConfig.from_dict({"benchmark": BENCH, "bogus": 1})

    def test_server_requires_bench_or_config(self):
        from repro.cli import _server_config_from_args

        with pytest.raises(SystemExit, match="--bench"):
            _server_config_from_args(self._server_args("server"))

    def test_parse_listen_rejects_garbage(self):
        from repro.cli import _parse_listen

        assert _parse_listen("127.0.0.1:8080") == ("127.0.0.1", 8080)
        with pytest.raises(SystemExit):
            _parse_listen("8080")
        with pytest.raises(SystemExit):
            _parse_listen("host:port")
