"""Integration tests for the post-link rewriter and VacuumPacker.

The key property: a packed program is *semantics preserving*.  We run
the real (register/memory) interpreter over the original and the packed
binary of a deterministic program and require identical final state —
regardless of how wrong the (synthetic) profile was.
"""

import pytest

from repro.engine import (
    BehaviorModel,
    ExecutionLimits,
    Interpreter,
    PhaseScript,
)
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.isa.assembler import assemble
from repro.packages import construct_all
from repro.api import PipelineConfig
from repro.postlink import VacuumPacker, clone_program, rewrite_program
from repro.regions import identify_region
from repro.workloads.base import Workload

SEMANTIC_SRC = """
func main:
  init:
    movi r10, 0
    movi r11, 20
    movi r12, 0
  loop:
    addi r12, r12, 1
    call work
  post:
    andi r13, r12, 3
    brz r13, coldpath
  hotc:
    addi r10, r10, 1
  latch:
    slt r13, r12, r11
    brnz r13, loop
  done:
    halt
  coldpath:
    addi r10, r10, 100
    jump latch

func work:
  w0:
    andi r20, r12, 1
    brz r20, weven
  wodd:
    addi r10, r10, 2
    ret
  weven:
    addi r10, r10, 3
    ret
"""

SEMANTIC_PROFILE = {
    ("main", "post"): BranchProfile(0x10, executed=400, taken=10),
    ("main", "latch"): BranchProfile(0x18, executed=400, taken=380),
    ("work", "w0"): BranchProfile(0x20, executed=300, taken=150),
}


def build_semantic_packed():
    program = assemble(SEMANTIC_SRC)
    record = HotSpotRecord(
        index=0,
        detected_at_branch=0,
        branches={p.address: p for p in SEMANTIC_PROFILE.values()},
    )
    locate = {p.address: loc for loc, p in SEMANTIC_PROFILE.items()}
    region = identify_region(program, record, locate)
    plan = construct_all([region])
    return program, rewrite_program(program, plan)


class TestSemanticPreservation:
    def test_final_state_identical(self):
        program, packed = build_semantic_packed()
        original = Interpreter(program).run()
        rewritten = Interpreter(packed.program).run()
        assert rewritten.halted
        assert rewritten.state.int_regs[10] == original.state.int_regs[10]
        assert rewritten.state.int_regs[12] == original.state.int_regs[12]

    def test_expected_computation(self):
        # 20 iterations; work adds 2 or 3 alternating; i % 4 == 0 takes
        # the cold path (+100), otherwise +1.
        program, packed = build_semantic_packed()
        expected = 0
        for i in range(1, 21):
            expected += 3 if i % 2 == 0 else 2
            expected += 100 if i % 4 == 0 else 1
        result = Interpreter(packed.program).run()
        assert result.state.int_regs[10] == expected

    def test_packed_enters_package_at_start(self):
        # main's entry is a launch location, so execution begins inside
        # the package and stays there until the first cold side exit
        # (i % 4 == 0 takes coldpath).  After that this run-once loop
        # has no further launch point — the single-launch-point cost
        # the paper's linking/launch discussion describes.
        program, packed = build_semantic_packed()
        result = Interpreter(packed.program).run(trace_blocks=True)
        package_blocks = [
            (fn, lbl) for fn, lbl in result.trace if fn in packed.package_names
        ]
        # main's prologue is a launch location, so the rewriter spliced
        # a launch trampoline in as the new function entry.
        assert result.trace[0] == ("main", "init__lp")
        assert result.trace[1][0] in packed.package_names
        assert len(package_blocks) > 10

    def test_cold_path_runs_in_original_code(self):
        program, packed = build_semantic_packed()
        result = Interpreter(packed.program).run(trace_blocks=True)
        assert ("main", "coldpath") in result.trace

    def test_packed_program_links_to_image(self):
        program, packed = build_semantic_packed()
        image = packed.link_image()
        assert image.size_instructions() > 0
        # Every non-pseudo instruction must round-trip decode.
        for address in sorted(image.address_instruction):
            decoded = image.decode_at(address)
            assert decoded.opcode is image.instruction_at(address).opcode


class TestCloneProgram:
    def test_clone_preserves_structure(self, loop_program):
        copy = clone_program(loop_program)
        assert set(copy.functions) == set(loop_program.functions)
        assert copy.static_size() == loop_program.static_size()

    def test_clone_tracks_origins(self, loop_program):
        copy = clone_program(loop_program)
        original_uids = {
            inst.uid for _f, _b, inst in loop_program.iter_instructions()
        }
        for _f, _b, inst in copy.iter_instructions():
            assert inst.uid not in original_uids
            assert inst.root_origin() in original_uids

    def test_mutating_clone_leaves_original_alone(self, loop_program):
        copy = clone_program(loop_program)
        copy.functions["main"].blocks[0].instructions.pop()
        assert loop_program.functions["main"].blocks[0].instructions


DISPATCH_SRC = """
func main:
  entry:
    movi r1, 0
  loop:
    addi r1, r1, 1
    seq r2, r1, r1
    brz r2, exit
  dispatch:
    slt r3, r1, r2
    brnz r3, do_b
  do_a:
    call work_a
  back_a:
    jump loop
  do_b:
    call work_b
  back_b:
    jump loop
  exit:
    halt

func work_a:
  a0:
    addi r4, r4, 1
    slt r5, r4, r6
    brnz r5, a0
  a1:
    ret

func work_b:
  b0:
    muli r7, r7, 3
    slt r5, r7, r6
    brnz r5, b0
  b1:
    ret
"""


def dispatch_workload(branches=240_000):
    program = assemble(DISPATCH_SRC)
    behavior = BehaviorModel(seed=11)
    index = {loc: uid for uid, loc in program.branch_block_index().items()}
    behavior.set_bias(index[("main", "loop")], 0.0)
    behavior.set_phase_biases(index[("main", "dispatch")], {0: 0.02, 1: 0.98})
    behavior.set_bias(index[("work_a", "a0")], 0.85)
    behavior.set_bias(index[("work_b", "b0")], 0.85)
    script = PhaseScript.from_pairs([(0, branches // 2), (1, branches // 2)])
    return Workload(
        "dispatch",
        program,
        behavior,
        script,
        ExecutionLimits(max_branches=branches),
    )


INLINE_DISPATCH_SRC = """
func main:
  entry:
    movi r1, 0
  loop:
    addi r1, r1, 1
    seq r2, r1, r1
    brz r2, exit
  dispatch:
    slt r3, r1, r2
    brnz r3, b_head
  a_head:
    addi r4, r4, 1
    slt r5, r4, r6
    brnz r5, a_head
  a_done:
    jump loop
  b_head:
    muli r7, r7, 3
    slt r5, r7, r6
    brnz r5, b_head
  b_done:
    jump loop
  exit:
    halt
"""


def inline_dispatch_workload(branches=240_000):
    """Phase-specific loops living inside the root function itself."""
    program = assemble(INLINE_DISPATCH_SRC)
    behavior = BehaviorModel(seed=29)
    index = {loc: uid for uid, loc in program.branch_block_index().items()}
    behavior.set_bias(index[("main", "loop")], 0.0)
    # The dispatch is absolute: phase 1 never executes the a-side, so
    # the phase-1 region gains no accidental launch point in it.
    behavior.set_phase_biases(index[("main", "dispatch")], {0: 0.0, 1: 1.0})
    behavior.set_bias(index[("main", "a_head")], 0.9)
    behavior.set_bias(index[("main", "b_head")], 0.9)
    script = PhaseScript.from_pairs([(0, branches // 2), (1, branches // 2)])
    return Workload(
        "inline-dispatch",
        program,
        behavior,
        script,
        ExecutionLimits(max_branches=branches),
    )


class TestVacuumPackerEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return VacuumPacker().pack(dispatch_workload())

    def test_two_phases_detected(self, result):
        assert result.profile.phase_count == 2
        assert result.profile.raw_detections > result.profile.phase_count

    def test_branch_stream_preserved(self, result):
        workload = result.workload
        packed_summary = workload.run(program=result.packed.program)
        assert packed_summary.branches == result.profile.summary.branches
        assert (
            packed_summary.taken_branches
            == result.profile.summary.taken_branches
        )

    def test_high_coverage_with_linking(self, result):
        assert result.coverage.package_fraction > 0.85

    def test_linking_never_hurts_coverage(self, result):
        no_link = VacuumPacker(PipelineConfig(link=False)).pack(
            result.workload, profile=result.profile
        )
        assert (
            result.coverage.package_fraction
            >= no_link.coverage.package_fraction
        )

    def test_linking_improves_coverage_for_inline_phases(self):
        # When the phase-specific code lives *inside* the root function
        # (no callee launch points to recover through), reaching the
        # second phase's package requires linking — the paper's
        # m88ksim observation.
        workload = inline_dispatch_workload()
        packer = VacuumPacker()
        linked = packer.pack(workload)
        unlinked = VacuumPacker(PipelineConfig(link=False)).pack(
            workload, profile=linked.profile
        )
        assert linked.profile.phase_count >= 2
        assert linked.coverage.package_fraction > 0.9
        assert unlinked.coverage.package_fraction < 0.75
        main_groups = [g for g in linked.plan.groups if g.root == "main"]
        assert main_groups and main_groups[0].links

    def test_shared_root_packages_are_linked(self, result):
        main_groups = [g for g in result.plan.groups if g.root == "main"]
        assert main_groups and len(main_groups[0].packages) == 2
        assert main_groups[0].links

    def test_expansion_metrics_sane(self, result):
        row = result.expansion_row()
        assert row["pct_increase"] > 0
        assert 0 < row["pct_selected"] <= 100
        assert row["replication"] >= 1.0

    def test_launch_points_recorded(self, result):
        assert result.packed.stats.launch_points >= 1
        assert result.packed.launch_map
