"""Tests for repro.obs: spans, metrics, exporters, worker capture."""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import obs
from repro.api import ObsConfig, PipelineConfig
from repro.obs.metrics import (
    MetricsRegistry,
    series_key,
    series_name,
    stable_snapshot,
)
from repro.obs.render import (
    STAGE_ORDER,
    load_export,
    stage_table,
    to_chrome,
    write_export,
)
from repro.obs.spans import Tracer
from repro.workloads.suite import load_benchmark

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with tracing off and metrics empty."""
    obs.disable_tracing()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.reset_metrics()


# ---------------------------------------------------------------------------
# tracer basics
# ---------------------------------------------------------------------------

class TestTracer:
    def test_ids_are_sequential_and_parents_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b", depth=2):
                pass
            with tracer.span("c"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["a", "b", "c"]
        assert [s.span_id for s in spans] == [1, 2, 3]
        a, b, c = spans
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == a.span_id
        assert b.attributes == {"depth": 2}
        assert all(s.end >= s.start for s in spans)

    def test_module_span_is_noop_when_disabled(self):
        assert not obs.tracing_enabled()
        with obs.span("nothing") as entry:
            assert entry is None
        obs.annotate(entry, ignored=True)  # None-safe

    def test_enable_disable_round_trip(self):
        tracer = obs.enable_tracing(export_env=False)
        try:
            assert obs.active_tracer() is tracer
            with obs.span("x") as entry:
                assert entry is not None
        finally:
            obs.disable_tracing()
        assert obs.active_tracer() is None
        assert [s.name for s in tracer.spans()] == ["x"]

    def test_merge_rebases_ids_and_reparents_roots(self):
        child = Tracer()
        with child.span("task"):
            with child.span("inner"):
                pass
        payload = child.export()

        parent = Tracer()
        with parent.span("dispatch"):
            mapping = parent.merge(payload)
        spans = {s.name: s for s in parent.spans()}
        assert spans["task"].parent_id == spans["dispatch"].span_id
        assert spans["inner"].parent_id == spans["task"].span_id
        # Re-based ids continue the parent's counter.
        assert sorted(mapping.values()) == [
            spans["task"].span_id, spans["inner"].span_id
        ]
        ids = [s.span_id for s in parent.spans()]
        assert len(set(ids)) == len(ids)


# ---------------------------------------------------------------------------
# cross-process capture
# ---------------------------------------------------------------------------

def _pool_task(seed: int):
    """Module-level worker; forked children inherit the parent tracer
    object and must still capture into a fresh one."""
    capture = obs.start_capture()
    with obs.span("task", seed=seed):
        with obs.span("step"):
            obs.inc("worker.events")
    return seed, obs.finish_capture(capture)


def _run_pool_round():
    tracer = obs.enable_tracing()
    try:
        with obs.span("dispatch"):
            with ProcessPoolExecutor(max_workers=2) as pool:
                results = list(pool.map(_pool_task, [0, 1, 2]))
            for _, payload in results:
                obs.absorb(payload)
    finally:
        obs.disable_tracing()
    return tracer


class TestWorkerCapture:
    def test_pool_spans_merge_with_parent_links(self):
        tracer = _run_pool_round()
        spans = tracer.spans()
        dispatch = next(s for s in spans if s.name == "dispatch")
        tasks = [s for s in spans if s.name == "task"]
        steps = [s for s in spans if s.name == "step"]
        assert len(tasks) == 3 and len(steps) == 3
        assert all(t.parent_id == dispatch.span_id for t in tasks)
        by_id = {s.span_id: s for s in spans}
        for step in steps:
            assert by_id[step.parent_id].name == "task"
        # Payloads absorbed in input order -> seeds appear in order.
        seeds = [
            t.attributes["seed"]
            for t in sorted(tasks, key=lambda s: s.span_id)
        ]
        assert seeds == [0, 1, 2]
        # Worker counters merged home.
        assert obs.default_registry().counter("worker.events") == 3

    def test_pool_span_tree_is_deterministic(self):
        def shape(tracer):
            return [
                (s.span_id, s.name, s.parent_id) for s in tracer.spans()
            ]

        first = shape(_run_pool_round())
        obs.reset_metrics()
        second = shape(_run_pool_round())
        assert first == second

    def test_start_capture_is_noop_without_env_or_with_live_tracer(self):
        assert obs.start_capture() is None  # REPRO_OBS unset
        obs.enable_tracing()
        try:
            assert obs.start_capture() is None  # live tracer owns spans
        finally:
            obs.disable_tracing()


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_series_keys_sort_labels(self):
        key = series_key("hits", {"b": 1, "a": 2})
        assert key == "hits{a=2,b=1}"
        assert series_name(key) == "hits"
        assert series_name("plain") == "plain"

    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("n", 2, kind="x")
        reg.inc("n", kind="x")
        reg.set_gauge("g", 7)
        reg.observe("h.seconds", 0.5)
        reg.observe("h.seconds", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"n{kind=x}": 3}
        assert snap["gauges"] == {"g": 7}
        hist = snap["histograms"]["h.seconds"]
        assert hist == {"count": 2, "total": 2.0, "min": 0.5, "max": 1.5}

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("t.seconds", 1.0)
        b.observe("t.seconds", 3.0)
        b.set_gauge("g", 9)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 9
        assert snap["histograms"]["t.seconds"]["count"] == 2
        assert snap["histograms"]["t.seconds"]["max"] == 3.0

    def test_stable_snapshot_strips_wall_clock_series(self):
        reg = MetricsRegistry()
        reg.inc("pipeline.packs")
        reg.observe("pipeline.stage.seconds", 0.1, stage="profile")
        stable = stable_snapshot(reg.snapshot())
        assert stable["counters"] == {"pipeline.packs": 1}
        assert stable["histograms"] == {}


# ---------------------------------------------------------------------------
# the instrumented pipeline
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mcf():
    return load_benchmark("181.mcf", "A", scale=0.2)


def _traced_pack(workload):
    tracer = obs.enable_tracing()
    try:
        from repro import api

        result = api.pack(workload)
    finally:
        obs.disable_tracing()
    return tracer, result


class TestPipelineTracing:
    def test_pack_emits_the_pipeline_stage_spans(self, mcf):
        tracer, result = _traced_pack(mcf)
        names = {s.name for s in tracer.spans()}
        assert "vacuum.pack" in names
        for stage in STAGE_ORDER:
            if stage == "pipeline.validate" and result.validation is None:
                continue
            assert stage in names, f"missing {stage}"
        root = next(s for s in tracer.spans() if s.name == "vacuum.pack")
        stages = [
            s for s in tracer.spans()
            if s.name in ("pipeline.identify", "pipeline.coverage")
        ]
        assert stages and all(
            s.parent_id == root.span_id for s in stages
        )

    def test_metrics_stable_across_identical_runs(self, mcf, tmp_path,
                                                  monkeypatch):
        from repro.engine.trace_cache import reset_default_cache

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
        reset_default_cache()
        try:
            _traced_pack(mcf)  # warm the trace cache
            obs.reset_metrics()
            _traced_pack(mcf)
            first = stable_snapshot(obs.default_registry().snapshot())
            obs.reset_metrics()
            _traced_pack(mcf)
            second = stable_snapshot(obs.default_registry().snapshot())
        finally:
            reset_default_cache()
        assert first == second
        assert first["counters"]["pipeline.packs"] == 1

    def test_chrome_export_round_trips(self, mcf, tmp_path):
        tracer, _ = _traced_pack(mcf)
        metrics = obs.default_registry().snapshot()
        path = tmp_path / "trace.json"
        write_export(str(path), tracer.spans(), metrics, fmt="chrome")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        spans, loaded_metrics = load_export(str(path))
        assert [s.name for s in spans] == [
            s.name for s in tracer.spans()
        ]
        assert loaded_metrics == json.loads(json.dumps(metrics))

    def test_jsonl_export_round_trips(self, mcf, tmp_path):
        tracer, _ = _traced_pack(mcf)
        path = tmp_path / "trace.jsonl"
        write_export(str(path), tracer.spans(),
                     obs.default_registry().snapshot(), fmt="jsonl")
        spans, metrics = load_export(str(path))
        assert len(spans) == len(tracer.spans())
        assert "counters" in metrics

    def test_load_export_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"neither\": true}")
        with pytest.raises(ValueError):
            load_export(str(path))

    def test_stage_table_mentions_stages_and_quarantine(self, mcf):
        tracer, _ = _traced_pack(mcf)
        table = stage_table(
            tracer.spans(), obs.default_registry().snapshot()
        )
        assert "pipeline.profile" in table
        assert "quarantined phases:" in table

    def test_chrome_export_empty_ledger(self):
        document = to_chrome([], None)
        assert document["traceEvents"] == []


# ---------------------------------------------------------------------------
# facade obs options
# ---------------------------------------------------------------------------

class TestObsConfig:
    def test_facade_writes_trace_out(self, mcf, tmp_path):
        out = tmp_path / "facade.json"
        from repro import api

        config = PipelineConfig(
            obs=ObsConfig(trace=True, trace_out=str(out))
        )
        api.pack(mcf, config)
        assert not obs.tracing_enabled()  # facade cleaned up
        spans, _ = load_export(str(out))
        assert any(s.name == "vacuum.pack" for s in spans)

    def test_bad_trace_format_rejected(self):
        with pytest.raises(ValueError, match="trace_format"):
            ObsConfig(trace_format="xml")
