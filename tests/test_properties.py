"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.weights import estimate_weights
from repro.engine.behavior import BehaviorModel, hash_unit
from repro.engine.phases import PhaseScript
from repro.hsd import BranchBehaviorBuffer, HSDConfig, HotSpotDetector
from repro.hsd.filtering import missing_fraction, same_hot_spot
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import R
from repro.optimize import DependenceGraph, TABLE2_MACHINE, schedule_sequence

# -- strategies ------------------------------------------------------

int_regs = st.integers(min_value=0, max_value=63).map(R)

alu_instructions = st.builds(
    lambda d, a, b, op: Instruction(op, dest=d, srcs=(a, b)),
    int_regs, int_regs, int_regs,
    st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.XOR, Opcode.AND]),
)

mem_instructions = st.one_of(
    st.builds(
        lambda d, b, off: Instruction(Opcode.LOAD, dest=d, srcs=(b,), imm=off),
        int_regs, int_regs, st.integers(0, 512),
    ),
    st.builds(
        lambda s, b, off: Instruction(Opcode.STORE, srcs=(s, b), imm=off),
        int_regs, int_regs, st.integers(0, 512),
    ),
)

sequences = st.lists(st.one_of(alu_instructions, mem_instructions),
                     min_size=1, max_size=24)


# -- encoding round trip -----------------------------------------------

@given(sequences)
def test_encoding_roundtrip_preserves_operands(instructions):
    for i, inst in enumerate(instructions):
        address = 0x1000 + 8 * i
        decoded = decode_instruction(
            encode_instruction(inst, address), address
        )
        assert decoded.opcode is inst.opcode
        assert decoded.dest == inst.dest
        assert decoded.srcs == inst.srcs
        assert decoded.imm == inst.imm


# -- scheduler invariants -------------------------------------------------

@given(sequences)
@settings(max_examples=60)
def test_schedule_respects_dependences_and_resources(instructions):
    machine = TABLE2_MACHINE
    graph = DependenceGraph(instructions, machine)
    schedule = schedule_sequence(instructions, machine)

    # Every instruction is scheduled exactly once.
    assert set(schedule.issue_cycle) == set(range(len(instructions)))

    # Dependences: a successor never issues before its predecessor.
    for node in graph.nodes:
        for succ in node.succs:
            assert schedule.cycle_of(succ) >= schedule.cycle_of(node.index)

    # Resources: per-cycle unit and issue-width limits hold.
    per_cycle = {}
    for index, cycle in schedule.issue_cycle.items():
        inst = instructions[index]
        if inst.is_pseudo:
            continue
        bucket = per_cycle.setdefault(cycle, {"total": 0})
        unit = machine.unit_class(inst)
        bucket["total"] += 1
        bucket[unit] = bucket.get(unit, 0) + 1
    for bucket in per_cycle.values():
        assert bucket["total"] <= machine.issue_width
        assert bucket.get("ialu", 0) <= machine.ialu_units
        assert bucket.get("mem", 0) <= machine.mem_units
        assert bucket.get("fpu", 0) <= machine.fpu_units


@given(sequences)
@settings(max_examples=40)
def test_schedule_no_longer_than_serial(instructions):
    real = [i for i in instructions if not i.is_pseudo]
    schedule = schedule_sequence(instructions)
    serial_bound = sum(max(TABLE2_MACHINE.latency(i), 1) for i in real)
    assert schedule.length <= serial_bound


# -- behavior model ---------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=1 << 31),
    st.integers(min_value=0, max_value=1 << 20),
    st.integers(min_value=0, max_value=1 << 16),
)
def test_hash_unit_in_range_and_stable(uid, occurrence, seed):
    value = hash_unit(uid, occurrence, seed)
    assert 0.0 <= value < 1.0
    assert value == hash_unit(uid, occurrence, seed)


@given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 1000))
@settings(max_examples=30)
def test_behavior_rate_tracks_probability(prob, seed):
    model = BehaviorModel(seed=seed)
    model.set_bias(1, prob)
    n = 3000
    rate = sum(model.taken(1, i, 0) for i in range(n)) / n
    assert abs(rate - prob) < 0.05


# -- phase scripts ---------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 5000)),
        min_size=1, max_size=8,
    )
)
def test_cursor_agrees_with_phase_at(pairs):
    script = PhaseScript.from_pairs(pairs)
    cursor = script.cursor()
    probe = min(script.total_branches + 10, 20000)
    for i in range(probe):
        assert cursor.advance() == script.phase_at(i)


# -- BBB counters ------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.booleans()),
        min_size=1, max_size=600,
    )
)
@settings(max_examples=50)
def test_bbb_counters_bounded_and_consistent(events):
    config = HSDConfig(bbb_sets=4, bbb_ways=2, counter_bits=6,
                       candidate_threshold=8)
    bbb = BranchBehaviorBuffer(config)
    for slot, taken in events:
        bbb.access(0x1000 + 8 * slot, taken)
    for entry in bbb.entries():
        assert 0 <= entry.taken <= entry.executed <= config.counter_max
        assert entry.candidate == (entry.executed >= config.candidate_threshold)
    assert bbb.occupancy() <= config.bbb_entries


@given(st.lists(st.tuples(st.integers(0, 60), st.booleans()),
                min_size=1, max_size=2000))
@settings(max_examples=25)
def test_detector_hdc_stays_in_range(events):
    config = HSDConfig(bbb_sets=8, bbb_ways=2, hdc_bits=8,
                       candidate_threshold=4, refresh_interval=128,
                       clear_interval=512)
    detector = HotSpotDetector(config)
    for slot, taken in events:
        detector.observe(0x1000 + 8 * slot, taken)
        assert 0 <= detector.hdc <= config.hdc_max
    for record in detector.records:
        for profile in record:
            assert profile.executed >= config.candidate_threshold


# -- hot-spot similarity -----------------------------------------------------

record_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 500), st.floats(0, 1)),
    min_size=1, max_size=20,
).map(
    lambda items: HotSpotRecord(
        index=0,
        detected_at_branch=0,
        branches={
            0x1000 + 8 * slot: BranchProfile(
                0x1000 + 8 * slot, executed, min(int(executed * frac), executed)
            )
            for slot, executed, frac in items
        },
    )
)


@given(record_strategy)
def test_record_identical_to_itself(record):
    assert missing_fraction(record, record) == 0.0
    assert same_hot_spot(record, record)


@given(record_strategy, record_strategy)
def test_similarity_is_symmetric(a, b):
    assert same_hot_spot(a, b) == same_hot_spot(b, a)
    assert missing_fraction(a, b) == missing_fraction(b, a)


# -- weight estimation ----------------------------------------------------

@given(st.lists(st.floats(min_value=0.02, max_value=0.98),
                min_size=1, max_size=6))
@settings(max_examples=40)
def test_flow_conservation_on_branch_chain(probs):
    """A chain of diamonds conserves flow: exit weight == entry weight."""
    from repro.program.builder import FunctionBuilder

    fb = FunctionBuilder("f")
    for i, _p in enumerate(probs):
        cond = fb.block(f"c{i}")
        cond.sne(R(1), R(2), R(3))
        cond.brnz(R(1), f"t{i}")
        fall = fb.block(f"f{i}")
        fall.jump(f"m{i}")
        taken = fb.block(f"t{i}")
        taken.addi(R(4), R(4), 1)
        merge = fb.block(f"m{i}")
        merge.nop()
    tail = fb.block("tail")
    tail.ret()
    function = fb.build()
    est = estimate_weights(
        function.cfg, {f"c{i}": p for i, p in enumerate(probs)}
    )
    assert abs(est.weight("tail") - 1.0) < 1e-6
    for i in range(len(probs)):
        merged = est.weight(f"f{i}") + est.weight(f"t{i}")
        assert abs(merged - 1.0) < 1e-6
