"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_present(self):
        parser = build_parser()
        for command in ("table1", "figure8", "table3", "figure9",
                        "figure10", "ablations", "pack"):
            args = parser.parse_args(
                [command] if command != "pack" else [command, "181.mcf"]
            )
            assert args.command == command

    def test_bench_filter_repeatable(self):
        args = build_parser().parse_args(
            ["figure8", "--bench", "130.li/B", "--bench", "181.mcf/A"]
        )
        assert args.bench == ["130.li/B", "181.mcf/A"]

    def test_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit):
            main(["figure8", "--bench", "nope/A", "--scale", "0.1"])


class TestCommands:
    def test_table1_single_input(self, capsys, tmp_path):
        out = tmp_path / "t1.txt"
        code = main([
            "table1", "--bench", "181.mcf/A", "--scale", "0.2",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "181.mcf" in captured
        assert "Table 1" in out.read_text()

    def test_pack_command(self, capsys):
        code = main(["pack", "181.mcf", "A", "--scale", "0.2"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "unique phases" in captured
        assert "coverage" in captured

    def test_pack_with_classic_passes(self, capsys):
        code = main(["pack", "181.mcf", "A", "--scale", "0.2", "--classic"])
        assert code == 0
        assert "coverage" in capsys.readouterr().out


class TestConfigFlag:
    def test_pack_accepts_pipeline_config(self, capsys, tmp_path):
        import json

        path = tmp_path / "pipeline.json"
        path.write_text(json.dumps({"classic": True, "validate": False}))
        code = main(["pack", "181.mcf", "A", "--scale", "0.2",
                     "--config", str(path)])
        assert code == 0
        assert "coverage" in capsys.readouterr().out

    def test_missing_config_file_exits(self):
        with pytest.raises(SystemExit):
            main(["pack", "181.mcf", "A", "--config", "/nope/missing.json"])

    def test_invalid_config_document_exits(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"clasic": true}')
        with pytest.raises(SystemExit):
            main(["pack", "181.mcf", "A", "--config", str(path)])

    def test_ingest_flag_aliases(self, tmp_path):
        parser = build_parser()
        canonical = parser.parse_args(
            ["ingest", "--bench", "181.mcf/A", "--runs", "2",
             "--seed", "7", "--out", str(tmp_path)]
        )
        aliased = parser.parse_args(
            ["ingest", "--bench", "181.mcf/A", "--runs", "2",
             "--base-seed", "7", "--out-dir", str(tmp_path)]
        )
        assert canonical.seed == aliased.seed == 7
        assert canonical.out == aliased.out == str(tmp_path)

    def test_jobs_flag_uniform(self):
        parser = build_parser()
        serve_required = ["--profiles", "p", "--bench", "181.mcf/A"]
        for argv in (["faults", "--jobs", "2"],
                     ["fuzz", "--jobs", "2"],
                     ["serve", "--jobs", "2"] + serve_required,
                     ["figure8", "--jobs", "2"]):
            assert parser.parse_args(argv).jobs == 2


class TestTraceCommand:
    def test_trace_pack_writes_parseable_ledger(self, capsys, tmp_path):
        import json

        out = tmp_path / "ledger.json"
        code = main([
            "trace", "pack", "181.mcf", "A", "--scale", "0.2",
            "--trace-out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "pipeline.profile" in captured
        assert "trace written to" in captured
        document = json.loads(out.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "repro.pack" in names and "vacuum.pack" in names

    def test_trace_jsonl_export(self, tmp_path):
        out = tmp_path / "ledger.jsonl"
        code = main([
            "trace", "pack", "181.mcf", "A", "--scale", "0.2",
            "--export=jsonl", "--trace-out=" + str(out),
        ])
        assert code == 0
        assert out.exists()

    def test_trace_rejects_tracing_trace(self):
        with pytest.raises(SystemExit):
            main(["trace", "trace", "pack", "181.mcf"])

    def test_trace_rejects_empty_command(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_trace_rejects_bad_export_format(self):
        with pytest.raises(SystemExit):
            main(["trace", "pack", "181.mcf", "--export", "xml"])

    def test_stats_renders_written_ledger(self, capsys, tmp_path):
        out = tmp_path / "ledger.json"
        main(["trace", "pack", "181.mcf", "A", "--scale", "0.2",
              "--trace-out", str(out)])
        capsys.readouterr()
        code = main(["stats", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "pipeline.pack" in captured

    def test_stats_reexports(self, capsys, tmp_path):
        src = tmp_path / "ledger.json"
        dst = tmp_path / "ledger.jsonl"
        main(["trace", "pack", "181.mcf", "A", "--scale", "0.2",
              "--trace-out", str(src)])
        capsys.readouterr()
        code = main(["stats", str(src), "--export", "jsonl",
                     "--out", str(dst)])
        assert code == 0
        assert dst.exists()

    def test_stats_on_garbage_exits(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json")
        with pytest.raises(SystemExit):
            main(["stats", str(path)])
