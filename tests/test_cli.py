"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_present(self):
        parser = build_parser()
        for command in ("table1", "figure8", "table3", "figure9",
                        "figure10", "ablations", "pack"):
            args = parser.parse_args(
                [command] if command != "pack" else [command, "181.mcf"]
            )
            assert args.command == command

    def test_bench_filter_repeatable(self):
        args = build_parser().parse_args(
            ["figure8", "--bench", "130.li/B", "--bench", "181.mcf/A"]
        )
        assert args.bench == ["130.li/B", "181.mcf/A"]

    def test_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit):
            main(["figure8", "--bench", "nope/A", "--scale", "0.1"])


class TestCommands:
    def test_table1_single_input(self, capsys, tmp_path):
        out = tmp_path / "t1.txt"
        code = main([
            "table1", "--bench", "181.mcf/A", "--scale", "0.2",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "181.mcf" in captured
        assert "Table 1" in out.read_text()

    def test_pack_command(self, capsys):
        code = main(["pack", "181.mcf", "A", "--scale", "0.2"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "unique phases" in captured
        assert "coverage" in captured

    def test_pack_with_classic_passes(self, capsys):
        code = main(["pack", "181.mcf", "A", "--scale", "0.2", "--classic"])
        assert code == 0
        assert "coverage" in capsys.readouterr().out
