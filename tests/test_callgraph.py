"""Tests for the call graph (sites, back edges, restriction)."""

from repro.isa.assembler import assemble
from repro.program import CallGraph


RECURSIVE_SRC = """
func main:
  e:
    call a
  x:
    halt

func a:
  a0:
    call b
  a1:
    ret

func b:
  b0:
    slt r1, r2, r3
    brnz r1, b2
  b1:
    call a          ; mutual recursion back edge
  b2:
    call leaf
  b3:
    ret

func leaf:
  l0:
    ret
"""


class TestCallGraph:
    def setup_method(self):
        self.program = assemble(RECURSIVE_SRC)
        self.graph = CallGraph.from_program(self.program)

    def test_functions_registered(self):
        assert self.graph.functions == {"main", "a", "b", "leaf"}

    def test_callee_names(self):
        assert self.graph.callee_names("main") == {"a"}
        assert self.graph.callee_names("b") == {"a", "leaf"}

    def test_caller_names(self):
        assert self.graph.caller_names("a") == {"main", "b"}
        assert self.graph.caller_names("main") == set()

    def test_sites_carry_block_and_uid(self):
        sites = self.graph.callees("b")
        assert {s.block_label for s in sites} == {"b1", "b2"}
        uids = {s.call_uid for s in sites}
        assert len(uids) == 2

    def test_back_edges_identified(self):
        back = self.graph.back_edge_sites(roots=["main"])
        assert {(s.caller, s.callee) for s in back} == {("b", "a")}

    def test_forward_sites_exclude_back_edges(self):
        forward = self.graph.forward_sites(roots=["main"])
        assert ("b", "a") not in {(s.caller, s.callee) for s in forward}
        assert ("main", "a") in {(s.caller, s.callee) for s in forward}

    def test_self_recursion_is_back_edge(self):
        program = assemble(
            """
            func main:
              e:
                call main
              x:
                halt
            """
        )
        graph = CallGraph.from_program(program)
        back = graph.back_edge_sites(roots=["main"])
        assert {(s.caller, s.callee) for s in back} == {("main", "main")}

    def test_restricted_to_subset(self):
        sub = self.graph.restricted_to({"a", "b"})
        assert sub.functions == {"a", "b"}
        pairs = {(s.caller, s.callee) for s in sub.sites}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_restriction_drops_external_sites(self):
        sub = self.graph.restricted_to({"b", "leaf"})
        assert {(s.caller, s.callee) for s in sub.sites} == {("b", "leaf")}
