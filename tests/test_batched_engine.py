"""Batched engine: bit-identity with sequential compiled runs.

The contract (see :mod:`repro.engine.batched`) is that a batch of N
client rows — divergent behavior seeds over one binary — produces the
same :class:`ExecutionSummary` fields and the same
``(branch_uid, taken, phase)`` event stream as N sequential
:class:`CompiledExecutor` runs, for every kernel (``scalar``,
``lockstep``, ``native``) and through the fleet simulation layer
(byte-identical profile documents).
"""

from __future__ import annotations

import glob
import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batched import (
    BatchedExecutor,
    batch_kernel,
    fleet_batching_enabled,
    row_behavior,
)
from repro.engine.compiled import CompiledExecutor
from repro.engine.native import native_kernel
from repro.fuzz import load_case
from repro.postlink.vacuum import VacuumPacker
from repro.service.aggregate import ingest_dir, merge_runs
from repro.service.artifacts import ArtifactStore
from repro.service.clients import simulate_fleet
from repro.service.farm import FarmConfig, pack_fleet
from repro.workloads.suite import load_benchmark
from repro.workloads.synthetic import (
    MIN_PHASE_BRANCHES,
    SyntheticSpec,
    build_workload,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

KERNELS = ("scalar", "lockstep", "native")

SUITE_INPUTS = (
    ("181.mcf", "A"),
    ("134.perl", "C"),
    ("130.li", "B"),
    ("099.go", "A"),
)


def summary_tuple(summary):
    return (
        summary.instructions,
        summary.branches,
        summary.taken_branches,
        summary.calls,
        summary.steps,
        summary.stop_reason,
        tuple(sorted(summary.block_visits.items())),
    )


def sequential_traces(workload, seeds, limits=None):
    limits = limits or workload.limits
    traces = []
    for seed in seeds:
        executor = CompiledExecutor(
            workload.program,
            row_behavior(workload.behavior, seed),
            workload.phase_script,
            limits=limits,
        )
        traces.append(executor.run_traced())
    return traces


def assert_batch_matches(workload, seeds, limits=None):
    limits = limits or workload.limits
    expected = sequential_traces(workload, seeds, limits)
    run = BatchedExecutor(
        workload.program,
        workload.behavior,
        workload.phase_script,
        seeds=seeds,
        limits=limits,
    ).run_traced()
    assert len(run.traces) == len(seeds)
    for row, (exp, got) in enumerate(zip(expected, run.traces)):
        assert summary_tuple(exp.summary) == summary_tuple(got.summary), (
            f"row {row} summary diverged under kernel {run.kernel}"
        )
        assert np.array_equal(exp.uids, got.uids), f"row {row} uids"
        assert np.array_equal(exp.taken, got.taken), f"row {row} taken"
        assert np.array_equal(
            exp.phases(workload.phase_script),
            got.phases(workload.phase_script),
        ), f"row {row} phases"
    return run


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "bench,input_name", SUITE_INPUTS,
    ids=[f"{b}/{i}" for b, i in SUITE_INPUTS],
)
def test_suite_bit_identity(bench, input_name, kernel, monkeypatch):
    if kernel == "native" and native_kernel() is None:
        pytest.skip("no C compiler for the native kernel")
    monkeypatch.setenv("REPRO_BATCH_KERNEL", kernel)
    workload = load_benchmark(bench, input_name, scale=0.05)
    run = assert_batch_matches(workload, seeds=[3, 4, 5, 6])
    if kernel != "scalar" and not run.scalar_rows:
        assert run.kernel == kernel


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_fuzz_corpus_bit_identity(path):
    workload = load_case(path).workload
    assert_batch_matches(workload, seeds=[1, 2, 3])


# -- hypothesis: random (N, seeds, phase script) combinations ----------

_HYPO_CACHE = {}


def _hypo_workload(phases, pattern):
    key = (phases, pattern)
    if key not in _HYPO_CACHE:
        spec = SyntheticSpec(
            name=f"t.batched.{phases}.{pattern}",
            seed=17 + phases,
            phases=phases,
            work_functions=4,
            functions_per_phase=2,
            cold_functions=2,
            cold_blocks_per_function=3,
            branch_budget=phases * MIN_PHASE_BRANCHES,
            phase_pattern=pattern,
        )
        workload = build_workload(spec)
        packed = VacuumPacker().pack(workload).packed
        _HYPO_CACHE[key] = (workload, packed)
    return _HYPO_CACHE[key]


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    base_seed=st.integers(min_value=0, max_value=60),
    stride=st.integers(min_value=1, max_value=9),
    budget_scale=st.sampled_from([1.0, 1.5, 4.0]),
    phases=st.integers(min_value=2, max_value=3),
    pattern=st.sampled_from(["sequence", "repeat"]),
)
def test_random_batches_bit_identical(
    n, base_seed, stride, budget_scale, phases, pattern
):
    workload, packed = _hypo_workload(phases, pattern)
    seeds = [base_seed + stride * k for k in range(n)]
    # Budgets beyond the script's end make rows run to HALT at
    # seed-dependent event counts: the early-halt stragglers park while
    # the rest of the batch keeps retiring branches.
    limits = replace(
        workload.limits,
        max_branches=int(workload.limits.max_branches * budget_scale),
    )
    expected = sequential_traces(workload, seeds, limits)
    run = BatchedExecutor(
        workload.program,
        workload.behavior,
        workload.phase_script,
        seeds=seeds,
        limits=limits,
    ).run_traced()
    for exp, got in zip(expected, run.traces):
        assert summary_tuple(exp.summary) == summary_tuple(got.summary)
        assert np.array_equal(exp.uids, got.uids)
        assert np.array_equal(exp.taken, got.taken)
    # Replay-through-packed: every batched trace must drive the packed
    # clone of the binary without divergence (copies resolve through
    # origin uids), retiring exactly the recorded number of branches.
    for seed, trace in zip(seeds, run.traces):
        player = CompiledExecutor(
            packed.program,
            row_behavior(workload.behavior, seed),
            workload.phase_script,
            limits=limits,
        )
        replayed = player.run(replay=trace)
        assert replayed.branches == trace.summary.branches
        assert replayed.stop_reason == trace.summary.stop_reason


# -- engine selection ---------------------------------------------------

def test_fleet_batching_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert fleet_batching_enabled()
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    assert fleet_batching_enabled()
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    assert not fleet_batching_enabled()
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert not fleet_batching_enabled()


def test_batch_kernel_env(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_KERNEL", raising=False)
    assert batch_kernel() == "auto"
    monkeypatch.setenv("REPRO_BATCH_KERNEL", " Lockstep ")
    assert batch_kernel() == "lockstep"


def test_single_run_falls_back_to_scalar():
    workload, _ = _hypo_workload(2, "sequence")
    run = BatchedExecutor(
        workload.program,
        workload.behavior,
        workload.phase_script,
        seeds=[5],
        limits=workload.limits,
    ).run_traced()
    assert run.kernel == "scalar"


def test_cli_engine_flag_normalized():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["bench", "--quick", "--engine", "BATCHED"]
    )
    assert args.engine == "batched"


# -- observability ------------------------------------------------------

def test_batched_counters_increment():
    from repro.obs import default_registry
    from repro.obs.metrics import series_name

    def total(name):
        return sum(
            value
            for key, value in default_registry().snapshot()["counters"].items()
            if series_name(key) == name
        )

    workload, _ = _hypo_workload(2, "sequence")
    before_rows = total("engine.batched.rows")
    before_retired = total("engine.batched.retired_rows")
    run = BatchedExecutor(
        workload.program,
        workload.behavior,
        workload.phase_script,
        seeds=[7, 8, 9],
        limits=workload.limits,
    ).run_traced()
    assert total("engine.batched.rows") == before_rows + 3
    assert (
        total("engine.batched.retired_rows")
        == before_retired + 3 - len(run.scalar_rows)
    )
    assert total("engine.batched.steps") > 0


# -- fleet layer --------------------------------------------------------

def _fleet_bytes(directory):
    return {
        os.path.basename(p): open(p, "rb").read()
        for p in sorted(glob.glob(os.path.join(str(directory), "*.json")))
    }


def test_fleet_documents_identical_batched_vs_sequential(
    tmp_path, monkeypatch
):
    from repro.service.drift import DriftSpec, apply_drift

    spec = DriftSpec(severity=0.5, warm_bias=0.4, seed=7)

    def mutate(w, i):
        apply_drift(w.behavior, spec)

    for drift_mutate in (None, mutate):
        tag = "drift" if drift_mutate else "plain"
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        seq_dir = tmp_path / f"seq-{tag}"
        simulate_fleet("181.mcf", "A", 4, seq_dir, base_seed=3, scale=0.1,
                       epochs=2, mutate=drift_mutate)
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        bat_dir = tmp_path / f"bat-{tag}"
        simulate_fleet("181.mcf", "A", 4, bat_dir, base_seed=3, scale=0.1,
                       epochs=2, mutate=drift_mutate)
        seq_docs = _fleet_bytes(seq_dir)
        bat_docs = _fleet_bytes(bat_dir)
        assert seq_docs and seq_docs == bat_docs, f"{tag} fleet diverged"


def test_fleet_falls_back_when_mutate_rebuilds_program(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "batched")

    def rebuild(w, i):
        # Replacing the limits object steps outside the shared-binary
        # contract; the fleet must quietly run per-client instead.
        w.limits = replace(w.limits)

    clients = simulate_fleet("181.mcf", "A", 2, tmp_path / "f", base_seed=1,
                             scale=0.05, mutate=rebuild)
    assert len(clients) == 2


def test_farm_jobs_invariant_with_batched_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    out = tmp_path / "profiles"
    simulate_fleet("134.perl", "C", runs=4, out_dir=out, base_seed=0,
                   scale=0.2)
    merged = merge_runs(ingest_dir(out))
    config = FarmConfig(benchmark="134.perl", input_name="C", scale=0.2)
    serial = pack_fleet(merged, config, jobs=1, store=ArtifactStore("off"))
    pooled = pack_fleet(merged, config, jobs=2, store=ArtifactStore("off"))
    assert [o.payload for o in serial.outcomes] == [
        o.payload for o in pooled.outcomes
    ]
    assert [o.key for o in serial.outcomes] == [
        o.key for o in pooled.outcomes
    ]
    assert serial.degraded_shards == pooled.degraded_shards == 0
