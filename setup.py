"""Legacy setup shim.

The environment's setuptools lacks the ``wheel`` package, so editable
installs go through ``setup.py develop``; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
