#!/usr/bin/env python3
"""Offline re-optimization from a persisted hardware profile.

Post-link optimization separates profiling from optimization: the
profile is captured once (in the end-user environment) and the
optimizer can be re-run later with different policies.  This example
profiles a benchmark, saves the phase records to JSON, then rebuilds
packages twice from the *saved* profile — once with linking, once
without — and compares coverage without ever re-profiling.

Run:  python examples/offline_reoptimize.py
"""

import tempfile
from pathlib import Path

from repro.api import PipelineConfig
from repro.hsd import load_profile, save_profile
from repro.postlink import VacuumPacker
from repro.postlink.vacuum import ProfileResult
from repro.workloads.suite import load_benchmark


def main() -> None:
    workload = load_benchmark("255.vortex", "A", scale=0.5)
    packer = VacuumPacker()

    print("profiling once under the Hot Spot Detector ...")
    profile = packer.profile(workload)
    print(f"  {profile.raw_detections} raw detections -> "
          f"{profile.phase_count} unique phases")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "vortex.profile.json"
        save_profile(path, profile.records,
                     meta={"benchmark": "255.vortex/A", "scale": 0.5})
        print(f"  profile saved to {path.name} "
              f"({path.stat().st_size} bytes)")

        records = load_profile(path)
        print(f"  reloaded {len(records)} phase records")

        # Rebuild a ProfileResult around the loaded records (the image
        # and summary come from the original profiling run).
        loaded = ProfileResult(
            records=records,
            raw_detections=profile.raw_detections,
            summary=profile.summary,
            image=profile.image,
        )

        print("\nre-optimizing offline with two policies:")
        for label, policy in (
            ("with linking   ", PipelineConfig(link=True).packer()),
            ("without linking", PipelineConfig(link=False).packer()),
        ):
            result = policy.pack(workload, profile=loaded)
            print(f"  {label}: {len(result.packages)} packages, "
                  f"coverage {result.coverage.package_fraction:.1%}")


if __name__ == "__main__":
    main()
