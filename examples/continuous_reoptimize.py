#!/usr/bin/env python3
"""Continuous re-optimization: drift, detection, and self-healing.

The paper's end vision is transparent reoptimization — hardware
detects phases, software re-optimizes as behavior changes.  This
example closes that loop end to end:

1. a simulated client fleet profiles a benchmark every epoch;
2. the controller ships a packed artifact and then *probes* it each
   epoch, projecting its selected regions onto current behavior;
3. at a chosen epoch the fleet's behavior drifts (cold branch guards
   warm up), projected coverage decays, and the detector fires;
4. the controller re-aggregates recent profiles, re-packs through the
   fault-tolerant farm, and ships a fresh artifact — measuring
   time-to-recover.

Run:  python examples/continuous_reoptimize.py
"""

import tempfile

from repro.service import ControllerConfig, DriftSpec, run_controller


def main() -> None:
    config = ControllerConfig(
        benchmark="181.mcf",
        input_name="A",
        scale=0.2,
        epochs=6,
        clients_per_epoch=3,
        epoch_window=2,
        drift=DriftSpec(epoch=2, severity=0.5, warm_bias=0.4),
    )
    print("simulating 6 service epochs with drift at epoch 2 ...\n")
    with tempfile.TemporaryDirectory() as work:
        report = run_controller(config, work, jobs=2)

    print(report.render())

    recovery = report.document["recovery"]
    print(f"\nthe drift warmed {recovery['warmed_branches']} formerly-cold "
          f"branch guard(s); the shipped artifact's projected coverage "
          f"fell to {recovery['drifted_coverage']:.1%} before the "
          f"re-pack restored {recovery['post_recovery_coverage']:.1%}.")


if __name__ == "__main__":
    main()
