#!/usr/bin/env python3
"""Semantic packing: prove the packed binary computes the same answers.

This example uses the *semantic* interpreter (real registers, memory,
and arithmetic — no behavioral model).  A checksum kernel alternates
between two processing modes; we hand the Vacuum Packing pipeline a
deliberately lossy synthetic profile, pack the binary, and then execute
both versions for real, comparing final architectural state.

Run:  python examples/semantic_packing.py
"""

from repro.engine import Interpreter
from repro.hsd.records import BranchProfile, HotSpotRecord
from repro.isa.assembler import assemble
from repro.packages import construct_all
from repro.postlink import rewrite_program
from repro.regions import identify_region

PROGRAM = """
; Computes two checksums over pseudo-data; r20 = "mode A" checksum,
; r21 = "mode B" checksum, alternating per element; every 8th element
; triggers a slow path.
func main:
  init:
    movi r1, 0
    movi r2, 240
    movi r20, 0
    movi r21, 0
  loop:
    addi r1, r1, 1
    call step
  post:
    andi r5, r1, 7
    brz r5, slow
  resume:
    slt r5, r1, r2
    brnz r5, loop
  done:
    halt
  slow:
    muli r20, r20, 3
    addi r20, r20, 7
    jump resume

func step:
  s_entry:
    andi r10, r1, 1
    brz r10, mode_b
  mode_a:
    mul r11, r1, r1
    add r20, r20, r11
    ret
  mode_b:
    shli r12, r1, 2
    xor r21, r21, r12
    ret
"""

# A deliberately imperfect hardware profile: it only saw three of the
# branches, underestimates `post`, and never saw `s_entry` at all.
PROFILE = {
    ("main", "post"): BranchProfile(0x10, executed=300, taken=9),
    ("main", "resume"): BranchProfile(0x18, executed=300, taken=290),
}


def main() -> None:
    program = assemble(PROGRAM)

    baseline = Interpreter(program).run()
    print("original  :", dict(sorted(
        (k, v) for k, v in baseline.state.int_regs.items() if k in (1, 20, 21)
    )))

    record = HotSpotRecord(
        index=0, detected_at_branch=0,
        branches={p.address: p for p in PROFILE.values()},
    )
    locate = {p.address: loc for loc, p in PROFILE.items()}
    region = identify_region(program, record, locate)
    print(f"\nregion: {region.hot_block_count()} hot blocks in "
          f"{region.function_names()} (profile covered "
          f"{len(record.branches)} branches)")

    plan = construct_all([region])
    packed = rewrite_program(program, plan)
    print(f"packages: {[p.name for p in plan.packages]}")
    print(f"static size {packed.original_static_size} -> "
          f"{packed.program.static_size()}")

    rewritten = Interpreter(packed.program).run(trace_blocks=True)
    print("\npacked    :", dict(sorted(
        (k, v) for k, v in rewritten.state.int_regs.items() if k in (1, 20, 21)
    )))

    in_pkg = sum(1 for fn, _ in rewritten.trace if fn in packed.package_names)
    print(f"{in_pkg}/{len(rewritten.trace)} dynamic blocks ran in packages")

    for reg in (1, 20, 21):
        original = baseline.state.int_regs.get(reg, 0)
        new = rewritten.state.int_regs.get(reg, 0)
        status = "OK" if original == new else "MISMATCH"
        print(f"   r{reg}: {original} vs {new}  [{status}]")
        assert original == new

    image = packed.link_image()
    print(f"\nlinked packed image: {image.size_bytes()} bytes "
          f"({image.size_instructions()} instructions)")


if __name__ == "__main__":
    main()
