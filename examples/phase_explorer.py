#!/usr/bin/env python3
"""Phase explorer: watch the Hot Spot Detector find a benchmark's phases.

Loads a Table 1 benchmark from the suite, runs it under the HSD, and
prints the detection timeline against the workload's ground-truth phase
script — the hardware never sees the script, so the comparison shows
how well (and how quickly) the detector rediscovers the phase structure.

Run:  python examples/phase_explorer.py [benchmark] [input]
      python examples/phase_explorer.py 134.perl B
"""

import sys

from repro.engine.listeners import HSDListener
from repro.hsd import HotSpotDetector, missing_fraction
from repro.program import ProgramImage
from repro.workloads.suite import load_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "197.parser"
    input_name = sys.argv[2] if len(sys.argv) > 2 else "A"
    workload = load_benchmark(benchmark, input_name, scale=0.5)

    print(f"benchmark {benchmark}/{input_name}: "
          f"{workload.program.static_size()} static instructions")
    print("\nground-truth phase script (invisible to the hardware):")
    for segment in workload.phase_script.segments:
        print(f"   phase {segment.phase_id}: {segment.branches:,} branches")

    image = ProgramImage(workload.program)
    detector = HotSpotDetector()
    listener = HSDListener(detector, dict(image.instruction_address))
    summary = workload.run(branch_hooks=[listener])

    print(f"\nran {summary.branches:,} branches / "
          f"{summary.instructions:,} instructions")
    print(f"raw detections: {listener.raw_detections}   "
          f"refresh events: {detector.stats.refreshes}   "
          f"BBB clears: {detector.stats.clears}")

    print("\nunique phases after software filtering:")
    records = listener.unique_records
    for record in records:
        truth = workload.phase_script.phase_at(record.detected_at_branch - 1)
        biased = sum(1 for b in record if b.bias() is not None)
        print(f"   record #{record.index:3d} detected at branch "
              f"{record.detected_at_branch:>9,} "
              f"(ground-truth phase {truth}): "
              f"{len(record)} hot branches, {biased} biased")

    if len(records) >= 2:
        print("\npairwise branch-set distance (the 30% similarity rule):")
        for i, a in enumerate(records):
            cells = " ".join(
                f"{missing_fraction(a, b):4.0%}" for b in records
            )
            print(f"   #{a.index:<3d} {cells}")

    from repro.experiments import detection_latencies, render_timeline

    print("\ndetection timeline (truth vs records):")
    print(render_timeline(workload.phase_script, records))
    latencies = detection_latencies(workload.phase_script, records)
    if latencies:
        print(f"\nreaction time after each transition: "
              f"{', '.join(f'{l:,}' for l in latencies)} branches")

    print("\nhottest branches of the first phase:")
    first = records[0]
    locate = {}
    for function in workload.program.functions.values():
        for block in function.blocks:
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                locate[image.address_of(term)] = f"{function.name}/{block.label}"
    top = sorted(first, key=lambda b: -b.executed)[:8]
    for profile in top:
        print(f"   {locate.get(profile.address, hex(profile.address)):40s} "
              f"executed={profile.executed:4d} taken={profile.taken:4d} "
              f"({profile.taken_fraction:.0%} taken)")


if __name__ == "__main__":
    main()
