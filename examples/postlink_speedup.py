#!/usr/bin/env python3
"""Post-link speedup: time a benchmark before and after Vacuum Packing.

Runs one Table 1 benchmark under the Table 2 EPIC timing model twice —
original binary vs packed binary — and breaks the cycle difference into
its components (schedule cycles, taken-branch fetch bubbles, mispredict
penalties, I-cache stalls), the effects the paper attributes its
Figure 10 speedups to.

Run:  python examples/postlink_speedup.py [benchmark] [input]
      python examples/postlink_speedup.py 164.gzip A
"""

import sys

from repro.cpu import TimingSimulator
from repro.optimize import baseline_block_costs, packed_block_costs
from repro.postlink import VacuumPacker
from repro.workloads.suite import load_benchmark


def components(result):
    scheduled = (
        result.cycles
        - result.mispredict_cycles
        - result.fetch_bubble_cycles
        - result.icache_stall_cycles
        - result.btb_redirect_cycles
        - result.ras_penalty_cycles
    )
    return [
        ("scheduled block cycles", scheduled),
        ("taken-branch fetch bubbles", result.fetch_bubble_cycles),
        ("branch mispredict penalties", result.mispredict_cycles),
        ("BTB redirects", result.btb_redirect_cycles),
        ("RAS mispredicts", result.ras_penalty_cycles),
        ("I-cache stalls", result.icache_stall_cycles),
    ]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "130.li"
    input_name = sys.argv[2] if len(sys.argv) > 2 else "B"
    workload = load_benchmark(benchmark, input_name, scale=0.5)
    print(f"benchmark {benchmark}/{input_name}")

    result = VacuumPacker().pack(workload)
    print(f"phases: {result.profile.phase_count}, "
          f"packages: {len(result.packages)}, "
          f"coverage: {result.coverage.package_fraction:.1%}")

    base = TimingSimulator(
        workload.program, baseline_block_costs(workload.program)
    ).run(workload)
    packed = TimingSimulator(
        result.packed.program,
        packed_block_costs(result.packed.program, result.packed.package_names),
    ).run(workload)

    print(f"\n{'component':32s} {'original':>14s} {'packed':>14s} {'delta':>12s}")
    for (name, before), (_, after) in zip(components(base), components(packed)):
        print(f"{name:32s} {before:14,d} {after:14,d} {after - before:+12,d}")
    print(f"{'total cycles':32s} {base.cycles:14,d} {packed.cycles:14,d} "
          f"{packed.cycles - base.cycles:+12,d}")

    print(f"\ninstructions: {base.instructions:,} -> {packed.instructions:,} "
          f"(jump elimination in packages)")
    print(f"IPC: {base.ipc:.3f} -> {packed.ipc:.3f}")
    print(f"predictor accuracy: {base.predictor_accuracy:.2%} -> "
          f"{packed.predictor_accuracy:.2%}")
    print(f"\nSPEEDUP: {base.cycles / packed.cycles:.3f}x")


if __name__ == "__main__":
    main()
