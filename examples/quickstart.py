#!/usr/bin/env python3
"""Quickstart: the whole Vacuum Packing pipeline on a small program.

Builds a two-phase program in the synthetic ISA, profiles it with the
Hot Spot Detector, extracts phase packages, rewrites the binary, and
reports coverage — the end-to-end flow of the paper's Figure 1.

Run:  python examples/quickstart.py
"""

from repro.engine import BehaviorModel, ExecutionLimits, PhaseScript
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_function
from repro.postlink import VacuumPacker
from repro.workloads import Workload

PROGRAM = """
; A driver loop that processes "requests"; odd phases are string-like
; work (work_a), even phases numeric-like work (work_b).
func main:
  entry:
    movi r1, 0
  head:
    call process
  latch:
    seq r2, r1, r1
    brnz r2, head
  tail:
    halt

func process:
  p_entry:
    addi r1, r1, 1
  p_dispatch:
    slt r3, r1, r2
    brnz r3, p_do_b
  p_do_a:
    call work_a
  p_back_a:
    jump p_latch
  p_do_b:
    call work_b
  p_back_b:
    jump p_latch
  p_latch:
    slt r3, r2, r4
    brnz r3, p_entry
  p_ret:
    ret

func work_a:
  a_head:
    addi r10, r10, 1
    xor r11, r10, r12
    slt r13, r11, r14
    brnz r13, a_head
  a_ret:
    ret

func work_b:
  b_head:
    muli r20, r20, 3
    add r21, r20, r22
    slt r13, r21, r14
    brnz r13, b_head
  b_ret:
    ret
"""


def build_workload() -> Workload:
    program = assemble(PROGRAM)
    behavior = BehaviorModel(seed=2002)
    branch_of = {loc: uid for uid, loc in program.branch_block_index().items()}

    behavior.set_bias(branch_of[("main", "latch")], 1.0)       # run forever
    behavior.set_bias(branch_of[("process", "p_latch")], 0.95)  # ~20 per call
    # The dispatch flips with the phase: that's what makes two packages.
    behavior.set_phase_biases(
        branch_of[("process", "p_dispatch")], {0: 0.03, 1: 0.97}
    )
    behavior.set_bias(branch_of[("work_a", "a_head")], 0.93)
    behavior.set_bias(branch_of[("work_b", "b_head")], 0.93)

    script = PhaseScript.from_pairs([(0, 150_000), (1, 150_000)])
    return Workload(
        name="quickstart",
        program=program,
        behavior=behavior,
        phase_script=script,
        limits=ExecutionLimits(max_branches=script.total_branches),
    )


def main() -> None:
    workload = build_workload()
    print(f"program: {workload.program.static_size()} static instructions, "
          f"{len(workload.program.functions)} functions")

    packer = VacuumPacker()
    result = packer.pack(workload)

    print(f"\n-- step 1: hardware profiling "
          f"({result.profile.summary.branches:,} branches observed)")
    print(f"   raw hot-spot detections : {result.profile.raw_detections}")
    print(f"   unique phases after filtering: {result.profile.phase_count}")

    print("\n-- step 2: region identification")
    for region in result.regions:
        print(f"   phase record #{region.record.index}: "
              f"{region.hot_block_count()} hot blocks across "
              f"{region.function_names()}")

    print("\n-- step 3: packages")
    for package in result.packages:
        exits = sum(1 for e in package.exits)
        linked = sum(1 for e in package.exits if e.is_linked)
        print(f"   {package.name}: root={package.root}, "
              f"{package.static_size()} insts, "
              f"{package.branch_count()} branches, "
              f"{exits} exits ({linked} linked)")

    print("\n-- post-link rewrite")
    stats = result.packed.stats
    print(f"   launch points: {stats.launch_points} "
          f"(branches={stats.branch_patches}, prologues={stats.call_patches}, "
          f"trampolines={stats.trampolines})")
    print(f"   static size: {result.packed.original_static_size} -> "
          f"{result.packed.program.static_size()} "
          f"(+{100 * result.packed.static_size_increase():.1f}%)")

    print(f"\n-- coverage: {result.coverage.package_fraction:.1%} of "
          f"{result.coverage.total_instructions:,} dynamic instructions "
          f"ran inside packages")

    print("\n-- one package, as code:")
    print(disassemble_function(result.packages[0].build_function()))


if __name__ == "__main__":
    main()
