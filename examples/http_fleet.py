#!/usr/bin/env python3
"""A fleet talking to the profile daemon over HTTP.

The deployment shape of the fleet service: a long-running daemon
(`repro server`) holds one checkpointed streaming aggregator per
tenant (one tenant per benchmark) and one shared artifact store,
while client machines POST their profile documents to it over plain
HTTP.  This example runs the whole loop in one process:

1. simulate a 12-client fleet of the same binary (batched engine),
   persisting one provenance-stamped profile document per client;
2. start the daemon on an ephemeral port in a background thread;
3. upload the documents as streaming NDJSON — including one corrupt
   upload, which is quarantined per line (400, never 500) without
   touching its neighbours;
4. trigger a re-pack through the fault-tolerant farm and fetch one
   packing artifact back by its content-addressed key;
5. stop the daemon gracefully (drain, final checkpoint) and restart
   it against the same store: it resumes from the checkpoint, and
   replaying every upload folds nothing — at-least-once clients
   cannot double-count;
6. run a second fleet for a *different* benchmark against the same
   daemon: documents stamped with `meta.benchmark` are routed to
   that tenant's aggregator, and each tenant repacks its own
   benchmark independently.

Run:  python examples/http_fleet.py
"""

import json
import tempfile
from pathlib import Path

from repro.service import ArtifactStore, simulate_fleet
from repro.server import DaemonClient, ServerConfig, start_daemon_thread

BENCH, INPUT, SCALE = "181.mcf", "A", 0.2
OTHER_BENCH, OTHER_INPUT = "099.go", "A"


def read_fleet(work: Path, bench: str, input_name: str, runs: int,
               base_seed: int) -> list:
    profiles = work / f"profiles-{bench}"
    simulate_fleet(bench, input_name, runs=runs, out_dir=profiles,
                   base_seed=base_seed, epochs=3, scale=SCALE)
    return [path.read_text() for path in sorted(profiles.glob("*.json"))]


def stamp(texts, bench: str) -> list:
    """Stamp each document with the tenant it belongs to.

    The flat POST /profiles endpoint demultiplexes per line by
    `meta.benchmark`; unstamped lines fold into the default tenant.
    """
    out = []
    for text in texts:
        doc = json.loads(text)
        doc.setdefault("meta", {})["benchmark"] = bench
        out.append(json.dumps(doc))
    return out


def upload(tenant, texts) -> dict:
    status, body = tenant.upload(texts)
    print(f"  POST {tenant.path('profiles')} -> {status}: "
          f"folded={body['folded']} duplicates={body['duplicates']} "
          f"rejected={len(body['rejected'])}")
    return body


def main() -> None:
    with tempfile.TemporaryDirectory() as work:
        work = Path(work)
        print("simulating 12 clients (batched engine) ...")
        texts = read_fleet(work, BENCH, INPUT, runs=12, base_seed=7)

        store = ArtifactStore(work / "store")
        config = ServerConfig(benchmark=BENCH, input_name=INPUT,
                              port=0, scale=SCALE, jobs=2,
                              gc_max_bytes=50_000_000)

        print("\nfirst daemon lifetime:")
        with start_daemon_thread(config, store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                flat = client.tenant()  # the default tenant's flat routes
                upload(flat, texts)
                upload(flat, ["{not json", json.dumps({"bad": 1})])

                status, health = client.healthz()
                print(f"  GET /healthz -> {status}: "
                      f"documents={health['documents']} "
                      f"quarantined={health['quarantined']}")

                status, repack = flat.repack()
                report = repack["report"]
                print(f"  POST /repack -> {status}: "
                      f"{len(report['merge']['phases'])} merged phase(s), "
                      f"{len(repack['artifacts'])} artifact(s)")

                key = repack["artifacts"][0]
                status, raw = client.artifact(key)
                payload = json.loads(raw)
                print(f"  GET /artifacts/{key[:16]}... -> {status}: "
                      f"{len(payload['packages'])} package(s), "
                      f"{len(raw)} canonical bytes")
        print("  stopped (drained + final checkpoint)")

        print("\nsecond daemon lifetime, same store:")
        with start_daemon_thread(config, store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                status, health = client.healthz()
                print(f"  GET /healthz -> {status}: "
                      f"checkpoint={health['checkpoint']} "
                      f"documents={health['documents']}")
                flat = client.tenant()
                body = upload(flat, texts)  # replay: all duplicates
                assert body["folded"] == 0, "replayed upload must dedup"

                # A second fleet, different benchmark, same daemon:
                # stamped documents route to their own tenant.
                print(f"\n  second fleet ({OTHER_BENCH}/{OTHER_INPUT}) "
                      "through the same daemon:")
                other_texts = stamp(
                    read_fleet(work, OTHER_BENCH, OTHER_INPUT,
                               runs=6, base_seed=23),
                    f"{OTHER_BENCH}/{OTHER_INPUT}")
                body = upload(flat, other_texts)
                assert body["tenants"] == {
                    f"{OTHER_BENCH}/{OTHER_INPUT}": 6}, body["tenants"]

                status, index = client.tenants()
                print(f"  GET /tenants -> {status}: "
                      f"{sorted(index['tenants'])}")

                scoped = client.tenant(f"{OTHER_BENCH}/{OTHER_INPUT}")
                status, snap = scoped.snapshot()
                print(f"  GET {scoped.path('snapshot')} -> {status}: "
                      f"{len(snap['fleet']['phases'])} phase(s), "
                      f"digest {snap['digest'][:16]}...")

                status, repack = scoped.repack()
                print(f"  POST {scoped.path('repack')} -> {status}: "
                      f"packed {repack['report']['benchmark']} with "
                      f"{len(repack['artifacts'])} artifact(s)")
                assert (repack["report"]["benchmark"]
                        == f"{OTHER_BENCH}/{OTHER_INPUT}")
        print("\nthe restart resumed from the checkpoint; replaying the "
              "fleet's uploads folded nothing, and the second benchmark "
              "aggregated in its own tenant.")


if __name__ == "__main__":
    main()
