#!/usr/bin/env python3
"""A fleet talking to the profile daemon over HTTP.

The deployment shape of the fleet service: a long-running daemon
(`repro server`) holds one checkpointed streaming aggregator and one
artifact store, while client machines POST their profile documents to
it over plain HTTP.  This example runs the whole loop in one process:

1. simulate a 12-client fleet of the same binary (batched engine),
   persisting one provenance-stamped profile document per client;
2. start the daemon on an ephemeral port in a background thread;
3. upload the documents as streaming NDJSON — including one corrupt
   upload, which is quarantined per line (400, never 500) without
   touching its neighbours;
4. trigger a re-pack through the fault-tolerant farm and fetch one
   packing artifact back by its content-addressed key;
5. stop the daemon gracefully (drain, final checkpoint) and restart
   it against the same store: it resumes from the checkpoint, and
   replaying every upload folds nothing — at-least-once clients
   cannot double-count.

Run:  python examples/http_fleet.py
"""

import json
import tempfile
from pathlib import Path

from repro.service import ArtifactStore, simulate_fleet
from repro.server import DaemonClient, ServerConfig, start_daemon_thread

BENCH, INPUT, SCALE = "181.mcf", "A", 0.2


def upload(client: DaemonClient, texts) -> dict:
    status, body = client.post_profiles(texts)
    print(f"  POST /profiles -> {status}: folded={body['folded']} "
          f"duplicates={body['duplicates']} "
          f"rejected={len(body['rejected'])}")
    return body


def main() -> None:
    with tempfile.TemporaryDirectory() as work:
        profiles = Path(work) / "profiles"
        print("simulating 12 clients (batched engine) ...")
        simulate_fleet(BENCH, INPUT, runs=12, out_dir=profiles,
                       base_seed=7, epochs=3, scale=SCALE)
        texts = [path.read_text()
                 for path in sorted(profiles.glob("*.json"))]

        store = ArtifactStore(Path(work) / "store")
        config = ServerConfig(benchmark=BENCH, input_name=INPUT,
                              port=0, scale=SCALE, jobs=2,
                              gc_max_bytes=50_000_000)

        print("\nfirst daemon lifetime:")
        with start_daemon_thread(config, store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                upload(client, texts)
                upload(client, ["{not json", json.dumps({"bad": 1})])

                status, health = client.healthz()
                print(f"  GET /healthz -> {status}: "
                      f"documents={health['documents']} "
                      f"quarantined={health['quarantined']}")

                status, repack = client.repack()
                report = repack["report"]
                print(f"  POST /repack -> {status}: "
                      f"{len(report['merge']['phases'])} merged phase(s), "
                      f"{len(repack['artifacts'])} artifact(s)")

                key = repack["artifacts"][0]
                status, raw = client.artifact(key)
                payload = json.loads(raw)
                print(f"  GET /artifacts/{key[:16]}... -> {status}: "
                      f"{len(payload['packages'])} package(s), "
                      f"{len(raw)} canonical bytes")
        print("  stopped (drained + final checkpoint)")

        print("\nsecond daemon lifetime, same store:")
        with start_daemon_thread(config, store=store) as handle:
            with DaemonClient.for_daemon(handle) as client:
                status, health = client.healthz()
                print(f"  GET /healthz -> {status}: "
                      f"checkpoint={health['checkpoint']} "
                      f"documents={health['documents']}")
                body = upload(client, texts)  # replay: all duplicates
                assert body["folded"] == 0, "replayed upload must dedup"
        print("\nthe restart resumed from the checkpoint; replaying the "
              "fleet's uploads folded nothing.")


if __name__ == "__main__":
    main()
