"""Figure 8 — percent of dynamic instructions from within packages.

Expected shape (paper section 5.1): the full configuration averages
above ~75-80 %; linking visibly lifts benchmarks whose phases share
root functions/launch points.
"""

from repro.experiments import FOUR_CONFIGS, run_figure8




def test_figure8_coverage(once, emit):
    report = once(run_figure8, verbose=True)
    emit("figure8_coverage", report.render())
    assert len(report.rows) == 19

    averages = report.averages()
    full = averages[3]      # with inference, with linking
    bare = averages[0]      # without either
    assert full > 0.70, f"full-config coverage too low: {full:.1%}"
    assert full >= bare
    # Linking must help on average (paper: m88ksim/mcf/parser/twolf).
    assert averages[1] >= averages[0]
    assert averages[3] >= averages[2]
    # At least a few benchmarks must individually gain from linking.
    gainers = sum(
        1 for row in report.rows if row.coverage[3] - row.coverage[2] > 0.03
    )
    assert gainers >= 3
