"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures over the
full 19-input Table 1 matrix (set ``REPRO_SCALE`` to shrink or grow the
dynamic budgets; 1.0 = the default ~1/1000-of-paper scale).  Rendered
tables are printed and also written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit(capfd):
    """Print a rendered table (bypassing capture) and persist it.

    pytest captures at the file-descriptor level, so the fixture
    temporarily disables capture: the regenerated tables reach the
    terminal — and any ``tee`` — even for passing runs, and are also
    written under ``benchmarks/results/``.
    """

    def _emit(name: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        scale = os.environ.get("REPRO_SCALE", "1.0")
        banner = f"[REPRO_SCALE={scale}]"
        output = f"{banner}\n{rendered}\n"
        with capfd.disabled():
            print("\n" + output, flush=True)
        (RESULTS_DIR / f"{name}.txt").write_text(output)

    return _emit


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
