"""Ablation A1 — coverage vs the MAX_BLOCKS growth budget (paper: 1)."""

from repro.experiments import run_max_blocks_ablation




def test_ablation_max_blocks(once, emit):
    report = once(run_max_blocks_ablation)
    emit("ablation_maxblocks", report.render())
    assert len(report.rows) == 4
