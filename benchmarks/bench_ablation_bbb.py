"""Ablation A2 — phases detected / coverage vs BBB geometry.

Smaller tables suffer contention ("prevent the branch from being
tracked at all", section 3.1); the Table 2 geometry (512x4) should be
at least as good as the small configurations.
"""

from repro.experiments import run_bbb_ablation




def test_ablation_bbb_geometry(once, emit):
    report = once(run_bbb_ablation)
    emit("ablation_bbb", report.render())
    assert len(report.rows) == 4
    for row in report.rows:
        assert all(cell for cell in row[1:])
