"""Table 3 — code expansion from package construction.

Expected shape: average static growth near the paper's ~12 % with a
small selected fraction (~4.5 % in the paper) and a replication factor
in the vicinity of 2.6.
"""

from repro.experiments import run_table3




def test_table3_expansion(once, emit):
    report = once(run_table3, verbose=True)
    emit("table3_expansion", report.render())
    assert len(report.rows) == 19

    avg_increase = report.average_increase()
    avg_selected = report.average_selected()
    avg_replication = report.average_replication()
    assert 3.0 < avg_increase < 40.0, avg_increase
    assert 1.0 < avg_selected < 15.0, avg_selected
    assert 1.2 < avg_replication < 4.0, avg_replication
    # Growth must exceed selection (replication > 1) for every input.
    for row in report.rows:
        assert row.pct_increase >= row.pct_selected * 0.9, row
