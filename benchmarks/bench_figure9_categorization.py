"""Figure 9 — categorization of hot-spot branch behavior across phases.

Expected shape: unique branches are mostly biased; a "significant
portion of execution is seen in instructions which occur in multiple
phases"; Multi High + Multi Low are a small-but-present opportunity
(099.go's Multi High is ~3 % in the paper).
"""

from repro.experiments import run_figure9




def test_figure9_categorization(once, emit):
    report = once(run_figure9, verbose=True)
    emit("figure9_categorization", report.render())
    assert len(report.rows) == 19

    averages = report.averages()
    # Multi categories carry significant execution.
    multi = (
        averages["multi_high"]
        + averages["multi_low"]
        + averages["multi_same"]
        + averages["multi_no_bias"]
    )
    assert multi > 0.3
    # The customization opportunity exists but is a minority share.
    opportunity = averages["multi_high"] + averages["multi_low"]
    assert 0.005 < opportunity < 0.5
    # Unique branches are "notably mostly biased".
    assert averages["unique_biased"] >= averages["unique_unbiased"]
    # The detector captures the overwhelming majority of execution.
    assert averages["not_in_hot_spot"] < 0.25
