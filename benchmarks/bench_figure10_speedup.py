"""Figure 10 — speedup from package relayout and rescheduling.

Expected shape: modest speedups that correlate with the coverage
pattern across the four configurations (the paper's observation in
section 5.4); the full configuration is the best on average.
"""

from repro.experiments import run_figure10




def test_figure10_speedup(once, emit):
    report = once(run_figure10, verbose=True)
    emit("figure10_speedup", report.render())
    assert len(report.rows) == 19

    averages = report.averages()
    full = averages[3]
    assert full > 1.0, f"packing must not slow programs down: {full:.3f}"
    assert full < 2.0, f"speedup implausibly high: {full:.3f}"
    # The configuration pattern tracks coverage: both features on is at
    # least as good on average as both off.
    assert averages[3] >= averages[0] - 0.01
    # Linking adds performance on top of inference on average.
    assert averages[3] >= averages[2] - 0.005
