"""Table 1 — benchmark/input inventory with measured dynamic sizes."""

from repro.experiments import run_table1




def test_table1_workloads(once, emit):
    report = once(run_table1, verbose=True)
    emit("table1_workloads", report.render())
    assert len(report.rows) == 19
    # Dynamic sizes must ordinally track the paper's Table 1 (modulo
    # the detection floor for tiny inputs).
    by_name = {f"{r.benchmark}/{r.input_name}": r for r in report.rows}
    assert (
        by_name["164.gzip/A"].measured_instructions
        > by_name["181.mcf/A"].measured_instructions
    )
    # Small inputs may be clamped by the detector's per-phase floor, so
    # the large input is only required not to come out smaller.
    assert (
        by_name["134.perl/A"].measured_instructions
        >= 0.95 * by_name["134.perl/B"].measured_instructions
    )
