"""Ablation A3 — rank-guided package ordering vs worst/construction order.

The paper converts linking into an ordering problem solved by rank
maximization (section 3.3.4); the "best" policy must achieve at least
the total rank of the alternatives.
"""

from repro.experiments import run_ordering_ablation




def _total_rank(cell: str) -> float:
    return float(cell.split("/")[-1])


def test_ablation_ordering(once, emit):
    report = once(run_ordering_ablation)
    emit("ablation_ordering", report.render())
    assert len(report.rows) == 4
    for row in report.rows:
        best, first, worst = (_total_rank(c) for c in row[1:])
        assert best >= first - 1e-9
        assert best >= worst - 1e-9
