"""Content-addressed cache of retired-branch traces.

Re-running an *unmodified* workload is the single biggest cost in the
experiment drivers: the fault campaign replays the same baseline run
per trial, the differential oracle re-simulates the original program on
every check, and every figure/table regeneration starts from the same
profiling runs.  This cache keys a finished trace by the *content* that
determines it —

    key = H(program image bytes + block symbols,
            behavior model fingerprint,
            phase script,
            execution limits, start block, format version)

— so any change to the program's encoded instructions, the branch
behavior model (seed, default, per-phase biases, stable ids), the phase
script, or the run budget misses the cache by construction.  There is
no invalidation logic to get wrong: stale entries are simply never
addressed again.

Traces are stored in *address coordinates* (branch instruction
addresses and block start addresses from the linked
:class:`~repro.program.image.ProgramImage`), not instruction uids: uids
are process-local allocation counters, while addresses are a pure
function of the program content that the key already hashes.  On load
the addresses are mapped back onto the current process' uids.

Layout: one ``<key>.npz`` per trace under ``REPRO_TRACE_CACHE`` (or
``~/.cache/repro/traces``); ``REPRO_TRACE_CACHE=off`` disables the
cache entirely.  Writes are atomic (tmp file + rename) so concurrent
experiment workers can share one cache directory.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.engine.behavior import BehaviorModel
from repro.engine.compiled import (
    CompiledExecutor,
    TraceData,
    compiled_enabled,
    program_signature,
)
from repro.engine.executor import ExecutionLimits, ExecutionSummary, StopReason
from repro.engine.phases import PhaseScript
from repro.obs import annotate, inc, span
from repro.program.image import ProgramImage
from repro.program.program import Program

#: Bump when the trace layout or engine semantics change.  The version
#: participates in the content key (stale-format entries are never
#: addressed) *and* is embedded in every payload (an entry whose file
#: name somehow disagrees with its content — tampering, a tool writing
#: under the wrong name, a partial copy — is detected on load and
#: treated as a miss, never trusted).
_FORMAT_VERSION = 2

_ENV_DIR = "REPRO_TRACE_CACHE"

#: Values of a store-root setting that turn the store off entirely.
#: Shared with the artifact store (:mod:`repro.service.artifacts`).
DISABLED_VALUES = frozenset({"off", "0", "none", "disabled"})
_DISABLED_VALUES = DISABLED_VALUES


def atomic_write(root: str, path: str, write) -> None:
    """Write a store entry atomically (tmp file + rename).

    ``write`` receives a binary file handle.  Creates ``root`` on
    demand; on any failure the temp file is removed and the original
    entry (if any) is left untouched.  Both content-addressed stores —
    the trace cache here and the service artifact store — share this
    discipline so concurrent workers can write one directory safely.
    """
    os.makedirs(root, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=root, prefix=".tmp-", suffix=os.path.splitext(path)[1]
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# shared program images
# ---------------------------------------------------------------------------

_IMAGES: "WeakKeyDictionary[Program, Tuple[int, ProgramImage]]" = (
    WeakKeyDictionary()
)


def image_for(program: Program) -> ProgramImage:
    """Memoized linked image of a program (layout + encode is ~100ms on
    suite-sized programs; profiling, hashing, and validation share it).
    Guarded by :func:`~repro.engine.compiled.program_signature` so an
    in-place structural mutation re-links instead of serving a stale
    image."""
    signature = program_signature(program)
    try:
        cached = _IMAGES.get(program)
        if cached is not None and cached[0] == signature:
            return cached[1]
        image = ProgramImage(program)
        _IMAGES[program] = (signature, image)
        return image
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        return ProgramImage(program)


# ---------------------------------------------------------------------------
# fingerprints / keys
# ---------------------------------------------------------------------------

def behavior_fingerprint(behavior: BehaviorModel) -> bytes:
    """Everything that determines branch outcomes."""
    parts = [
        f"default={behavior.default_prob!r}",
        f"seed={behavior.seed!r}",
    ]
    for uid in sorted(behavior._stable_id):
        parts.append(f"sid:{uid}={behavior._stable_id[uid]}")
    for uid in sorted(behavior._bias):
        table = behavior._bias[uid]
        for phase in sorted(table, key=lambda p: (p is not None, p)):
            parts.append(f"bias:{uid}:{phase}={table[phase]!r}")
    return "\n".join(parts).encode()


def _limits_fingerprint(limits: ExecutionLimits) -> bytes:
    return (
        f"branches={limits.max_branches} "
        f"instructions={limits.max_instructions} "
        f"steps={limits.max_steps}"
    ).encode()


def _script_fingerprint(script: PhaseScript) -> bytes:
    return ";".join(
        f"{s.phase_id}:{s.branches}" for s in script.segments
    ).encode()


def trace_key(
    program: Program,
    behavior: BehaviorModel,
    phase_script: PhaseScript,
    limits: ExecutionLimits,
    start: Optional[Tuple[str, str]] = None,
    image: Optional[ProgramImage] = None,
) -> str:
    """Content hash addressing one deterministic run."""
    image = image or image_for(program)
    digest = hashlib.blake2b(digest_size=20)
    digest.update(f"v{_FORMAT_VERSION}".encode())
    digest.update(bytes(image.data))
    # Block boundaries matter (block_visits granularity), so hash the
    # symbol table alongside the raw instruction bytes.
    for symbol in image.symbols:
        digest.update(
            f"{symbol.function}/{symbol.label}@{symbol.address}".encode()
        )
    digest.update(image.program.entry.encode())
    digest.update(behavior_fingerprint(behavior))
    digest.update(_script_fingerprint(phase_script))
    digest.update(_limits_fingerprint(limits))
    digest.update(repr(start).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# address <-> uid coordinate change
# ---------------------------------------------------------------------------

def _block_address_maps(program: Program, image: ProgramImage):
    uid_to_addr: Dict[int, int] = {}
    addr_to_uid: Dict[int, int] = {}
    for function in program.functions.values():
        for block in function.blocks:
            address = image.block_address[(function.name, block.label)]
            uid_to_addr[block.uid] = address
            addr_to_uid[address] = block.uid
    return uid_to_addr, addr_to_uid


def _encode_trace(
    trace: TraceData, program: Program, image: ProgramImage
) -> Optional[Dict[str, np.ndarray]]:
    """Trace in address coordinates, or ``None`` if not representable
    (e.g. a branch uid that is not an original instruction)."""
    inst_addr = image.instruction_address
    try:
        branch_addresses = np.asarray(
            [inst_addr[uid] for uid in trace.uids.tolist()], dtype=np.uint64
        )
    except KeyError:
        return None
    uid_to_addr, _ = _block_address_maps(program, image)
    visit_items = list(trace.summary.block_visits.items())
    try:
        visit_addresses = np.asarray(
            [uid_to_addr[uid] for uid, _ in visit_items], dtype=np.uint64
        )
    except KeyError:
        return None
    summary = trace.summary
    return {
        "branch_addresses": branch_addresses,
        "taken": trace.taken.astype(bool),
        "visit_addresses": visit_addresses,
        "visit_counts": np.asarray(
            [count for _, count in visit_items], dtype=np.int64
        ),
        "scalars": np.asarray(
            [
                summary.instructions,
                summary.branches,
                summary.taken_branches,
                summary.calls,
                summary.steps,
            ],
            dtype=np.int64,
        ),
        "stop_reason": np.asarray([summary.stop_reason.value]),
    }


class _StampMismatch(Exception):
    """Entry payload disagrees with its file name or schema version."""


def _stamp(key: str) -> np.ndarray:
    return np.asarray([key, f"v{_FORMAT_VERSION}"])


def _stamp_matches(payload, key: str) -> bool:
    try:
        stamp = payload["stamp"]
        return str(stamp[0]) == key and str(stamp[1]) == f"v{_FORMAT_VERSION}"
    except (KeyError, IndexError):
        return False


def _decode_trace(
    payload, program: Program, image: ProgramImage
) -> Optional[TraceData]:
    """Back to uid coordinates against the *current* program."""
    addr_inst = image.address_instruction
    try:
        uids = np.asarray(
            [
                addr_inst[addr].uid
                for addr in payload["branch_addresses"].tolist()
            ],
            dtype=np.int64,
        )
        _, addr_to_uid = _block_address_maps(program, image)
        block_visits = {
            addr_to_uid[addr]: int(count)
            for addr, count in zip(
                payload["visit_addresses"].tolist(),
                payload["visit_counts"].tolist(),
            )
        }
        scalars = payload["scalars"].tolist()
        stop_reason = StopReason(str(payload["stop_reason"][0]))
    except (KeyError, ValueError):
        return None
    summary = ExecutionSummary(
        instructions=scalars[0],
        branches=scalars[1],
        taken_branches=scalars[2],
        calls=scalars[3],
        steps=scalars[4],
        stop_reason=stop_reason,
        block_visits=block_visits,
    )
    return TraceData(
        uids=uids, taken=payload["taken"].astype(bool), summary=summary
    )


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0


class TraceCache:
    """Disk + in-memory LRU cache of :class:`TraceData` by content key."""

    def __init__(self, root: Optional[str] = None, memory_entries: int = 8):
        env = os.environ.get(_ENV_DIR, "")
        if root is None:
            root = env
        self.enabled = str(root).strip().lower() not in _DISABLED_VALUES
        if not root or not self.enabled:
            root = os.path.join(
                os.path.expanduser("~"), ".cache", "repro", "traces"
            )
        self.root = root
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, Tuple[TraceData, Program]]" = (
            OrderedDict()
        )
        self.stats = CacheStats()

    # -- paths -------------------------------------------------------
    def path_of(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    # -- memory LRU --------------------------------------------------
    def _remember(self, key: str, trace: TraceData, program: Program) -> None:
        memory = self._memory
        memory[key] = (trace, program)
        memory.move_to_end(key)
        while len(memory) > self.memory_entries:
            memory.popitem(last=False)

    # -- API ---------------------------------------------------------
    def get(
        self, key: str, program: Program, image: Optional[ProgramImage] = None
    ) -> Optional[TraceData]:
        """The cached trace for ``key``, remapped onto ``program``'s
        uids, or ``None`` on a miss."""
        if not self.enabled:
            return None
        cached = self._memory.get(key)
        # The in-memory entry is uid-mapped for one specific program
        # object; a same-content different-object program must go
        # through the address remap below.
        if cached is not None and cached[1] is program:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            inc("trace_cache.hits", tier="memory")
            return cached[0]
        path = self.path_of(key)
        try:
            with np.load(path, allow_pickle=False) as payload:
                if not _stamp_matches(payload, key):
                    # Truncated-then-rewritten, stale-schema, or
                    # misnamed entry: drop it and recompute.
                    raise _StampMismatch()
                trace = _decode_trace(
                    payload, program, image or image_for(program)
                )
        except FileNotFoundError:
            self.stats.misses += 1
            inc("trace_cache.misses")
            return None
        except Exception:  # corrupt/foreign file: drop and miss
            self.stats.errors += 1
            inc("trace_cache.errors")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if trace is None:
            self.stats.errors += 1
            inc("trace_cache.errors")
            return None
        self.stats.hits += 1
        inc("trace_cache.hits", tier="disk")
        self._remember(key, trace, program)
        return trace

    def put(
        self,
        key: str,
        trace: TraceData,
        program: Program,
        image: Optional[ProgramImage] = None,
    ) -> bool:
        """Persist a trace; returns False when it is not cacheable."""
        if not self.enabled:
            return False
        payload = _encode_trace(trace, program, image or image_for(program))
        if payload is None:
            return False
        payload["stamp"] = _stamp(key)
        self._remember(key, trace, program)
        path = self.path_of(key)
        try:
            atomic_write(
                self.root,
                path,
                lambda handle: np.savez_compressed(handle, **payload),
            )
        except OSError:
            self.stats.errors += 1
            inc("trace_cache.errors")
            return False
        self.stats.puts += 1
        inc("trace_cache.puts")
        return True


_DEFAULT_CACHE: Optional[TraceCache] = None


def default_cache() -> TraceCache:
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = TraceCache()
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Re-read the environment (tests repoint ``REPRO_TRACE_CACHE``)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None


def traced_run(
    workload,
    program: Optional[Program] = None,
    cache: Optional[TraceCache] = None,
) -> TraceData:
    """The workload's full retired-branch trace, through the cache.

    Only runs of the workload's behavior/script/limits over ``program``
    (default: the workload's own program) are addressed; packed clones
    hash to their own keys because their image bytes differ.
    """
    program = program or workload.program
    cache = cache or default_cache()
    image = image_for(program)
    key = trace_key(
        program, workload.behavior, workload.phase_script, workload.limits,
        image=image,
    )
    trace = cache.get(key, program, image=image)
    if trace is not None:
        return trace
    with span("engine.traced_run", workload=workload.name) as entry:
        executor = CompiledExecutor(
            program,
            workload.behavior,
            workload.phase_script,
            limits=workload.limits,
        )
        trace = executor.run_traced()
        annotate(entry, branches=trace.summary.branches,
                 instructions=trace.summary.instructions)
    inc("engine.simulated_branches", trace.summary.branches)
    cache.put(key, trace, program, image=image)
    return trace


__all__ = [
    "CacheStats",
    "DISABLED_VALUES",
    "TraceCache",
    "atomic_write",
    "behavior_fingerprint",
    "compiled_enabled",
    "default_cache",
    "image_for",
    "reset_default_cache",
    "trace_key",
    "traced_run",
]
