"""Phase-dependent branch behaviour.

Real programs compute branch conditions from data; our synthetic
workloads substitute a :class:`BehaviorModel` that assigns each static
conditional branch a per-phase taken probability (see DESIGN.md,
"Substitutions").  Outcomes are produced by hashing
``(branch, occurrence, seed)`` through a splitmix64-style mixer, which
has two properties the experiments rely on:

* **Determinism** — the i-th execution of a given original branch
  resolves identically in every run, including runs of the *packed*
  binary where the branch was replicated into several packages (copies
  share the original's uid through ``Instruction.origin``).  Coverage
  and speedup comparisons therefore see the same dynamic control flow.
* **Independence** — outcomes behave statistically like a Bernoulli
  stream at the configured probability, so loop trip counts and bias
  categorization come out as designed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def hash_unit(branch_uid: int, occurrence: int, seed: int) -> float:
    """Deterministic uniform value in [0, 1) for one branch execution."""
    mixed = _splitmix64(branch_uid * 0x100000001B3 ^ _splitmix64(occurrence ^ seed))
    return mixed / float(1 << 64)


BiasSpec = Union[float, Dict[int, float]]


class BehaviorModel:
    """Per-branch, per-phase taken probabilities."""

    def __init__(self, default_prob: float = 0.5, seed: int = 0x5EED):
        self.default_prob = default_prob
        self.seed = seed
        # uid -> phase -> probability; the None phase is the branch default.
        self._bias: Dict[int, Dict[Optional[int], float]] = {}
        # uid -> registration-order id.  Outcomes are hashed on this
        # stable id, so a workload's behaviour depends only on its own
        # construction order, not on how many instructions other
        # workloads allocated first in the same process.
        self._stable_id: Dict[int, int] = {}

    # -- configuration ------------------------------------------------
    def set_bias(
        self, branch_uid: int, probability: float, phase: Optional[int] = None
    ) -> None:
        """Set the taken probability of a branch (optionally per phase)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability} out of range")
        if branch_uid not in self._stable_id:
            self._stable_id[branch_uid] = len(self._stable_id) + 1
        self._bias.setdefault(branch_uid, {})[phase] = probability

    def set_phase_biases(self, branch_uid: int, by_phase: Dict[int, float]) -> None:
        for phase, probability in by_phase.items():
            self.set_bias(branch_uid, probability, phase)

    def register_branches(self, branch_uids: Iterable[int]) -> None:
        """Assign stable ids to branches without configuring a bias.

        Outcomes hash on the stable id with the raw uid as fallback, and
        uids shift with process-global allocation — so any *unregistered*
        branch that executes (default-probability code that only drift or
        a mutated fleet reaches) would resolve differently depending on
        how many workloads were built first in the process.  The workload
        generator registers every conditional branch at build time so the
        model's determinism contract holds for all reachable code, not
        just biased branches.  Idempotent; existing ids never move.
        """
        for uid in branch_uids:
            if uid not in self._stable_id:
                self._stable_id[uid] = len(self._stable_id) + 1

    # -- queries ----------------------------------------------------------
    def prob(self, branch_uid: int, phase: int) -> float:
        """Taken probability of ``branch_uid`` while in ``phase``."""
        table = self._bias.get(branch_uid)
        if table is None:
            return self.default_prob
        if phase in table:
            return table[phase]
        return table.get(None, self.default_prob)

    def taken(self, branch_uid: int, occurrence: int, phase: int) -> bool:
        """Deterministic outcome of one execution of a branch."""
        key = self._stable_id.get(branch_uid, branch_uid)
        return hash_unit(key, occurrence, self.seed) < self.prob(
            branch_uid, phase
        )

    def known_branches(self) -> Dict[int, Dict[Optional[int], float]]:
        """The configured bias table (read-only view for tooling)."""
        return {uid: dict(phases) for uid, phases in self._bias.items()}

    def default_cold_branches(self) -> List[int]:
        """Branches whose only bias entry is a phase-independent 0.0.

        These are the workload generator's never-taken guards into cold
        code — the lever the drift simulator pulls: warming one routes
        real execution into blocks no profile ever saw.  Sorted by uid,
        which is construction order, so the list is structurally stable
        across seeded rebuilds of the same workload.
        """
        return sorted(
            uid for uid, table in self._bias.items()
            if set(table) == {None} and table[None] == 0.0
        )

    def stable_id(self, branch_uid: int) -> int:
        """The registration-order id outcomes are hashed on.

        Stable across seeded rebuilds of the same workload (uids shift
        with process-global allocation; registration order does not),
        which lets drift simulation key per-branch decisions on it.
        """
        return self._stable_id.get(branch_uid, branch_uid)

    def bias_snapshot(self) -> Dict[int, Dict[Optional[int], float]]:
        """A deep copy of the bias table, for later :meth:`restore_biases`."""
        return {uid: dict(phases) for uid, phases in self._bias.items()}

    def restore_biases(
        self, snapshot: Dict[int, Dict[Optional[int], float]]
    ) -> None:
        """Reset the bias table to a :meth:`bias_snapshot` copy.

        Stable ids are left untouched: branches keep the registration
        order they were created with, so outcomes after a restore match
        the original model exactly."""
        self._bias = {uid: dict(phases) for uid, phases in snapshot.items()}

    def __contains__(self, branch_uid: int) -> bool:
        return branch_uid in self._bias
