"""Runtime-compiled C kernel for the batched engine.

Numpy dispatch overhead puts a hard floor under the pure-python
lockstep kernel: at small fleet sizes (the 16-client service smoke)
each vector op costs more than the scalar work it replaces.  This
module compiles a ~150-line C port of
:meth:`repro.engine.compiled.CompiledExecutor._run_segments` with the
*system* C compiler at first use — no new dependency, no build step —
and drives it per row over the flat :class:`~repro.engine.batched.BatchTables`
arrays via ctypes.

Bit-identity holds by construction: the C walk performs the identical
sequence of integer ops (same splitmix64 mixer, same uint64 -> float64
round-to-nearest conversion and exact power-of-two scale for the unit
draw, same phase-cursor/step-guard/push ordering), and any situation
the scalar engine treats specially — branchless cycles, step-guard
crossings, stack growth beyond the preallocated cap — makes the kernel
*bail* (negative return) so the caller reruns that row through
:class:`~repro.engine.compiled.CompiledExecutor`.

Controls: ``REPRO_NATIVE=off`` disables the kernel entirely; any
compile or load failure disables it for the process (the batched
engine then uses lockstep/scalar).  Shared objects are cached under
``~/.cache/repro-native/`` (override: ``REPRO_NATIVE_CACHE``) keyed by
source hash, so the one-time compile (~100 ms) is paid once per
machine, not per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

import numpy as np

from repro.obs import inc, span

_SOURCE = r"""
#include <stdint.h>

static inline uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x ^= x >> 30; x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27; x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

/* Return 0 on completion; negative = bail, caller reruns the row in
 * the exact scalar engine (hazard block, step guard, stack/log cap). */
long run_row(
    const int32_t *seg_end, const uint8_t *seg_kind,
    const int64_t *seg_instr, const int64_t *seg_steps,
    const int64_t *seg_calls,
    const int32_t *seg_push_off, const int32_t *seg_push_cnt,
    const int32_t *seg_push_data,
    const uint8_t *f_valid, const int32_t *f_end, const uint8_t *f_kind,
    const int64_t *f_instr, const int64_t *f_steps, const int64_t *f_calls,
    const int32_t *f_push_off, const int32_t *f_push_cnt,
    const int32_t *f_push_data,
    const int32_t *u_next, const int32_t *u_push_off,
    const int32_t *u_push_cnt, const int32_t *u_push_data,
    const int32_t *branch_dense, const uint64_t *stable_fnv,
    const double *probs, int64_t nphase,
    const int64_t *script_phase, const int64_t *script_len, int64_t nsegs,
    int64_t entry, uint64_t seed,
    int64_t max_branches, int64_t step_guard,
    int64_t *occs,
    int32_t *stack, int64_t stack_cap,
    int32_t *logbuf, int64_t log_cap,
    int64_t *seg_cnt, int64_t *fused_cnt,
    int64_t *out)
{
    int64_t i = entry, j = -1;
    int64_t sp = 0, nev = 0;
    int64_t instructions = 0, branches = 0, taken_total = 0;
    int64_t calls = 0, steps = 0;
    int64_t seg_i = 0;
    int64_t cur_phase = script_phase[0];
    int64_t remaining = script_len[0];
    int64_t stop = 0;

    for (;;) {
        if (j < 0) {
            /* segment-step from block i to the next terminal */
            for (;;) {
                uint8_t k = seg_kind[i];
                if (k == 3) return -1;            /* branchless cycle */
                seg_cnt[i]++;
                instructions += seg_instr[i];
                steps += seg_steps[i];
                calls += seg_calls[i];
                if (steps > step_guard) return -2;
                int32_t pc = seg_push_cnt[i];
                if (pc) {
                    if (sp + pc > stack_cap) return -3;
                    const int32_t *pd = seg_push_data + seg_push_off[i];
                    for (int32_t q = 0; q < pc; q++) stack[sp++] = pd[q];
                }
                if (k == 0) { j = seg_end[i]; break; }
                if (k == 1) {                     /* RET */
                    if (!sp) { stop = 2; goto done; }
                    i = stack[--sp];
                    continue;
                }
                stop = 0; goto done;              /* HALT */
            }
        }
        /* branch event pending at block j */
        if (branches >= max_branches) { stop = 1; goto done; }
        int64_t phase = cur_phase;
        remaining--;
        if (remaining <= 0 && seg_i + 1 < nsegs) {
            seg_i++;
            cur_phase = script_phase[seg_i];
            remaining = script_len[seg_i];
        }
        int64_t dense = branch_dense[j];
        uint64_t occ = (uint64_t)occs[dense];
        occs[dense]++;
        uint64_t x = mix64(occ ^ seed);
        x = mix64(x ^ stable_fnv[dense]);
        /* (double)x rounds to nearest like numpy's uint64->float64
         * cast; the 2^-64 scale is exact. */
        int64_t taken =
            ((double)x / 18446744073709551616.0) < probs[dense * nphase + phase];
        branches++;
        taken_total += taken;
        if (nev >= log_cap) return -4;
        int64_t key = 2 * j + taken;
        logbuf[nev++] = (int32_t)key;
        if (f_valid[key]) {
            fused_cnt[key]++;
            instructions += f_instr[key];
            steps += f_steps[key];
            calls += f_calls[key];
            if (steps > step_guard) return -2;
            int32_t pc = f_push_cnt[key];
            if (pc) {
                if (sp + pc > stack_cap) return -3;
                const int32_t *pd = f_push_data + f_push_off[key];
                for (int32_t q = 0; q < pc; q++) stack[sp++] = pd[q];
            }
            uint8_t fk = f_kind[key];
            if (fk == 0) { j = f_end[key]; continue; }
            if (fk == 1) {                        /* RET */
                if (!sp) { stop = 2; goto done; }
                i = stack[--sp];
                j = -1;
                continue;
            }
            stop = 0; goto done;                  /* HALT */
        }
        /* unfused (walk too long / cycle inside): raw successor edge */
        {
            int32_t pc = u_push_cnt[key];
            if (pc) {
                if (sp + pc > stack_cap) return -3;
                const int32_t *pd = u_push_data + u_push_off[key];
                for (int32_t q = 0; q < pc; q++) stack[sp++] = pd[q];
            }
            i = u_next[key];
            j = -1;
        }
    }
done:
    out[0] = instructions;
    out[1] = branches;
    out[2] = taken_total;
    out[3] = calls;
    out[4] = steps;
    out[5] = stop;
    out[6] = nev;
    return 0;
}

/* Hot Spot Detector stream port (repro.hsd.detector.observe_stream):
 * the BBB as flat per-slot arrays over dense address ids.  All
 * semantics preserved exactly: LRU-among-non-candidates eviction with
 * first-tie-wins, contention misses, counter saturation freezing both
 * counters, refresh-timer stale eviction against the tick of the last
 * maintenance event, clear timer, and candidate-snapshot ordering by
 * set index then table insertion (allocation sequence).
 * Returns 0, or negative when an output buffer would overflow (the
 * caller falls back to the Python path; detector state is untouched
 * because all state lives in caller-provided scratch arrays). */
long hsd_stream(
    const int32_t *ev_id, const uint8_t *ev_taken, int64_t n,
    const int32_t *set_of,
    int32_t nsets, int32_t ways,
    int32_t counter_max, int32_t cand_thresh,
    int32_t step_c, int32_t step_n, int64_t hdc_max,
    int64_t refresh_interval, int64_t clear_interval,
    int32_t *slot_addr,
    int32_t *slot_exec, int32_t *slot_taken,
    uint8_t *slot_cand, int64_t *slot_last, int64_t *slot_seq,
    int64_t *det_at, int32_t *det_size, int64_t det_cap,
    int32_t *snap_id, int32_t *snap_exec, int32_t *snap_taken,
    int64_t snap_cap,
    int64_t *out)
{
    int64_t tick = 0, sr = 0, sc = 0, observed = 0;
    int64_t tick_maint = 0, alloc_counter = 0;
    int64_t hdc = hdc_max;
    int64_t misses = 0, refreshes = 0, clears = 0;
    int64_t ndet = 0, snap_len = 0;
    int64_t nslots = (int64_t)nsets * ways;

    for (int64_t e = 0; e < n; e++) {
        int32_t id = ev_id[e];
        int32_t tk = ev_taken[e];
        observed++; sr++; sc++; tick++;
        int64_t base = (int64_t)set_of[id] * ways;
        int64_t slot = -1;
        for (int32_t w = 0; w < ways; w++) {
            if (slot_addr[base + w] == id) { slot = base + w; break; }
        }
        if (slot < 0) {
            for (int32_t w = 0; w < ways; w++) {
                if (slot_addr[base + w] < 0) { slot = base + w; break; }
            }
            if (slot < 0) {
                for (int32_t w = 0; w < ways; w++) {
                    int64_t s = base + w;
                    if (!slot_cand[s] &&
                        (slot < 0 || slot_last[s] < slot_last[slot]))
                        slot = s;
                }
            }
            if (slot >= 0) {
                slot_addr[slot] = id;
                slot_exec[slot] = 0;
                slot_taken[slot] = 0;
                slot_cand[slot] = 0;
                slot_seq[slot] = ++alloc_counter;
            } else {
                misses++;
            }
        }
        if (slot >= 0) {
            slot_last[slot] = tick;
            if (slot_exec[slot] < counter_max) {
                slot_exec[slot]++;
                slot_taken[slot] += tk;
            }
            if (slot_exec[slot] >= cand_thresh) {
                slot_cand[slot] = 1;
                hdc -= step_c; if (hdc < 0) hdc = 0;
            } else {
                hdc += step_n; if (hdc > hdc_max) hdc = hdc_max;
            }
        } else {
            hdc += step_n; if (hdc > hdc_max) hdc = hdc_max;
        }
        if (hdc == 0) {
            if (ndet >= det_cap) return -1;
            det_at[ndet] = observed;
            int32_t count = 0;
            for (int32_t si = 0; si < nsets; si++) {
                int64_t sbase = (int64_t)si * ways;
                int64_t ord[64];
                int32_t m = 0;
                for (int32_t w = 0; w < ways; w++) {
                    int64_t s = sbase + w;
                    if (slot_addr[s] >= 0 && slot_cand[s]) ord[m++] = s;
                }
                for (int32_t a = 1; a < m; a++) {
                    int64_t key = ord[a];
                    int32_t b = a - 1;
                    while (b >= 0 && slot_seq[ord[b]] > slot_seq[key]) {
                        ord[b + 1] = ord[b];
                        b--;
                    }
                    ord[b + 1] = key;
                }
                for (int32_t a = 0; a < m; a++) {
                    if (snap_len >= snap_cap) return -2;
                    int64_t s = ord[a];
                    snap_id[snap_len] = slot_addr[s];
                    snap_exec[snap_len] = slot_exec[s];
                    snap_taken[snap_len] = slot_taken[s];
                    snap_len++;
                    count++;
                }
            }
            det_size[ndet] = count;
            ndet++;
            for (int64_t s = 0; s < nslots; s++) slot_addr[s] = -1;
            hdc = hdc_max; sr = 0; sc = 0; tick_maint = tick;
        } else {
            if (sr >= refresh_interval) {
                hdc = hdc_max; sr = 0;
                for (int64_t s = 0; s < nslots; s++)
                    if (slot_addr[s] >= 0 && slot_last[s] < tick_maint)
                        slot_addr[s] = -1;
                tick_maint = tick;
                refreshes++;
            }
            if (sc >= clear_interval) {
                for (int64_t s = 0; s < nslots; s++) slot_addr[s] = -1;
                hdc = hdc_max; sc = 0; sr = 0; tick_maint = tick;
                clears++;
            }
        }
    }
    out[0] = hdc; out[1] = sr; out[2] = sc; out[3] = tick;
    out[4] = tick_maint; out[5] = misses; out[6] = refreshes;
    out[7] = clears; out[8] = ndet; out[9] = snap_len;
    out[10] = alloc_counter;
    return 0;
}
"""

#: Preallocated per-row continuation-stack slots; deeper recursion
#: bails to the scalar engine (which grows a Python list).
_STACK_CAP = 1 << 16

_i32p = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_i64p = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_u8p = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_u64p = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
_f64p = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


class RowState:
    """Reusable per-row scratch buffers (zeroed before each row)."""

    def __init__(self, nblocks: int, ndense: int, log_cap: int):
        self.occs = np.zeros(max(ndense, 1), dtype=np.int64)
        self.stack = np.zeros(_STACK_CAP, dtype=np.int32)
        self.log = np.zeros(max(log_cap, 1), dtype=np.int32)
        self.seg_cnt = np.zeros(nblocks, dtype=np.int64)
        self.fused_cnt = np.zeros(2 * nblocks, dtype=np.int64)
        self.out = np.zeros(8, dtype=np.int64)


class NativeKernel:
    """ctypes wrapper around the compiled ``run_row`` / ``hsd_stream``."""

    def __init__(self, lib: ctypes.CDLL):
        hsd = lib.hsd_stream
        hsd.restype = ctypes.c_long
        hsd.argtypes = [
            _i32p, _u8p, ctypes.c_int64,                # events
            _i32p,                                      # set_of
            ctypes.c_int32, ctypes.c_int32,             # geometry
            ctypes.c_int32, ctypes.c_int32,             # counters
            ctypes.c_int32, ctypes.c_int32,             # hdc steps
            ctypes.c_int64,                             # hdc_max
            ctypes.c_int64, ctypes.c_int64,             # timers
            _i32p, _i32p, _i32p, _u8p, _i64p, _i64p,    # slots
            _i64p, _i32p, ctypes.c_int64,               # detections
            _i32p, _i32p, _i32p, ctypes.c_int64,        # snapshots
            _i64p,                                      # out
        ]
        self.hsd_stream = hsd
        fn = lib.run_row
        fn.restype = ctypes.c_long
        fn.argtypes = [
            _i32p, _u8p, _i64p, _i64p, _i64p,          # segments
            _i32p, _i32p, _i32p,                        # seg pushes
            _u8p, _i32p, _u8p, _i64p, _i64p, _i64p,     # fused
            _i32p, _i32p, _i32p,                        # fused pushes
            _i32p, _i32p, _i32p, _i32p,                 # unfused edges
            _i32p, _u64p,                               # dense -> fnv
            _f64p, ctypes.c_int64,                      # probs
            _i64p, _i64p, ctypes.c_int64,               # phase script
            ctypes.c_int64, ctypes.c_uint64,            # entry, seed
            ctypes.c_int64, ctypes.c_int64,             # budgets
            _i64p, _i32p, ctypes.c_int64,               # occs, stack
            _i32p, ctypes.c_int64,                      # log
            _i64p, _i64p, _i64p,                        # counts, out
        ]
        self._run = fn

    def row_state(self, tables, max_branches: int) -> RowState:
        return RowState(tables.nblocks, tables.ndense, max_branches)

    def run_row(
        self,
        tables,
        state: RowState,
        stable_fnv: np.ndarray,
        probs: np.ndarray,
        nphase: int,
        script_phase: np.ndarray,
        script_len: np.ndarray,
        seed: int,
        max_branches: int,
        step_guard: int,
    ) -> Optional[tuple]:
        """One row; ``None`` = bail (caller reruns the row exactly)."""
        state.occs.fill(0)
        state.seg_cnt.fill(0)
        state.fused_cnt.fill(0)
        t = tables
        code = self._run(
            t.seg_end, t.seg_kind, t.seg_instr, t.seg_steps, t.seg_calls,
            t.seg_push_off, t.seg_push_cnt, t.seg_push_data,
            t.f_valid, t.f_end, t.f_kind, t.f_instr, t.f_steps, t.f_calls,
            t.f_push_off, t.f_push_cnt, t.f_push_data,
            t.u_next, t.u_push_off, t.u_push_cnt, t.u_push_data,
            t.branch_dense, stable_fnv,
            np.ascontiguousarray(probs, dtype=np.float64), nphase,
            script_phase, script_len, len(script_phase),
            t.entry_index, seed,
            max_branches, step_guard,
            state.occs, state.stack, _STACK_CAP,
            state.log, len(state.log),
            state.seg_cnt, state.fused_cnt, state.out,
        )
        if code != 0:
            inc("engine.native.bails", code=int(code))
            return None
        o = state.out
        return (
            int(o[0]), int(o[1]), int(o[2]), int(o[3]), int(o[4]),
            int(o[5]), int(o[6]),
        )


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        return configured
    return os.path.join(
        os.environ.get(
            "XDG_CACHE_HOME",
            os.path.join(os.path.expanduser("~"), ".cache"),
        ),
        "repro-native",
    )


def _compile() -> Optional[ctypes.CDLL]:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"runrow-{digest}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            c_path = os.path.join(tmp, "runrow.c")
            with open(c_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_so = os.path.join(tmp, "runrow.so")
            for compiler in ("cc", "gcc", "clang"):
                try:
                    with span("engine.native.compile", compiler=compiler):
                        proc = subprocess.run(
                            [compiler, "-O2", "-fPIC", "-shared",
                             "-o", tmp_so, c_path],
                            capture_output=True,
                            timeout=60,
                        )
                except (OSError, subprocess.TimeoutExpired):
                    continue
                if proc.returncode == 0:
                    # Atomic publish: concurrent processes race benignly.
                    os.replace(tmp_so, so_path)
                    break
            else:
                return None
    try:
        return ctypes.CDLL(so_path)
    except OSError:
        return None


_KERNEL: Optional[NativeKernel] = None
_FAILED = False


def native_enabled() -> bool:
    """``REPRO_NATIVE`` kill switch (``off``/``0``/``no`` disable)."""
    return os.environ.get("REPRO_NATIVE", "auto").strip().lower() not in (
        "off", "0", "no", "false",
    )


def native_kernel() -> Optional[NativeKernel]:
    """The process-wide compiled kernel, or ``None`` when unavailable
    (no compiler, compile failure, or ``REPRO_NATIVE=off``)."""
    global _KERNEL, _FAILED
    if not native_enabled():
        return None
    if _KERNEL is not None:
        return _KERNEL
    if _FAILED:
        return None
    lib = _compile()
    if lib is None:
        _FAILED = True
        return None
    _KERNEL = NativeKernel(lib)
    return _KERNEL


__all__ = ["NativeKernel", "RowState", "native_enabled", "native_kernel"]
