"""Execution engines: behavioral block executor and semantic interpreter."""

from .behavior import BehaviorModel, hash_unit
from .executor import (
    BlockExecutor,
    BlockInfo,
    ExecutionLimits,
    ExecutionSummary,
    ExecutorError,
    StopReason,
)
from .interpreter import Interpreter, InterpreterError, InterpreterResult, MachineState
from .listeners import BranchTrace, HSDListener, PhaseBranchStats
from .phases import PhaseCursor, PhaseScript, PhaseSegment, uniform_script

__all__ = [
    "BehaviorModel",
    "BlockExecutor",
    "BlockInfo",
    "BranchTrace",
    "ExecutionLimits",
    "ExecutionSummary",
    "ExecutorError",
    "HSDListener",
    "Interpreter",
    "InterpreterError",
    "InterpreterResult",
    "MachineState",
    "PhaseBranchStats",
    "PhaseCursor",
    "PhaseScript",
    "PhaseSegment",
    "StopReason",
    "hash_unit",
    "uniform_script",
]
