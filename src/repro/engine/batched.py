"""Batched execution: N client runs of one binary advanced in lockstep.

Fleet features (service ingest, the drift controller's per-epoch
probes, the bench suite) simulate clients by re-running the compiled
engine once per client.  All of those runs share one
:class:`~repro.engine.compiled.CompiledProgram`; only the per-row
behavior seed (and, under drift, the per-row bias table) differs.
This module batches them:

* :class:`BatchTables` lowers the compiled program's lazily-built
  segment/fused tables into flat numpy arrays shared by every row —
  built once per program, cached alongside the compiled tables;
* :class:`BatchedExecutor` advances N rows through three interchangeable
  kernels, all **bit-identical** to N sequential
  :class:`~repro.engine.compiled.CompiledExecutor` runs:

  - ``lockstep`` — pure numpy: one vector op advances every active row
    one branch retirement (per-row splitmix64 state via
    :func:`~repro.engine.compiled._vec_splitmix64` arithmetic, per-row
    continuation stacks, early-halting rows masked out and parked);
  - ``native`` — the same walk compiled to a tiny C kernel at runtime
    with the system C compiler (see :mod:`repro.engine.native`); used
    automatically when a compiler is available, because numpy dispatch
    overhead puts a floor under lockstep throughput at small N;
  - ``scalar`` — one :class:`CompiledExecutor` per row: the exactness
    fallback for hazards (instruction-limited budgets, step-guard
    crossings, branchless cycles, stack overflow) and for N=1.

  Kernel choice: ``REPRO_BATCH_KERNEL`` = ``auto`` (default) | ``native``
  | ``lockstep`` | ``scalar``.

Equivalence is contractual, exactly as for the compiled engine:
identical :class:`~repro.engine.executor.ExecutionSummary` fields and
identical ``(branch_uid, taken, phase)`` event streams per row, for
divergent per-row behavior seeds over one binary
(``tests/test_batched_engine.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.engine.behavior import BehaviorModel
from repro.engine.compiled import (
    CompiledExecutor,
    CompiledProgram,
    OutcomeTable,
    TraceData,
    _build_fused,
    _build_segment,
    _FUSE_PAD,
    compile_program,
    phases_for,
    share_outcome_table,
)
from repro.engine.executor import (
    KIND_BRANCH,
    KIND_HALT,
    KIND_RET,
    ExecutionLimits,
    ExecutionSummary,
    StopReason,
)
from repro.engine.phases import PhaseScript
from repro.obs import annotate, inc, span
from repro.program.program import Program

_MASK64 = (1 << 64) - 1
_FNV = 0x100000001B3
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

#: seg_kind / f_kind encoding shared with the native kernel.
_K_BRANCH, _K_RET, _K_HALT, _K_HAZARD = 0, 1, 2, 3

_STOP = (StopReason.HALTED, StopReason.BRANCH_LIMIT, StopReason.STACK_UNDERFLOW)


def batch_kernel() -> str:
    """``REPRO_BATCH_KERNEL``: ``auto`` (default), ``native``,
    ``lockstep``, or ``scalar``."""
    return os.environ.get("REPRO_BATCH_KERNEL", "auto").strip().lower()


def fleet_batching_enabled() -> bool:
    """Whether fleet simulation advances clients through the batched
    engine (the default).  ``REPRO_ENGINE=compiled`` or ``reference``
    opts back into the sequential per-client path; ``batched`` (also
    accepted by the ``--engine`` flag) requests it explicitly."""
    engine = os.environ.get("REPRO_ENGINE")
    if engine is None:
        return True
    return engine.strip().lower() == "batched"


def row_behavior(base: BehaviorModel, seed: int) -> BehaviorModel:
    """A view of ``base`` with its own outcome seed.

    Shares the bias and stable-id tables by reference (rows of a fleet
    run one binary; only the seed diverges), so per-row probability
    lookups cost nothing extra and an
    :class:`~repro.engine.compiled.OutcomeTable` keyed on the view
    never serves units hashed under another row's seed.  Views of the
    same ``(base, seed)`` share one outcome table — unit draws depend
    only on (stable key, seed) — so repeat rows (the controller's
    per-epoch fleet probe replays the same client seeds every epoch)
    reuse grown unit tables instead of rehashing them.
    """
    view = BehaviorModel.__new__(BehaviorModel)
    view.default_prob = base.default_prob
    view.seed = seed
    view._bias = base._bias
    view._stable_id = base._stable_id
    try:
        by_seed = _ROW_TABLES.get(base)
        if by_seed is None:
            by_seed = {}
            _ROW_TABLES[base] = by_seed
        table = by_seed.get(seed)
        if table is None:
            table = OutcomeTable(view)
            by_seed[seed] = table
        share_outcome_table(view, table)
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        pass
    return view


_ROW_TABLES: "WeakKeyDictionary[BehaviorModel, Dict[int, OutcomeTable]]" = (
    WeakKeyDictionary()
)


def _flatten(tuples: Sequence[Tuple[int, ...]]):
    """Ragged tuple-per-entry -> (offsets, counts, flat data) arrays."""
    offsets = np.zeros(len(tuples), dtype=np.int32)
    counts = np.zeros(len(tuples), dtype=np.int32)
    data: List[int] = []
    for k, tup in enumerate(tuples):
        offsets[k] = len(data)
        counts[k] = len(tup)
        data.extend(tup)
    return offsets, counts, np.asarray(data, dtype=np.int32)


class BatchTables:
    """The compiled program's segment/fused tables as flat arrays.

    Everything the lockstep and native kernels index per event, built
    once per :class:`CompiledProgram` (all segments and fused
    transitions force-built up front) and shared by every batch.
    Blocks whose segment walk is a branchless cycle are marked
    ``_K_HAZARD``; rows that reach one bail out to the scalar kernel,
    mirroring the compiled engine's own fallback.
    """

    def __init__(self, cp: CompiledProgram):
        n = len(cp.kind)
        self.nblocks = n
        for b in range(n):
            if cp.seg_end[b] is None:
                _build_segment(cp, b)
        for j in range(n):
            if cp.kind[j] == KIND_BRANCH:
                for outcome in (0, 1):
                    if cp.fused[2 * j + outcome] is None:
                        _build_fused(cp, 2 * j + outcome)

        self.seg_end = np.asarray(
            [-1 if e is None else e for e in cp.seg_end], dtype=np.int32
        )
        kind_of = {KIND_BRANCH: _K_BRANCH, KIND_RET: _K_RET, KIND_HALT: _K_HALT}
        self.seg_kind = np.asarray(
            [
                _K_HAZARD if cp.seg_end[b] is None else kind_of[cp.seg_kind[b]]
                for b in range(n)
            ],
            dtype=np.uint8,
        )
        self.seg_instr = np.asarray(cp.seg_instr, dtype=np.int64)
        self.seg_steps = np.asarray(cp.seg_steps, dtype=np.int64)
        self.seg_calls = np.asarray(cp.seg_calls, dtype=np.int64)
        self.seg_push_off, self.seg_push_cnt, self.seg_push_data = _flatten(
            cp.seg_pushes
        )

        nk = 2 * n
        self.f_valid = np.zeros(nk, dtype=np.uint8)
        self.f_end = np.full(nk, -1, dtype=np.int32)
        self.f_kind = np.zeros(nk, dtype=np.uint8)
        self.f_instr = np.zeros(nk, dtype=np.int64)
        self.f_steps = np.zeros(nk, dtype=np.int64)
        self.f_calls = np.zeros(nk, dtype=np.int64)
        f_pushes: List[Tuple[int, ...]] = [()] * nk
        #: Per-key unique visited blocks + per-walk counts, for
        #: block_visits reconstruction (mirrors the scalar engine).
        self.fb_blocks: List[Optional[np.ndarray]] = [None] * nk
        self.fb_counts: List[Optional[np.ndarray]] = [None] * nk
        #: Per-key successor when the key is unfused: the branch's raw
        #: taken/fall edge, continuation pushes included.
        self.u_next = np.full(nk, -1, dtype=np.int32)
        u_pushes: List[Tuple[int, ...]] = [()] * nk
        for j in range(n):
            if cp.kind[j] != KIND_BRANCH:
                continue
            for outcome in (0, 1):
                key = 2 * j + outcome
                if outcome:
                    self.u_next[key] = cp.target[j]
                    u_pushes[key] = cp.conts[j]
                else:
                    self.u_next[key] = cp.fall[j]
                f = cp.fused[key]
                if f is None or f is False:
                    continue
                self.f_valid[key] = 1
                self.f_kind[key] = kind_of[f[6]]
                self.f_end[key] = f[7]
                self.f_instr[key] = f[2]
                self.f_steps[key] = f[3]
                self.f_calls[key] = f[4]
                f_pushes[key] = f[5]
                self.fb_blocks[key] = f[0]
                self.fb_counts[key] = f[1]
        self.f_push_off, self.f_push_cnt, self.f_push_data = _flatten(f_pushes)
        self.u_push_off, self.u_push_cnt, self.u_push_data = _flatten(u_pushes)

        self.branch_dense = np.asarray(cp.branch_dense, dtype=np.int32)
        self.ndense = len(cp.branch_uids)
        self.branch_uids = np.asarray(cp.branch_uids, dtype=np.int64)
        #: branch origin uid per *block* (for log -> event stream).
        self.block_buid = np.asarray(
            [
                cp.branch_uids[cp.branch_dense[b]]
                if cp.branch_dense[b] >= 0
                else -1
                for b in range(n)
            ],
            dtype=np.int64,
        )
        self.uid = cp.uid
        self.seg_blocks = cp.seg_blocks
        self.entry_index = cp.entry_index


_TABLES: "WeakKeyDictionary[CompiledProgram, BatchTables]" = WeakKeyDictionary()


def batch_tables_for(cp: CompiledProgram) -> BatchTables:
    tables = _TABLES.get(cp)
    if tables is None:
        tables = BatchTables(cp)
        _TABLES[cp] = tables
    return tables


def stable_fnv_for(behavior: BehaviorModel, tables: BatchTables) -> np.ndarray:
    """Per-dense-branch ``stable_id * FNV`` (the outer hash key)."""
    stable = behavior._stable_id
    return np.asarray(
        [
            (stable.get(int(buid), int(buid)) * _FNV) & _MASK64
            for buid in tables.branch_uids.tolist()
        ],
        dtype=np.uint64,
    )


def prob_matrix(
    behavior: BehaviorModel, tables: BatchTables, phase_ids: Sequence[int]
) -> np.ndarray:
    """``[ndense, nphase]`` taken probabilities (phase ids dense from 0,
    exactly like :meth:`OutcomeTable.probs`)."""
    top = max(phase_ids) if phase_ids else 0
    prob = behavior.prob
    return np.asarray(
        [
            [prob(int(buid), phase) for phase in range(top + 1)]
            for buid in tables.branch_uids.tolist()
        ],
        dtype=np.float64,
    )


@dataclass
class BatchRun:
    """One completed batch: per-row traces + which kernel ran them."""

    traces: List[TraceData]
    kernel: str
    #: Rows that bailed to the scalar kernel (hazards), by index.
    scalar_rows: List[int]

    @property
    def summaries(self) -> List[ExecutionSummary]:
        return [trace.summary for trace in self.traces]


class BatchedExecutor:
    """Advance N client runs of one program in lockstep.

    ``seeds`` gives each row its behavior seed; ``row_probs`` optionally
    overrides the per-row probability matrix (shape ``[ndense, nphase]``,
    see :func:`prob_matrix`) for fleets whose rows drifted apart.  The
    phase script and limits are shared — that is what makes lockstep
    sound: every active row retires its ``t``-th branch on iteration
    ``t``, so the phase id is a scalar per iteration and per-row phase
    cursors only diverge when a row halts early (it parks; its cursor
    freezes).
    """

    def __init__(
        self,
        program: Program,
        behavior: BehaviorModel,
        phase_script: PhaseScript,
        seeds: Sequence[int],
        limits: Optional[ExecutionLimits] = None,
        row_probs: Optional[Sequence[Optional[np.ndarray]]] = None,
    ):
        self.program = program
        self.behavior = behavior
        self.phase_script = phase_script
        self.seeds = [int(s) for s in seeds]
        self.limits = limits or ExecutionLimits()
        self.compiled = compile_program(program)
        self.tables = batch_tables_for(self.compiled)
        self.row_probs = list(row_probs) if row_probs is not None else None
        if self.row_probs is not None and len(self.row_probs) != len(self.seeds):
            raise ValueError("row_probs must align with seeds")

    # -- public API ---------------------------------------------------
    def run_traced(self) -> BatchRun:
        """Run every row; bit-identical per-row traces + summaries."""
        n = len(self.seeds)
        kernel = self._pick_kernel(n)
        with span("engine.batched.run", rows=n, kernel=kernel) as entry:
            inc("engine.batched.rows", n, kernel=kernel)
            if kernel == "scalar":
                traces = [self._scalar_row(i) for i in range(n)]
                run = BatchRun(traces=traces, kernel=kernel,
                               scalar_rows=list(range(n)))
            elif kernel == "native":
                run = self._run_native()
            else:
                run = self._run_lockstep()
            steps = sum(t.summary.steps for t in run.traces)
            inc("engine.batched.steps", steps, kernel=run.kernel)
            inc(
                "engine.batched.retired_rows",
                n - len(run.scalar_rows),
                kernel=run.kernel,
            )
            annotate(entry, steps=steps, scalar_rows=len(run.scalar_rows))
        return run

    # -- kernel selection ---------------------------------------------
    def _pick_kernel(self, n: int) -> str:
        choice = batch_kernel()
        if choice not in ("auto", "native", "lockstep", "scalar"):
            raise ValueError(f"unknown REPRO_BATCH_KERNEL {choice!r}")
        if choice == "scalar" or n <= 1:
            return "scalar"
        # The vector kernels share limits across rows and pre-size the
        # event log from max_branches; instruction-limited or unbounded
        # budgets take the compiled engine's own exact paths per row.
        if (
            self.limits.max_instructions is not None
            or self.limits.max_branches is None
            or self.limits.max_branches > (1 << 26)
        ):
            return "scalar"
        if choice in ("auto", "native"):
            from repro.engine.native import native_kernel

            if native_kernel() is not None:
                return "native"
            if choice == "native":
                raise RuntimeError(
                    "REPRO_BATCH_KERNEL=native but no working C compiler; "
                    "unset it or use lockstep/scalar"
                )
        # Lockstep's event log is [max_branches, N]; keep it bounded.
        if self.limits.max_branches * n > (1 << 24):
            return "scalar"
        return "lockstep"

    # -- shared row plumbing ------------------------------------------
    def _phase_arrays(self):
        segments = self.phase_script.segments
        sp = np.asarray([s.phase_id for s in segments], dtype=np.int64)
        sl = np.asarray([s.branches for s in segments], dtype=np.int64)
        return sp, sl

    def _row_prob(self, i: int, shared: np.ndarray) -> np.ndarray:
        if self.row_probs is not None and self.row_probs[i] is not None:
            return np.ascontiguousarray(self.row_probs[i], dtype=np.float64)
        return shared

    def _scalar_row(self, i: int) -> TraceData:
        """Exact per-row fallback: a sequential compiled run."""
        executor = CompiledExecutor(
            self.program,
            row_behavior(self.behavior, self.seeds[i]),
            self.phase_script,
            limits=self.limits,
        )
        if self.row_probs is not None and self.row_probs[i] is not None:
            # Drifted rows carry their own probabilities; the behavior
            # view reflects them only if the caller captured the bias
            # table at the same time.  simulate_fleet does (it restores
            # biases between rows), so a scalar rerun re-reads the
            # shared bias dict -- which may have moved on.  Rebind the
            # outcome table's prob source to the captured matrix.
            matrix = self._row_prob(i, None)
            tables = self.tables
            uid_probs = {
                int(buid): matrix[d].tolist()
                for d, buid in enumerate(tables.branch_uids.tolist())
            }
            outcomes = executor.outcomes

            class _Pinned:
                def units(self, uid, need=512):
                    return outcomes.units(uid, need)

                def grow(self, uid, need):
                    return outcomes.grow(uid, need)

                def probs(self, uid, phase_ids):
                    if uid in uid_probs:
                        return uid_probs[uid]
                    return outcomes.probs(uid, phase_ids)

            executor.outcomes = _Pinned()
        executor.run(collect_trace=True)
        return executor.last_trace

    def _summary_from_counts(
        self,
        instr: int,
        branches: int,
        taken: int,
        calls: int,
        steps: int,
        stop: int,
        seg_cnt: np.ndarray,
        fused_cnt_keys: np.ndarray,
        fused_cnt_vals: np.ndarray,
    ) -> ExecutionSummary:
        tables = self.tables
        visit_counts = np.zeros(tables.nblocks, dtype=np.int64)
        for b in np.nonzero(seg_cnt)[0].tolist():
            visit_counts[tables.seg_blocks[b]] += int(seg_cnt[b])
        for key, count in zip(fused_cnt_keys.tolist(), fused_cnt_vals.tolist()):
            visit_counts[tables.fb_blocks[key]] += (
                tables.fb_counts[key] * int(count)
            )
        uid = tables.uid
        return ExecutionSummary(
            instructions=int(instr),
            branches=int(branches),
            taken_branches=int(taken),
            calls=int(calls),
            steps=int(steps),
            stop_reason=_STOP[int(stop)],
            block_visits={
                uid[j]: count
                for j, count in enumerate(visit_counts.tolist())
                if count
            },
        )

    def _trace_from_log(self, log_row: np.ndarray, summary) -> TraceData:
        tables = self.tables
        return TraceData(
            uids=tables.block_buid[log_row >> 1],
            taken=(log_row & 1).astype(bool),
            summary=summary,
        )

    # -- native kernel ------------------------------------------------
    def _run_native(self) -> BatchRun:
        from repro.engine.native import native_kernel

        kernel = native_kernel()
        tables = self.tables
        sp, sl = self._phase_arrays()
        shared_probs = prob_matrix(
            self.behavior, tables, sp.tolist()
        )
        stable_fnv = stable_fnv_for(self.behavior, tables)
        nphase = shared_probs.shape[1] if shared_probs.size else 1
        max_branches = self.limits.max_branches
        step_guard = (
            self.limits.max_steps - 4 * tables.nblocks - _FUSE_PAD
        )
        traces: List[Optional[TraceData]] = [None] * len(self.seeds)
        scalar_rows: List[int] = []
        state = kernel.row_state(tables, max_branches)
        for i, seed in enumerate(self.seeds):
            probs = self._row_prob(i, shared_probs)
            result = kernel.run_row(
                tables,
                state,
                stable_fnv,
                probs,
                nphase,
                sp,
                sl,
                seed & _MASK64,
                max_branches,
                step_guard,
            )
            if result is None:
                scalar_rows.append(i)
                traces[i] = self._scalar_row(i)
                continue
            instr, branches, taken, calls, steps, stop, nev = result
            log_row = state.log[:nev].copy()
            fused_keys = np.nonzero(state.fused_cnt)[0]
            summary = self._summary_from_counts(
                instr, branches, taken, calls, steps, stop,
                state.seg_cnt, fused_keys, state.fused_cnt[fused_keys],
            )
            traces[i] = self._trace_from_log(log_row, summary)
        return BatchRun(traces=traces, kernel="native",
                        scalar_rows=scalar_rows)

    # -- lockstep kernel ----------------------------------------------
    def _run_lockstep(self) -> BatchRun:
        tables = self.tables
        n = len(self.seeds)
        nblocks = tables.nblocks
        ndense = max(tables.ndense, 1)
        max_branches = int(self.limits.max_branches)
        step_guard = self.limits.max_steps - 4 * nblocks - _FUSE_PAD

        sp, sl = self._phase_arrays()
        phase_of_event = phases_for(self.phase_script, max_branches)
        shared_probs = prob_matrix(self.behavior, tables, sp.tolist())
        nphase = shared_probs.shape[1] if shared_probs.size else 1
        # [N, ndense, nphase]; rows share storage unless drifted.
        if self.row_probs is None:
            prob_cube = np.broadcast_to(
                shared_probs, (n,) + shared_probs.shape
            )
        else:
            prob_cube = np.stack(
                [self._row_prob(i, shared_probs) for i in range(n)]
            )
        stable_fnv = stable_fnv_for(self.behavior, tables)
        seeds = np.asarray(
            [s & _MASK64 for s in self.seeds], dtype=np.uint64
        )

        cur = np.full(n, -1, dtype=np.int64)
        occ = np.zeros((n, ndense), dtype=np.uint64)
        instr = np.zeros(n, dtype=np.int64)
        steps = np.zeros(n, dtype=np.int64)
        calls = np.zeros(n, dtype=np.int64)
        taken_tot = np.zeros(n, dtype=np.int64)
        nev = np.zeros(n, dtype=np.int64)
        stop = np.zeros(n, dtype=np.int64)
        seg_cnt = np.zeros((n, nblocks), dtype=np.int64)
        stack_cap = 64
        stack = np.zeros((n, stack_cap), dtype=np.int32)
        sp_depth = np.zeros(n, dtype=np.int64)
        log = np.zeros((max_branches, n), dtype=np.int32)
        hazard = np.zeros(n, dtype=bool)
        parked = np.zeros(n, dtype=bool)

        def _park(rows: np.ndarray, reason: int) -> None:
            parked[rows] = True
            stop[rows] = reason

        def _grow_stack() -> None:
            nonlocal stack, stack_cap
            stack_cap *= 2
            bigger = np.zeros((n, stack_cap), dtype=np.int32)
            bigger[:, : stack.shape[1]] = stack
            stack = bigger

        def _push_from(rows, off, cnt, data) -> None:
            """Vectorized continuation pushes (off/cnt per row); the
            single-push case (CALL chains) is the fast path, multi-push
            (JUMP continuations) loops over its few rows."""
            if not rows.size:
                return
            while int(np.max(sp_depth[rows] + cnt)) > stack_cap:
                _grow_stack()
            single = cnt == 1
            ones = rows[single]
            if ones.size:
                stack[ones, sp_depth[ones]] = data[off[single]]
                sp_depth[ones] += 1
            rest = np.nonzero(~single)[0]
            for k in rest.tolist():  # multi-push: rare, tiny
                r = int(rows[k])
                o, c = int(off[k]), int(cnt[k])
                stack[r, sp_depth[r]: sp_depth[r] + c] = data[o: o + c]
                sp_depth[r] += c

        def _advance_segments(rows: np.ndarray, ivec: np.ndarray) -> None:
            """Step rows through segments until each reaches a pending
            branch (``cur`` set), parks, or flags a hazard."""
            while rows.size:
                kind = tables.seg_kind[ivec]
                bad = kind == _K_HAZARD
                if bad.any():
                    hazard[rows[bad]] = True
                    rows, ivec, kind = rows[~bad], ivec[~bad], kind[~bad]
                    if not rows.size:
                        return
                seg_cnt[rows, ivec] += 1
                instr[rows] += tables.seg_instr[ivec]
                steps[rows] += tables.seg_steps[ivec]
                calls[rows] += tables.seg_calls[ivec]
                over = steps[rows] > step_guard
                if over.any():
                    hazard[rows[over]] = True
                    rows, ivec, kind = rows[~over], ivec[~over], kind[~over]
                    if not rows.size:
                        return
                cnt = tables.seg_push_cnt[ivec]
                pushing = cnt > 0
                if pushing.any():
                    _push_from(
                        rows[pushing],
                        tables.seg_push_off[ivec[pushing]],
                        cnt[pushing],
                        tables.seg_push_data,
                    )
                at_branch = kind == _K_BRANCH
                if at_branch.any():
                    cur[rows[at_branch]] = tables.seg_end[ivec[at_branch]]
                halted = kind == _K_HALT
                if halted.any():
                    _park(rows[halted], 0)
                returning = kind == _K_RET
                rows, ivec = rows[returning], ivec[returning]
                if not rows.size:
                    return
                under = sp_depth[rows] == 0
                if under.any():
                    _park(rows[under], 2)
                    rows = rows[~under]
                    if not rows.size:
                        return
                sp_depth[rows] -= 1
                ivec = stack[rows, sp_depth[rows]].astype(np.int64)

        all_rows = np.arange(n, dtype=np.int64)
        _advance_segments(
            all_rows, np.full(n, tables.entry_index, dtype=np.int64)
        )

        t = 0
        while True:
            act = np.nonzero(~(parked | hazard))[0]
            if not act.size:
                break
            if t >= max_branches:
                _park(act, 1)
                break
            phase = int(phase_of_event[t])
            j = cur[act]
            dense = tables.branch_dense[j].astype(np.int64)
            o = occ[act, dense]
            occ[act, dense] = o + np.uint64(1)
            x = o ^ seeds[act]
            x = x + _GOLDEN
            x = x ^ (x >> np.uint64(30))
            x = x * _MIX1
            x = x ^ (x >> np.uint64(27))
            x = x * _MIX2
            x = x ^ (x >> np.uint64(31))
            x = x ^ stable_fnv[dense]
            x = x + _GOLDEN
            x = x ^ (x >> np.uint64(30))
            x = x * _MIX1
            x = x ^ (x >> np.uint64(27))
            x = x * _MIX2
            x = x ^ (x >> np.uint64(31))
            unit = x / 2.0**64
            taken = unit < prob_cube[act, dense, phase]
            key = 2 * j + taken
            log[t, act] = key
            taken_tot[act] += taken
            nev[act] = t + 1

            valid = tables.f_valid[key] == 1
            vrows, vkey = act[valid], key[valid]
            if vrows.size:
                instr[vrows] += tables.f_instr[vkey]
                steps[vrows] += tables.f_steps[vkey]
                calls[vrows] += tables.f_calls[vkey]
                over = steps[vrows] > step_guard
                if over.any():
                    hazard[vrows[over]] = True
                    vrows, vkey = vrows[~over], vkey[~over]
                cnt = tables.f_push_cnt[vkey]
                pushing = cnt > 0
                if pushing.any():
                    _push_from(
                        vrows[pushing],
                        tables.f_push_off[vkey[pushing]],
                        cnt[pushing],
                        tables.f_push_data,
                    )
                fkind = tables.f_kind[vkey]
                ends = fkind == _K_BRANCH
                if ends.any():
                    cur[vrows[ends]] = tables.f_end[vkey[ends]]
                halted = fkind == _K_HALT
                if halted.any():
                    _park(vrows[halted], 0)
                returning = np.nonzero(fkind == _K_RET)[0]
                if returning.size:
                    rrows = vrows[returning]
                    under = sp_depth[rrows] == 0
                    if under.any():
                        _park(rrows[under], 2)
                        rrows = rrows[~under]
                    if rrows.size:
                        sp_depth[rrows] -= 1
                        _advance_segments(
                            rrows,
                            stack[rrows, sp_depth[rrows]].astype(np.int64),
                        )
            urows, ukey = act[~valid], key[~valid]
            if urows.size:
                cnt = tables.u_push_cnt[ukey]
                pushing = cnt > 0
                if pushing.any():
                    _push_from(
                        urows[pushing],
                        tables.u_push_off[ukey[pushing]],
                        cnt[pushing],
                        tables.u_push_data,
                    )
                _advance_segments(
                    urows, tables.u_next[ukey].astype(np.int64)
                )
            t += 1

        traces: List[Optional[TraceData]] = [None] * n
        scalar_rows: List[int] = []
        branches_of = nev  # rows retire one event per log entry
        for i in range(n):
            if hazard[i]:
                scalar_rows.append(i)
                traces[i] = self._scalar_row(i)
                continue
            log_row = log[: int(nev[i]), i].copy()
            key_hist = np.bincount(
                log_row, minlength=2 * nblocks
            ).astype(np.int64)
            key_hist[tables.f_valid == 0] = 0
            fused_keys = np.nonzero(key_hist)[0]
            summary = self._summary_from_counts(
                instr[i], branches_of[i], taken_tot[i], calls[i],
                steps[i], stop[i], seg_cnt[i],
                fused_keys, key_hist[fused_keys],
            )
            traces[i] = self._trace_from_log(log_row, summary)
        return BatchRun(traces=traces, kernel="lockstep",
                        scalar_rows=scalar_rows)


__all__ = [
    "BatchRun",
    "BatchTables",
    "BatchedExecutor",
    "batch_kernel",
    "batch_tables_for",
    "prob_matrix",
    "row_behavior",
    "stable_fnv_for",
]
