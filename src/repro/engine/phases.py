"""Phase scripts: the ground-truth phase structure of a workload.

The paper's workloads have *natural* phases (e.g. perl switching
between string and numeric command processing).  Our synthetic
workloads make that structure explicit: a :class:`PhaseScript` is a
sequence of segments, each naming a phase id and a duration measured in
retired conditional branches.  The behavioral execution engine asks the
script which phase is current to pick per-branch biases; the Hot Spot
Detector never sees the script — it must *rediscover* the phases from
the branch stream, which is exactly the experiment.

Durations are in conditional-branch retirements (not instructions)
because the conditional-branch stream is identical between the original
and the packed binary, keeping the two coverage/timing runs aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class PhaseSegment:
    """``branches`` consecutive branch retirements in phase ``phase_id``."""

    phase_id: int
    branches: int

    def __post_init__(self) -> None:
        if self.branches <= 0:
            raise ValueError("segment length must be positive")
        if self.phase_id < 0:
            raise ValueError("phase ids are non-negative")


class PhaseScript:
    """An immutable schedule of phase segments."""

    def __init__(self, segments: Sequence[PhaseSegment]):
        if not segments:
            raise ValueError("a phase script needs at least one segment")
        self.segments: Tuple[PhaseSegment, ...] = tuple(segments)
        boundaries: List[int] = []
        total = 0
        for segment in self.segments:
            total += segment.branches
            boundaries.append(total)
        self._boundaries = boundaries
        self.total_branches = total

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, int]]) -> "PhaseScript":
        """Build from ``(phase_id, branches)`` pairs."""
        return cls([PhaseSegment(pid, n) for pid, n in pairs])

    # -- queries -----------------------------------------------------
    def phase_ids(self) -> List[int]:
        """Distinct phase ids in first-appearance order."""
        seen: List[int] = []
        for segment in self.segments:
            if segment.phase_id not in seen:
                seen.append(segment.phase_id)
        return seen

    def phase_at(self, branch_index: int) -> int:
        """Phase of the ``branch_index``-th (0-based) branch retirement.

        Indices beyond the script stay in the final phase.
        """
        if branch_index < 0:
            raise ValueError("branch_index must be non-negative")
        import bisect

        pos = bisect.bisect_right(self._boundaries, branch_index)
        if pos >= len(self.segments):
            return self.segments[-1].phase_id
        return self.segments[pos].phase_id

    def transitions(self) -> List[int]:
        """Branch indices at which the phase changes."""
        result = []
        for i in range(len(self.segments) - 1):
            if self.segments[i].phase_id != self.segments[i + 1].phase_id:
                result.append(self._boundaries[i])
        return result

    def cursor(self) -> "PhaseCursor":
        return PhaseCursor(self)

    def __iter__(self) -> Iterator[PhaseSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)


class PhaseCursor:
    """O(1) sequential reader of a phase script (the executor's view)."""

    def __init__(self, script: PhaseScript):
        self._script = script
        self._segment_index = 0
        self._remaining = script.segments[0].branches
        self.branches_consumed = 0

    @property
    def current_phase(self) -> int:
        return self._script.segments[self._segment_index].phase_id

    def advance(self) -> int:
        """Consume one branch retirement; returns the phase it was in."""
        phase = self.current_phase
        self.branches_consumed += 1
        self._remaining -= 1
        if self._remaining <= 0 and self._segment_index + 1 < len(self._script.segments):
            self._segment_index += 1
            self._remaining = self._script.segments[self._segment_index].branches
        return phase


def uniform_script(phase_ids: Sequence[int], branches_per_phase: int) -> PhaseScript:
    """Equal-length segment per phase id, in order."""
    return PhaseScript.from_pairs([(pid, branches_per_phase) for pid in phase_ids])
