"""Semantic interpreter for the synthetic ISA.

The behavioral :class:`~repro.engine.executor.BlockExecutor` drives the
large phase experiments; this module instead executes full register,
memory, and control semantics.  It is used by the test suite (to pin
down instruction semantics and to validate the encoder round trip), by
the examples, and by anyone writing real micro-kernels in the ISA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Reg, RegClass
from repro.program.cfg import is_cross_function, split_cross_function
from repro.program.program import Program

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - (1 << 64) if value & _SIGN_BIT else value


class InterpreterError(Exception):
    """Raised on malformed execution (bad targets, budget exhausted)."""


@dataclass
class MachineState:
    """Architectural state: registers, memory, call stack."""

    int_regs: Dict[int, int] = field(default_factory=dict)
    float_regs: Dict[int, float] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)
    float_memory: Dict[int, float] = field(default_factory=dict)

    def read(self, reg: Reg):
        if reg.cls is RegClass.INT:
            return self.int_regs.get(reg.index, 0)
        return self.float_regs.get(reg.index, 0.0)

    def write(self, reg: Reg, value) -> None:
        if reg.cls is RegClass.INT:
            self.int_regs[reg.index] = _to_signed(int(value))
        else:
            self.float_regs[reg.index] = float(value)


@dataclass
class InterpreterResult:
    """Final state and counters of a semantic run."""

    state: MachineState
    instructions: int
    branches: int
    halted: bool
    trace: List[Tuple[str, str]] = field(default_factory=list)


class Interpreter:
    """Executes a program's actual semantics."""

    def __init__(self, program: Program, max_instructions: int = 1_000_000):
        self.program = program
        self.max_instructions = max_instructions

    # -- instruction semantics ------------------------------------------
    def _alu(self, op: Opcode, a: int, b: int) -> int:
        if op in (Opcode.ADD, Opcode.ADDI):
            return a + b
        if op in (Opcode.SUB, Opcode.SUBI):
            return a - b
        if op in (Opcode.MUL, Opcode.MULI):
            return a * b
        if op in (Opcode.AND, Opcode.ANDI):
            return a & b
        if op in (Opcode.OR, Opcode.ORI):
            return a | b
        if op in (Opcode.XOR, Opcode.XORI):
            return a ^ b
        if op in (Opcode.SHL, Opcode.SHLI):
            return a << (b & 63)
        if op in (Opcode.SHR, Opcode.SHRI):
            return a >> (b & 63)
        if op in (Opcode.SLT, Opcode.SLTI):
            return 1 if a < b else 0
        if op is Opcode.SEQ:
            return 1 if a == b else 0
        if op is Opcode.SNE:
            return 1 if a != b else 0
        raise InterpreterError(f"not an ALU opcode: {op}")

    def _fpu(self, op: Opcode, a: float, b: float) -> float:
        if op is Opcode.FADD:
            return a + b
        if op is Opcode.FSUB:
            return a - b
        if op is Opcode.FMUL:
            return a * b
        if op is Opcode.FDIV:
            if b == 0.0:
                return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
            return a / b
        raise InterpreterError(f"not an FPU opcode: {op}")

    # -- run -----------------------------------------------------------------
    def run(
        self,
        state: Optional[MachineState] = None,
        trace_blocks: bool = False,
        instruction_hook=None,
    ) -> InterpreterResult:
        """Execute; ``instruction_hook(inst, taken)`` is called per
        retired instruction (``taken`` is the outcome for conditional
        branches, ``None`` otherwise) — the cycle-accurate pipeline
        validator consumes this stream."""
        state = state or MachineState()
        function = self.program.functions[self.program.entry]
        block_index = self._index_of(function.name)
        label = function.entry_label
        fn_name = function.name
        call_stack: List[Tuple[str, str]] = []
        executed = 0
        branches = 0
        halted = False
        trace: List[Tuple[str, str]] = []

        while True:
            if trace_blocks:
                trace.append((fn_name, label))
            block, next_label = block_index[fn_name][label]
            transfer: Optional[Tuple[str, str]] = None
            for inst in block.instructions:
                if inst.is_pseudo:
                    continue
                executed += 1
                if executed > self.max_instructions:
                    raise InterpreterError("instruction budget exhausted")
                op = inst.opcode
                if op is Opcode.MOVI:
                    state.write(inst.dest, inst.imm)
                elif op is Opcode.MOV:
                    state.write(inst.dest, state.read(inst.srcs[0]))
                elif op is Opcode.NOP:
                    pass
                elif op in (Opcode.LOAD,):
                    address = state.read(inst.srcs[0]) + inst.imm
                    state.write(inst.dest, state.memory.get(address, 0))
                elif op is Opcode.STORE:
                    address = state.read(inst.srcs[1]) + inst.imm
                    state.memory[address] = state.read(inst.srcs[0])
                elif op is Opcode.FLOAD:
                    address = state.read(inst.srcs[0]) + inst.imm
                    state.write(inst.dest, state.float_memory.get(address, 0.0))
                elif op is Opcode.FSTORE:
                    address = state.read(inst.srcs[1]) + inst.imm
                    state.float_memory[address] = state.read(inst.srcs[0])
                elif op is Opcode.FMOV:
                    state.write(inst.dest, state.read(inst.srcs[0]))
                elif op is Opcode.FNEG:
                    state.write(inst.dest, -state.read(inst.srcs[0]))
                elif op is Opcode.FSQRT:
                    value = state.read(inst.srcs[0])
                    state.write(inst.dest, value**0.5 if value >= 0 else float("nan"))
                elif op is Opcode.CVTIF:
                    state.write(inst.dest, float(state.read(inst.srcs[0])))
                elif op is Opcode.CVTFI:
                    state.write(inst.dest, int(state.read(inst.srcs[0])))
                elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
                    state.write(
                        inst.dest,
                        self._fpu(op, state.read(inst.srcs[0]), state.read(inst.srcs[1])),
                    )
                elif op in (Opcode.BRZ, Opcode.BRNZ):
                    branches += 1
                    value = state.read(inst.srcs[0])
                    taken = (value == 0) if op is Opcode.BRZ else (value != 0)
                    if taken:
                        if block.continuations:
                            call_stack.extend(block.continuations)
                        transfer = self._resolve(fn_name, inst.target)
                    # not taken: fall through to next_label below
                elif op is Opcode.JUMP:
                    # Package exit blocks leaving partially-inlined code
                    # push their recorded return continuations so the
                    # original callee's `ret` unwinds correctly.
                    if block.continuations:
                        call_stack.extend(block.continuations)
                    transfer = self._resolve(fn_name, inst.target)
                elif op is Opcode.CALL:
                    if next_label is None:
                        raise InterpreterError(
                            f"{fn_name}/{label}: call at end of function"
                        )
                    call_stack.append((fn_name, next_label))
                    if is_cross_function(inst.target):
                        transfer = split_cross_function(inst.target)
                    else:
                        callee = self.program.functions[inst.target]
                        transfer = (callee.name, callee.entry_label)
                elif op is Opcode.RET:
                    if instruction_hook is not None:
                        instruction_hook(inst, None)
                    if not call_stack:
                        halted = True
                        transfer = None
                        break
                    transfer = call_stack.pop()
                    continue
                elif op is Opcode.HALT:
                    if instruction_hook is not None:
                        instruction_hook(inst, None)
                    halted = True
                    break
                else:
                    # Three-register / immediate integer ALU.
                    if inst.srcs and len(inst.srcs) == 2:
                        result = self._alu(
                            op, state.read(inst.srcs[0]), state.read(inst.srcs[1])
                        )
                    else:
                        result = self._alu(op, state.read(inst.srcs[0]), inst.imm)
                    state.write(inst.dest, result)

                if instruction_hook is not None:
                    taken_outcome = None
                    if op in (Opcode.BRZ, Opcode.BRNZ):
                        taken_outcome = transfer is not None
                    instruction_hook(inst, taken_outcome)

            if halted:
                break
            if transfer is not None:
                fn_name, label = transfer
            else:
                if next_label is None:
                    raise InterpreterError(
                        f"{fn_name}/{label} fell off the end of the function"
                    )
                label = next_label

        return InterpreterResult(state, executed, branches, halted, trace)

    # -- helpers ---------------------------------------------------------
    def _index_of(self, _fn: str):
        index: Dict[str, Dict[str, Tuple[object, Optional[str]]]] = {}
        for function in self.program.functions.values():
            per_fn: Dict[str, Tuple[object, Optional[str]]] = {}
            blocks = function.blocks
            for i, block in enumerate(blocks):
                next_label = blocks[i + 1].label if i + 1 < len(blocks) else None
                per_fn[block.label] = (block, next_label)
            index[function.name] = per_fn
        return index

    def _resolve(self, fn_name: str, target: str) -> Tuple[str, str]:
        if is_cross_function(target):
            return split_cross_function(target)
        return (fn_name, target)
