"""Branch-event listeners that plug into the block executor.

The executor reports each retired conditional branch as
``hook(branch_origin_uid, taken, phase)``.  The classes here adapt that
stream to the consumers used in the paper's evaluation:

* :class:`HSDListener` — feeds the Hot Spot Detector with *addresses*
  (the BBB is indexed by address bits) and runs the software
  redundancy filter over its detections;
* :class:`PhaseBranchStats` — per-(static branch, phase) executed/taken
  aggregation, the input to the Figure 9 branch categorization;
* :class:`BranchTrace` — bounded raw recording, for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hsd.detector import HotSpotDetector
from repro.hsd.filtering import HotSpotFilter, SimilarityPolicy
from repro.hsd.records import HotSpotRecord


class HSDListener:
    """Adapts the branch stream to the Hot Spot Detector.

    ``address_of`` maps a branch instruction uid to its linked address
    in the original binary image.  Detections are passed through a
    :class:`~repro.hsd.filtering.HotSpotFilter`; the unique phase
    records accumulate in :attr:`unique_records`.
    """

    def __init__(
        self,
        detector: HotSpotDetector,
        address_of: Dict[int, int],
        policy: SimilarityPolicy = SimilarityPolicy(),
    ):
        self.detector = detector
        self.address_of = address_of
        self.filter = HotSpotFilter(policy)
        self.raw_detections = 0

    def __call__(self, branch_uid: int, taken: bool, phase: int) -> None:
        record = self.detector.observe(self.address_of[branch_uid], taken)
        if record is not None:
            self.raw_detections += 1
            self.filter.accept(record)

    def consume_trace(self, uids, takens) -> None:
        """Feed a whole recorded branch stream (numpy arrays or lists)
        through the detector's fast paths.  Equivalent to calling the
        listener once per event, detection-for-detection.

        Prefers the compiled C detector port (:mod:`repro.hsd.native`)
        when available; it declines (returns ``None``) rather than
        approximate, and the Python chunked path below remains the
        exact fallback."""
        address_of = self.address_of
        if hasattr(uids, "dtype") and len(uids):
            from repro.hsd.native import try_consume

            records = try_consume(self.detector, address_of, uids, takens)
            if records is not None:
                accept = self.filter.accept
                for record in records:
                    self.raw_detections += 1
                    accept(record)
                return
        uid_list = uids.tolist() if hasattr(uids, "tolist") else list(uids)
        taken_list = (
            takens.tolist() if hasattr(takens, "tolist") else list(takens)
        )
        addresses = [address_of[uid] for uid in uid_list]
        accept = self.filter.accept
        for record in self.detector.observe_stream(addresses, taken_list):
            self.raw_detections += 1
            accept(record)

    @property
    def unique_records(self) -> List[HotSpotRecord]:
        return list(self.filter.accepted)


@dataclass
class _Cell:
    executed: int = 0
    taken: int = 0


class PhaseBranchStats:
    """Executed/taken counts per (static branch, ground-truth phase)."""

    def __init__(self) -> None:
        self.counts: Dict[Tuple[int, int], _Cell] = {}

    def __call__(self, branch_uid: int, taken: bool, phase: int) -> None:
        cell = self.counts.get((branch_uid, phase))
        if cell is None:
            cell = _Cell()
            self.counts[(branch_uid, phase)] = cell
        cell.executed += 1
        if taken:
            cell.taken += 1

    # -- queries -----------------------------------------------------
    def phases_of(self, branch_uid: int) -> List[int]:
        return sorted(p for (uid, p) in self.counts if uid == branch_uid)

    def executed(self, branch_uid: int, phase: int) -> int:
        cell = self.counts.get((branch_uid, phase))
        return cell.executed if cell else 0

    def taken_fraction(self, branch_uid: int, phase: int) -> Optional[float]:
        cell = self.counts.get((branch_uid, phase))
        if cell is None or cell.executed == 0:
            return None
        return cell.taken / cell.executed

    def by_branch(self) -> Dict[int, Dict[int, Tuple[int, int]]]:
        """``{branch_uid: {phase: (executed, taken)}}`` for bulk analysis."""
        result: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for (uid, phase), cell in self.counts.items():
            result.setdefault(uid, {})[phase] = (cell.executed, cell.taken)
        return result


@dataclass
class BranchTrace:
    """Raw per-branch event recording (bounded; for tests)."""

    limit: int = 100_000
    events: List[Tuple[int, bool, int]] = field(default_factory=list)
    dropped: int = 0

    def __call__(self, branch_uid: int, taken: bool, phase: int) -> None:
        if len(self.events) < self.limit:
            self.events.append((branch_uid, taken, phase))
        else:
            self.dropped += 1
