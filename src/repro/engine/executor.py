"""Block-granularity behavioral executor.

This is the engine that "runs" workload programs for profiling,
coverage measurement, and timing.  It walks the program one basic block
at a time; straight-line instructions are counted in bulk and only
control transfers are interpreted:

* conditional branches consult the :class:`~repro.engine.behavior.BehaviorModel`
  under the current phase of the :class:`~repro.engine.phases.PhaseScript`;
* calls and returns maintain a continuation stack of block references;
* cross-function (``fn::label``) targets — patched launch points and
  package side exits/links — transfer directly, and exit blocks that
  leave partially-inlined code push their recorded return
  continuations first (see :class:`repro.program.block.BasicBlock`).

Because copied package instructions resolve behaviour through their
``origin`` uid, the conditional-branch outcome stream of a packed
program is bit-identical to the original program's, which is what makes
the paper's coverage (Fig. 8) and speedup (Fig. 10) comparisons sound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import Opcode
from repro.program.cfg import is_cross_function, split_cross_function
from repro.program.program import Program

from .behavior import BehaviorModel
from .phases import PhaseScript

# Block-terminator kinds, as small ints for the hot loop.
_FALL, _BRANCH, _JUMP, _CALL, _RET, _HALT = range(6)

#: Public aliases for consumers of BlockInfo.kind (e.g. the timing model).
KIND_FALL, KIND_BRANCH, KIND_JUMP, KIND_CALL, KIND_RET, KIND_HALT = (
    _FALL,
    _BRANCH,
    _JUMP,
    _CALL,
    _RET,
    _HALT,
)

#: Branch-event hook: ``hook(branch_origin_uid, taken, phase)``.
BranchHook = Callable[[int, bool, int], None]
#: Block-event hook: ``hook(block_info)``.
BlockHook = Callable[["BlockInfo"], None]


class StopReason(Enum):
    HALTED = "halted"
    BRANCH_LIMIT = "branch_limit"
    INSTRUCTION_LIMIT = "instruction_limit"
    STACK_UNDERFLOW = "stack_underflow"
    STEP_LIMIT = "step_limit"


@dataclass
class ExecutionLimits:
    """Run budgets; the first one reached stops execution."""

    max_branches: Optional[int] = None
    max_instructions: Optional[int] = None
    max_steps: int = 500_000_000


class BlockInfo:
    """Pre-resolved execution record for one basic block."""

    __slots__ = (
        "function",
        "label",
        "uid",
        "size",
        "kind",
        "branch_uid",
        "target",
        "fall",
        "continuations",
        "block",
    )

    def __init__(self, function: str, block) -> None:
        self.function = function
        self.label = block.label
        self.uid = block.uid
        self.size = block.size()
        self.block = block
        self.kind = _FALL
        self.branch_uid = 0
        self.target: Optional["BlockInfo"] = None
        self.fall: Optional["BlockInfo"] = None
        self.continuations: Tuple["BlockInfo", ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<BlockInfo {self.function}/{self.label}>"


@dataclass
class ExecutionSummary:
    """Aggregate results of one run."""

    instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    calls: int = 0
    steps: int = 0
    stop_reason: StopReason = StopReason.HALTED
    block_visits: Dict[int, int] = field(default_factory=dict)

    @property
    def taken_fraction(self) -> float:
        return self.taken_branches / self.branches if self.branches else 0.0


class ExecutorError(Exception):
    """Raised when a program cannot be prepared for execution."""


def _lookup_target(
    infos: Dict[Tuple[str, str], BlockInfo], function: str, target: str
) -> BlockInfo:
    if is_cross_function(target):
        remote_fn, remote_label = split_cross_function(target)
        key = (remote_fn, remote_label)
    else:
        key = (function, target)
    try:
        return infos[key]
    except KeyError:
        raise ExecutorError(f"unresolved control target {key}") from None


def _resolve_info(
    infos: Dict[Tuple[str, str], BlockInfo],
    program: Program,
    info: BlockInfo,
    function: str,
    block,
    next_info: Optional[BlockInfo],
) -> None:
    # Continuations are stored as (function, label) pairs.
    if block.continuations:
        info.continuations = tuple(
            infos[(fn, label)] for fn, label in block.continuations
        )
    term = block.terminator
    if term is None:
        if next_info is None:
            raise ExecutorError(
                f"{function}/{block.label} falls off the end of the function"
            )
        info.kind = _FALL
        info.fall = next_info
    elif term.is_conditional_branch:
        if next_info is None:
            raise ExecutorError(
                f"{function}/{block.label} may fall off the function end"
            )
        info.kind = _BRANCH
        info.branch_uid = term.root_origin()
        info.target = _lookup_target(infos, function, term.target)
        info.fall = next_info
        if block.meta.get("branch_inverted"):
            # The layout pass physically inverted this branch; the
            # behavior model still speaks in original-taken terms,
            # so swap the successors here.
            info.target, info.fall = info.fall, info.target
    elif term.opcode is Opcode.JUMP:
        info.kind = _JUMP
        info.target = _lookup_target(infos, function, term.target)
    elif term.is_call:
        if next_info is None:
            raise ExecutorError(
                f"{function}/{block.label}: call at function end"
            )
        info.kind = _CALL
        if is_cross_function(term.target):
            # Patched launch point: call directly into a package block.
            info.target = _lookup_target(infos, function, term.target)
        else:
            callee = program.functions.get(term.target)
            if callee is None:
                raise ExecutorError(
                    f"{function}/{block.label}: call to unknown {term.target!r}"
                )
            info.target = infos[(callee.name, callee.entry_label)]
        info.fall = next_info
    elif term.is_return:
        info.kind = _RET
    elif term.opcode is Opcode.HALT:
        info.kind = _HALT
    else:  # pragma: no cover - defensive
        raise ExecutorError(f"unhandled terminator {term.render()!r}")


def build_block_infos(program: Program) -> Dict[Tuple[str, str], BlockInfo]:
    """Build the resolved :class:`BlockInfo` graph for a program.

    Shared by the reference :class:`BlockExecutor` and the compiled
    engine (:mod:`repro.engine.compiled`), so both execute the exact
    same successor resolution (branch inversion, continuations, calls).
    """
    infos: Dict[Tuple[str, str], BlockInfo] = {}
    # First pass: create one BlockInfo per block.
    for function in program.functions.values():
        for block in function.blocks:
            infos[(function.name, block.label)] = BlockInfo(
                function.name, block
            )
    # Second pass: resolve successors.
    for function in program.functions.values():
        blocks = function.blocks
        for i, block in enumerate(blocks):
            info = infos[(function.name, block.label)]
            next_info = (
                infos[(function.name, blocks[i + 1].label)]
                if i + 1 < len(blocks)
                else None
            )
            _resolve_info(infos, program, info, function.name, block, next_info)
    return infos


class BlockExecutor:
    """Executes a program against a behavior model and phase script."""

    def __init__(
        self,
        program: Program,
        behavior: BehaviorModel,
        phase_script: PhaseScript,
        branch_hooks: Sequence[BranchHook] = (),
        block_hook: Optional[BlockHook] = None,
        limits: Optional[ExecutionLimits] = None,
    ):
        self.program = program
        self.behavior = behavior
        self.phase_script = phase_script
        self.branch_hooks = list(branch_hooks)
        self.block_hook = block_hook
        self.limits = limits or ExecutionLimits()
        self._infos: Dict[Tuple[str, str], BlockInfo] = build_block_infos(
            program
        )

    def info_of(self, function: str, label: str) -> BlockInfo:
        return self._infos[(function, label)]

    # -- execution ---------------------------------------------------------
    def run(self, start: Optional[Tuple[str, str]] = None) -> ExecutionSummary:
        """Run from ``start`` (default: program entry) until a limit/halt."""
        entry_function = self.program.functions[self.program.entry]
        if start is None:
            start = (entry_function.name, entry_function.entry_label)
        info: Optional[BlockInfo] = self._infos[start]

        summary = ExecutionSummary()
        visits: Dict[int, int] = defaultdict(int)
        stack: List[BlockInfo] = []
        cursor = self.phase_script.cursor()
        cursor_advance = cursor.advance
        occurrences: Dict[int, int] = defaultdict(int)
        behavior_taken = self.behavior.taken
        # Hook dispatch is skipped entirely when nothing is registered;
        # the common single-hook case avoids the loop as well.
        hooks = tuple(self.branch_hooks) or None
        single_hook = hooks[0] if hooks is not None and len(hooks) == 1 else None
        block_hook = self.block_hook
        max_branches = self.limits.max_branches
        max_instructions = self.limits.max_instructions
        max_steps = self.limits.max_steps

        instructions = 0
        branches = 0
        taken_total = 0
        calls = 0
        steps = 0

        while True:
            steps += 1
            if steps > max_steps:
                summary.stop_reason = StopReason.STEP_LIMIT
                break
            visits[info.uid] += 1
            instructions += info.size
            if block_hook is not None:
                block_hook(info)
            if max_instructions is not None and instructions >= max_instructions:
                summary.stop_reason = StopReason.INSTRUCTION_LIMIT
                break
            kind = info.kind
            if kind == _BRANCH:
                if max_branches is not None and branches >= max_branches:
                    summary.stop_reason = StopReason.BRANCH_LIMIT
                    break
                buid = info.branch_uid
                occ = occurrences[buid]
                occurrences[buid] = occ + 1
                phase = cursor_advance()
                taken = behavior_taken(buid, occ, phase)
                branches += 1
                if taken:
                    taken_total += 1
                if single_hook is not None:
                    single_hook(buid, taken, phase)
                elif hooks is not None:
                    for hook in hooks:
                        hook(buid, taken, phase)
                next_info = info.target if taken else info.fall
                if taken and info.continuations:
                    stack.extend(info.continuations)
                info = next_info
            elif kind == _FALL:
                info = info.fall
            elif kind == _JUMP:
                if info.continuations:
                    stack.extend(info.continuations)
                info = info.target
            elif kind == _CALL:
                calls += 1
                stack.append(info.fall)
                info = info.target
            elif kind == _RET:
                if not stack:
                    summary.stop_reason = StopReason.STACK_UNDERFLOW
                    break
                info = stack.pop()
            else:  # _HALT
                summary.stop_reason = StopReason.HALTED
                break

        summary.instructions = instructions
        summary.branches = branches
        summary.taken_branches = taken_total
        summary.calls = calls
        summary.steps = steps
        summary.block_visits = dict(visits)
        return summary
