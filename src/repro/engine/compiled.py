"""Compiled trace engine: the block executor lowered to flat tables.

The reference :class:`~repro.engine.executor.BlockExecutor` interprets
one :class:`BlockInfo` object per step and calls back into the
behavior model for every retired conditional branch.  This module keeps
the exact same semantics but removes the per-event Python dispatch:

* the resolved ``BlockInfo`` graph is lowered once per program into
  flat successor/uid/size tables indexed by dense block ids
  (:class:`CompiledProgram`, memoized per :class:`Program` object);
* branch outcomes are precomputed in bulk: a vectorized numpy
  splitmix64 fills per-branch *unit* tables (the uniform draw for each
  occurrence) in geometric chunks, and per-phase probability schedules
  are bound per run (:class:`OutcomeTable`) — the hot loop reduces to
  two list indexings and a float compare per branch;
* the phase cursor is inlined as three integers;
* runs can record the retired-branch stream as numpy arrays
  (:meth:`CompiledExecutor.run_traced`) and later *replay* a recorded
  stream through a different (packed) program with per-event uid
  verification (:meth:`CompiledExecutor.run`'s ``replay``), which skips
  outcome computation entirely.

Equivalence with the reference engine is contractual: identical
:class:`~repro.engine.executor.ExecutionSummary` fields (including
``block_visits`` and ``stop_reason``) and an identical
``(branch_uid, taken, phase)`` event stream.  ``tests/test_compiled_engine.py``
asserts this property across the workload suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.engine.behavior import BehaviorModel, hash_unit
from repro.engine.executor import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_FALL,
    KIND_HALT,
    KIND_JUMP,
    KIND_RET,
    ExecutionLimits,
    ExecutionSummary,
    ExecutorError,
    StopReason,
    build_block_infos,
)
from repro.engine.phases import PhaseScript
from repro.obs import inc, span
from repro.program.program import Program

_MASK64 = (1 << 64) - 1
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_FNV = 0x100000001B3

#: Initial per-branch outcome table size; doubles on demand.
_UNIT_CHUNK = 512


def default_engine() -> str:
    """Engine selection: ``REPRO_ENGINE`` = ``compiled`` (default) or
    ``reference``."""
    return os.environ.get("REPRO_ENGINE", "compiled")


def compiled_enabled() -> bool:
    return default_engine() != "reference"


def _vec_splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array (wraps mod 2^64
    exactly like the masked scalar version in :mod:`repro.engine.behavior`)."""
    x = x + _GOLDEN
    x = x ^ (x >> np.uint64(30))
    x = x * _MIX1
    x = x ^ (x >> np.uint64(27))
    x = x * _MIX2
    x = x ^ (x >> np.uint64(31))
    return x


def hash_units_bulk(stable_key: int, start: int, stop: int, seed: int) -> List[float]:
    """``[hash_unit(stable_key, occ, seed) for occ in range(start, stop)]``
    computed vectorized; bit-identical to the scalar path."""
    occurrences = np.arange(start, stop, dtype=np.uint64)
    inner = _vec_splitmix64(occurrences ^ np.uint64(seed & _MASK64))
    mixed = _vec_splitmix64(inner ^ np.uint64((stable_key * _FNV) & _MASK64))
    # uint64 -> float64 rounds to nearest, then the 2^64 scale is exact,
    # matching Python's int/float true division in hash_unit().
    return (mixed / 2.0**64).tolist()


class OutcomeTable:
    """Memoized vectorized branch outcomes for one :class:`BehaviorModel`.

    ``units(uid)`` is the per-occurrence uniform draw table for one
    static branch (grown geometrically); outcomes are ``unit < prob``
    with the probability picked per phase at run time.  Tables are keyed
    by the behavior's *stable id* for the branch, so a late
    ``set_bias`` that registers a new stable id invalidates only that
    branch's table.
    """

    def __init__(self, behavior: BehaviorModel):
        self.behavior = behavior
        #: uid -> (stable key the table was built with, unit list)
        self._units: Dict[int, Tuple[int, List[float]]] = {}

    def _key_of(self, uid: int) -> int:
        return self.behavior._stable_id.get(uid, uid)

    def units(self, uid: int, need: int = _UNIT_CHUNK) -> List[float]:
        """Unit table for ``uid`` with at least ``need`` entries."""
        key = self._key_of(uid)
        cached = self._units.get(uid)
        if cached is not None and cached[0] == key and len(cached[1]) >= need:
            return cached[1]
        have = cached[1] if cached is not None and cached[0] == key else []
        target = max(_UNIT_CHUNK, len(have) * 2, need)
        have = have + hash_units_bulk(
            key, len(have), target, self.behavior.seed
        )
        self._units[uid] = (key, have)
        return have

    def grow(self, uid: int, need: int) -> List[float]:
        """Extend ``uid``'s table past ``need`` (hot-loop slow path)."""
        return self.units(uid, need + 1)

    def probs(self, uid: int, phase_ids: Sequence[int]) -> List[float]:
        """Taken probability of ``uid`` indexed by phase id (dense list
        covering ``0..max(phase_ids)``)."""
        prob = self.behavior.prob
        top = max(phase_ids) if phase_ids else 0
        return [prob(uid, phase) for phase in range(top + 1)]


_OUTCOME_TABLES: "WeakKeyDictionary[BehaviorModel, OutcomeTable]" = (
    WeakKeyDictionary()
)


def outcome_table_for(behavior: BehaviorModel) -> OutcomeTable:
    """Process-wide outcome table shared by every run of ``behavior``."""
    try:
        table = _OUTCOME_TABLES.get(behavior)
        if table is None:
            table = OutcomeTable(behavior)
            _OUTCOME_TABLES[behavior] = table
        return table
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        return OutcomeTable(behavior)


def share_outcome_table(behavior: BehaviorModel, table: OutcomeTable) -> None:
    """Pre-seed :func:`outcome_table_for` for ``behavior``.

    The batched engine's per-row behavior views alias one base model's
    bias/stable-id state; views of the same (base, seed) draw identical
    units, so their unit tables are interchangeable.  Registering the
    shared table here keeps repeat rows (the controller's per-epoch
    fleet re-probe) from regrowing every branch's table from scratch."""
    try:
        _OUTCOME_TABLES[behavior] = table
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        pass


class CompiledProgram:
    """A program lowered to flat, dense-index successor tables."""

    def __init__(self, program: Program):
        self.program = program
        infos = build_block_infos(program)
        ordered = list(infos.values())
        index = {id(info): i for i, info in enumerate(ordered)}
        n = len(ordered)

        # Plain Python lists: scalar indexing beats numpy in the
        # interpreter loop; numpy is used for the bulk outcome hashing.
        self.kind: List[int] = [info.kind for info in ordered]
        self.size: List[int] = [info.size for info in ordered]
        self.uid: List[int] = [info.uid for info in ordered]
        self.fall: List[int] = [
            index[id(info.fall)] if info.fall is not None else -1
            for info in ordered
        ]
        self.target: List[int] = [
            index[id(info.target)] if info.target is not None else -1
            for info in ordered
        ]
        self.conts: List[Tuple[int, ...]] = [
            tuple(index[id(c)] for c in info.continuations)
            for info in ordered
        ]

        # Dense ids for branch origin uids (packed copies share the
        # origin uid and therefore the occurrence counter).
        dense_of: Dict[int, int] = {}
        self.branch_dense: List[int] = [-1] * n
        for i, info in enumerate(ordered):
            if info.kind == KIND_BRANCH:
                dense = dense_of.setdefault(info.branch_uid, len(dense_of))
                self.branch_dense[i] = dense
        self.branch_uids: List[int] = [0] * len(dense_of)
        for buid, dense in dense_of.items():
            self.branch_uids[dense] = buid

        self.index_of: Dict[Tuple[str, str], int] = {
            key: index[id(info)] for key, info in infos.items()
        }
        entry_fn = program.functions[program.entry]
        self.entry_index = self.index_of[(entry_fn.name, entry_fn.entry_label)]

        #: Lazily built straight-line segments (see :func:`_build_segment`)
        #: as parallel per-start-block tables, shared by every run.
        #: ``seg_end[b] is None`` means not built yet; list indexing
        #: keeps the hot loop free of dict lookups and tuple unpacking.
        self.seg_blocks: List[Optional[np.ndarray]] = [None] * n
        self.seg_instr: List[int] = [0] * n
        self.seg_steps: List[int] = [0] * n
        self.seg_calls: List[int] = [0] * n
        self.seg_pushes: List[Tuple[int, ...]] = [()] * n
        self.seg_kind: List[int] = [0] * n
        self.seg_end: List[Optional[int]] = [None] * n

        #: Fused branch-to-branch transitions (see :func:`_build_fused`),
        #: keyed by ``2 * branch_block_index + outcome``.  ``None`` =
        #: not built, ``False`` = walk too long to fuse (rare; the
        #: per-segment path handles those events exactly).
        self.fused: List[object] = [None] * (2 * n)


def _build_segment(cp: "CompiledProgram", b: int) -> Optional[int]:
    """Pre-aggregate the deterministic walk starting at block ``b``
    into the compiled program's parallel segment tables.

    Follows FALL/JUMP/CALL edges until the first conditional branch,
    RET, or HALT (inclusive), recording the visited block indices, the
    instruction/step/call totals, and the exact continuation-stack push
    sequence the reference loop would perform.  Deferring the pushes is
    sound because RET terminates a segment, so nothing pops in between.
    Returns the terminal block index, or ``None`` when the walk
    revisits a block — a branchless cycle, which only the step-limited
    per-block loop can terminate.
    """
    kind = cp.kind
    size = cp.size
    fall = cp.fall
    target = cp.target
    conts = cp.conts
    n = len(kind)

    blocks: List[int] = []
    pushes: List[int] = []
    instructions = 0
    calls = 0
    cur = b
    while True:
        blocks.append(cur)
        if len(blocks) > n:
            return None
        instructions += size[cur]
        k = kind[cur]
        if k == KIND_FALL:
            cur = fall[cur]
        elif k == KIND_JUMP:
            if conts[cur]:
                pushes.extend(conts[cur])
            cur = target[cur]
        elif k == KIND_CALL:
            calls += 1
            pushes.append(fall[cur])
            cur = target[cur]
        else:  # BRANCH / RET / HALT terminate the segment
            cp.seg_blocks[b] = np.asarray(blocks, dtype=np.int64)
            cp.seg_instr[b] = instructions
            cp.seg_steps[b] = len(blocks)
            cp.seg_calls[b] = calls
            cp.seg_pushes[b] = tuple(pushes)
            cp.seg_kind[b] = k
            cp.seg_end[b] = cur
            return cur


#: Steps allowed in one fused walk: generous enough for deep call
#: chains between branches, small enough to bound the build cost.
_FUSE_PAD = 64


def _build_fused(cp: "CompiledProgram", key: int):
    """Pre-aggregate the deterministic walk *after* a branch outcome.

    ``key`` encodes ``2 * branch_block_index + outcome``.  Starting at
    the branch's taken/fall successor, chains segments — resolving RETs
    against a virtual stack of this walk's own pushes — until the next
    conditional branch, a RET that must pop the caller's (real) stack,
    or HALT.  The result collapses an entire inter-branch call chain
    into one table entry: unique visited blocks + counts (as arrays for
    vectorized accumulation), instruction/step/call totals, leftover
    pushes for the real stack, and the end state.

    Returns the entry (also stored in ``cp.fused[key]``), ``False``
    when the walk exceeds its step bound (stored too; the per-segment
    path executes such events exactly), or ``None`` on a branchless
    cycle — the whole run must fall back to the per-block loop.
    """
    j = key >> 1
    seg_blocks = cp.seg_blocks
    seg_instr = cp.seg_instr
    seg_steps = cp.seg_steps
    seg_calls = cp.seg_calls
    seg_pushes = cp.seg_pushes
    seg_kind = cp.seg_kind
    seg_end = cp.seg_end
    bound = 4 * len(cp.kind) + _FUSE_PAD

    vstack: List[int] = []
    start_counts: Dict[int, int] = {}
    instructions = 0
    steps = 0
    calls = 0
    if key & 1:
        if cp.conts[j]:
            vstack.extend(cp.conts[j])
        i = cp.target[j]
    else:
        i = cp.fall[j]
    while True:
        e = seg_end[i]
        if e is None:
            if _build_segment(cp, i) is None:
                return None
            e = seg_end[i]
        start_counts[i] = start_counts.get(i, 0) + 1
        instructions += seg_instr[i]
        steps += seg_steps[i]
        calls += seg_calls[i]
        if steps > bound:
            cp.fused[key] = False
            return False
        if seg_pushes[i]:
            vstack.extend(seg_pushes[i])
        ek = seg_kind[i]
        if ek == KIND_BRANCH:
            end_kind, end = KIND_BRANCH, e
            break
        if ek == KIND_RET:
            if vstack:
                i = vstack.pop()
                continue
            end_kind, end = KIND_RET, -1
            break
        end_kind, end = KIND_HALT, -1
        break

    block_counts: Dict[int, int] = {}
    for s, c in start_counts.items():
        for b in seg_blocks[s].tolist():
            block_counts[b] = block_counts.get(b, 0) + c
    entry = (
        np.fromiter(block_counts, dtype=np.int64, count=len(block_counts)),
        np.fromiter(
            block_counts.values(), dtype=np.int64, count=len(block_counts)
        ),
        instructions,
        steps,
        calls,
        tuple(vstack),
        end_kind,
        end,
    )
    cp.fused[key] = entry
    return entry


def program_signature(program: Program) -> int:
    """Cheap structural fingerprint of everything that determines a
    program's execution semantics under this engine: block identity and
    order, lengths, terminator kinds/targets/origins, continuations,
    and layout's branch inversions.  Used to detect in-place mutation
    of a memoized program (fault-injection tests sabotage programs
    after their first run) without paying a full recompile per run.
    O(blocks), not O(instructions): block *length* stands in for size,
    so the one mutation shape it cannot see is an in-place same-length
    swap of a non-terminator instruction — which no pipeline stage or
    oracle performs (they replace terminators or clone whole programs).
    """
    parts: List = []
    for function in program.functions.values():
        parts.append(function.name)
        for block in function.blocks:
            term = block.terminator
            parts.append((
                block.label,
                block.uid,
                len(block.instructions),
                None if term is None else term.opcode,
                None if term is None else term.target,
                None if term is None else term.root_origin(),
                bool(block.meta.get("branch_inverted")),
                tuple(block.continuations),
            ))
    return hash(tuple(parts))


_COMPILED: "WeakKeyDictionary[Program, Tuple[int, CompiledProgram]]" = (
    WeakKeyDictionary()
)


def compile_program(program: Program, refresh: bool = False) -> CompiledProgram:
    """Lower ``program``, memoizing per program object.

    The memo is guarded by :func:`program_signature`, so an in-place
    mutation (rare — the rewriter clones rather than mutates, but the
    fault-injection oracle tests sabotage programs directly)
    transparently recompiles.  ``refresh=True`` forces it.
    """
    signature = program_signature(program)
    try:
        cached = None if refresh else _COMPILED.get(program)
        if cached is not None and cached[0] == signature:
            return cached[1]
        with span("engine.compile", functions=len(program.functions)):
            compiled = CompiledProgram(program)
        inc("engine.compile.programs")
        _COMPILED[program] = (signature, compiled)
        return compiled
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        return CompiledProgram(program)


@dataclass
class TraceData:
    """A recorded retired-branch stream plus the run's summary."""

    uids: np.ndarray      # int64 branch origin uid per retired branch
    taken: np.ndarray     # bool outcome per retired branch
    summary: ExecutionSummary

    def __len__(self) -> int:
        return int(self.uids.shape[0])

    def phases(self, phase_script: PhaseScript) -> np.ndarray:
        """Ground-truth phase id per event (from the script that drove
        the run), reconstructed without replaying."""
        return phases_for(phase_script, len(self))


_PHASE_ARRAYS: "WeakKeyDictionary[PhaseScript, np.ndarray]" = (
    WeakKeyDictionary()
)


def phases_for(script: PhaseScript, n: int) -> np.ndarray:
    """Phase id of each of the first ``n`` branch retirements.

    Memoized per script (read-only views of one grown array): a batched
    fleet reconstructs this for every client row of the same script, and
    the controller re-asks every epoch."""
    try:
        cached = _PHASE_ARRAYS.get(script)
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        cached = None
    if cached is not None and len(cached) >= n:
        return cached[:n]
    arr = _phases_for(script, n)
    arr.setflags(write=False)
    try:
        _PHASE_ARRAYS[script] = arr
    except TypeError:  # pragma: no cover - non-weakref-able subclass
        pass
    return arr


def _phases_for(script: PhaseScript, n: int) -> np.ndarray:
    ids: List[int] = []
    lengths: List[int] = []
    total = 0
    for segment in script.segments:
        if total >= n:
            break
        take = min(segment.branches, n - total)
        ids.append(segment.phase_id)
        lengths.append(take)
        total += take
    if total < n:  # indices beyond the script stay in the final phase
        ids.append(script.segments[-1].phase_id)
        lengths.append(n - total)
    if not ids:
        return np.zeros(0, dtype=np.int64)
    return np.repeat(np.asarray(ids, dtype=np.int64), lengths)


class ReplayDivergence(ExecutorError):
    """A replayed stream did not match the program's control flow."""


class CompiledExecutor:
    """Drop-in fast executor: same constructor shape as
    :class:`~repro.engine.executor.BlockExecutor` minus ``block_hook``
    (block-level callbacks need the reference engine)."""

    def __init__(
        self,
        program: Program,
        behavior: BehaviorModel,
        phase_script: PhaseScript,
        branch_hooks: Sequence = (),
        limits: Optional[ExecutionLimits] = None,
    ):
        self.program = program
        self.behavior = behavior
        self.phase_script = phase_script
        self.branch_hooks = list(branch_hooks)
        self.limits = limits or ExecutionLimits()
        self.compiled = compile_program(program)
        self.outcomes = outcome_table_for(behavior)
        # Branch events delivered to hooks by an aborted segment run
        # (see run()'s fallback hand-off).
        self._aborted_events = 0

    # -- execution ---------------------------------------------------
    def run(
        self,
        start: Optional[Tuple[str, str]] = None,
        collect_trace: bool = False,
        replay: Optional[TraceData] = None,
    ) -> ExecutionSummary:
        """Run to a limit/halt; exact :class:`ExecutionSummary` parity
        with the reference engine.

        ``collect_trace`` records the branch stream into
        ``self.last_trace``.  ``replay`` consumes a recorded stream
        (verifying the branch uid at every event) instead of computing
        outcomes — raises :class:`ReplayDivergence` if the program's
        control flow leaves the recorded stream.

        Dispatches to the segment engine (one iteration per *branch
        event*, straight-line walks pre-aggregated) whenever the run
        budget permits; the per-block event loop remains as the exact
        fallback for instruction-limited runs and degenerate graphs.
        """
        skip_hooks = 0
        if self.limits.max_instructions is None:
            self._aborted_events = 0
            summary = self._run_segments(start, collect_trace, replay)
            if summary is not None:
                return summary
            # The segment engine bailed out mid-run (step guard or a
            # branchless cycle discovered on the fly).  Its partial
            # event stream is a strict prefix of the true stream, and
            # hooks already saw it — the fallback must not re-emit it.
            skip_hooks = self._aborted_events
        return self._run_events(start, collect_trace, replay, skip_hooks)

    def _run_segments(
        self,
        start: Optional[Tuple[str, str]],
        collect_trace: bool,
        replay: Optional[TraceData],
    ) -> Optional[ExecutionSummary]:
        """Segment-batched run; returns ``None`` when the graph or the
        step budget forces the per-block fallback.

        A *segment* is the maximal deterministic walk from a block
        through FALL/JUMP/CALL edges up to (and including) the next
        conditional branch, RET, or HALT — its visit set, instruction
        count, step count, call count, and continuation pushes are all
        precomputed (:func:`_build_segment`), so the interpreter loop
        advances one branch retirement (or return) at a time instead of
        one block at a time.
        """
        cp = self.compiled
        i = cp.entry_index if start is None else cp.index_of[start]

        kind = cp.kind
        fall = cp.fall
        target = cp.target
        conts = cp.conts
        branch_dense = cp.branch_dense
        branch_uids = cp.branch_uids
        seg_instr = cp.seg_instr
        seg_steps = cp.seg_steps
        seg_calls = cp.seg_calls
        seg_pushes = cp.seg_pushes
        seg_kind = cp.seg_kind
        seg_end = cp.seg_end
        nblocks = len(kind)

        limits = self.limits
        max_branches = limits.max_branches
        if max_branches is None:
            max_branches = float("inf")
        # Conservative ceiling: one segment is at most nblocks steps
        # and one fused walk at most 4 * nblocks + _FUSE_PAD, so
        # crossing the guard means the reference engine may stop
        # mid-chunk — replay per block instead.
        step_guard = limits.max_steps - 4 * nblocks - _FUSE_PAD

        # Inlined phase cursor.
        segments = self.phase_script.segments
        nsegs = len(segments)
        seg_i = 0
        seg_phase = [s.phase_id for s in segments]
        seg_len = [s.branches for s in segments]
        cur_phase = seg_phase[0]
        remaining = seg_len[0]

        ndense = len(branch_uids)
        occs = [0] * ndense
        units: List[List[float]] = [[]] * ndense
        probs: List[List[float]] = [[]] * ndense
        outcome_table = self.outcomes

        replaying = replay is not None
        if replaying:
            r_uids = replay.uids.tolist()
            r_taken = replay.taken.tolist()
            n_replay = len(r_uids)
        else:
            for dense, buid in enumerate(branch_uids):
                units[dense] = outcome_table.units(buid)
                probs[dense] = outcome_table.probs(buid, seg_phase)

        hooks = tuple(self.branch_hooks) or None
        single_hook = hooks[0] if hooks is not None and len(hooks) == 1 else None
        # The phase id feeds outcome hashing and hooks; a hook-less
        # replay needs neither, so the cursor can be skipped entirely.
        need_phase = not replaying or hooks is not None

        trace_uids: Optional[List[int]] = [] if collect_trace else None
        trace_taken: Optional[List[bool]] = [] if collect_trace else None

        seg_count = [0] * nblocks
        fused = cp.fused
        fused_count: Dict[int, int] = {}
        fused_count_get = fused_count.get
        stack: List[int] = []
        stop_reason = StopReason.HALTED
        instructions = 0
        branches = 0
        taken_total = 0
        calls = 0
        steps = 0

        k_branch = KIND_BRANCH
        k_ret = KIND_RET

        # j >= 0: a branch event at block j is pending (its block and
        # everything leading to it already accounted).  j < 0: step
        # segments from block i until the next terminal.
        j = -1
        while True:
            if j < 0:
                e = seg_end[i]
                if e is None:
                    if _build_segment(cp, i) is None:
                        # Branchless cycle: only the per-block loop can
                        # hit its step limit.
                        self._aborted_events = branches
                        return None
                    e = seg_end[i]
                seg_count[i] += 1
                instructions += seg_instr[i]
                steps += seg_steps[i]
                calls += seg_calls[i]
                if steps > step_guard:
                    self._aborted_events = branches
                    return None
                pushes = seg_pushes[i]
                if pushes:
                    stack.extend(pushes)
                end_kind = seg_kind[i]
                if end_kind == k_branch:
                    j = e
                elif end_kind == k_ret:
                    if not stack:
                        stop_reason = StopReason.STACK_UNDERFLOW
                        break
                    i = stack.pop()
                    continue
                else:  # KIND_HALT
                    stop_reason = StopReason.HALTED
                    break

            # -- branch event at block j ---------------------------
            if branches >= max_branches:
                stop_reason = StopReason.BRANCH_LIMIT
                break
            dense = branch_dense[j]
            buid = branch_uids[dense]
            if need_phase:
                # Inlined PhaseCursor.advance().
                phase = cur_phase
                remaining -= 1
                if remaining <= 0 and seg_i + 1 < nsegs:
                    seg_i += 1
                    cur_phase = seg_phase[seg_i]
                    remaining = seg_len[seg_i]
            if replaying:
                if branches >= n_replay or r_uids[branches] != buid:
                    raise ReplayDivergence(
                        f"replay diverged at branch {branches}: program "
                        f"retires uid {buid}, stream has "
                        f"{r_uids[branches] if branches < n_replay else 'EOF'}"
                    )
                taken = r_taken[branches]
            else:
                occ = occs[dense]
                occs[dense] = occ + 1
                unit_list = units[dense]
                if occ >= len(unit_list):
                    unit_list = outcome_table.grow(buid, occ)
                    units[dense] = unit_list
                taken = unit_list[occ] < probs[dense][phase]
            branches += 1
            if taken:
                taken_total += 1
            if trace_uids is not None:
                trace_uids.append(buid)
                trace_taken.append(taken)
            if single_hook is not None:
                single_hook(buid, taken, phase)
            elif hooks is not None:
                for hook in hooks:
                    hook(buid, taken, phase)

            # -- fused transition to the next event ----------------
            key = j + j + taken
            f = fused[key]
            if f is None:
                f = _build_fused(cp, key)
                if f is None:
                    self._aborted_events = branches
                    return None
            if f is False:
                # Too long to fuse: resume exact per-segment stepping.
                if taken:
                    if conts[j]:
                        stack.extend(conts[j])
                    i = target[j]
                else:
                    i = fall[j]
                j = -1
                continue
            fused_count[key] = fused_count_get(key, 0) + 1
            instructions += f[2]
            steps += f[3]
            calls += f[4]
            if steps > step_guard:
                self._aborted_events = branches
                return None
            if f[5]:
                stack.extend(f[5])
            end_kind = f[6]
            if end_kind == k_branch:
                j = f[7]
            elif end_kind == k_ret:
                if not stack:
                    stop_reason = StopReason.STACK_UNDERFLOW
                    break
                i = stack.pop()
                j = -1
            else:  # KIND_HALT
                stop_reason = StopReason.HALTED
                break

        if replaying and (
            branches != n_replay
            or stop_reason is not replay.summary.stop_reason
        ):
            raise ReplayDivergence(
                f"replay ended with {branches}/{n_replay} branches "
                f"({stop_reason.value} vs recorded "
                f"{replay.summary.stop_reason.value})"
            )

        visit_counts = np.zeros(nblocks, dtype=np.int64)
        seg_blocks = cp.seg_blocks
        for b, count in enumerate(seg_count):
            # Blocks within one segment are distinct (a repeat would be
            # a branchless cycle, rejected above), so fancy-index add
            # is exact.
            if count:
                visit_counts[seg_blocks[b]] += count
        for key, count in fused_count.items():
            f = fused[key]
            # f[0] holds unique block indices, f[1] their per-walk
            # visit counts.
            visit_counts[f[0]] += f[1] * count
        uid = cp.uid
        summary = ExecutionSummary(
            instructions=instructions,
            branches=branches,
            taken_branches=taken_total,
            calls=calls,
            steps=steps,
            stop_reason=stop_reason,
            block_visits={
                uid[j]: count
                for j, count in enumerate(visit_counts.tolist())
                if count
            },
        )
        if collect_trace:
            self.last_trace = TraceData(
                uids=np.asarray(trace_uids, dtype=np.int64),
                taken=np.asarray(trace_taken, dtype=bool),
                summary=summary,
            )
        return summary

    def _run_events(
        self,
        start: Optional[Tuple[str, str]],
        collect_trace: bool,
        replay: Optional[TraceData],
        skip_hooks: int = 0,
    ) -> ExecutionSummary:
        """The per-block event loop (exact fallback path).

        ``skip_hooks`` suppresses hook delivery for the first N branch
        events — used when an aborted segment run already delivered
        that exact prefix to the hooks.
        """
        cp = self.compiled
        i = cp.entry_index if start is None else cp.index_of[start]

        kind = cp.kind
        size = cp.size
        fall = cp.fall
        target = cp.target
        conts = cp.conts
        branch_dense = cp.branch_dense
        branch_uids = cp.branch_uids

        limits = self.limits
        max_branches = limits.max_branches
        max_instructions = limits.max_instructions
        max_steps = limits.max_steps

        # Inlined phase cursor.
        segments = self.phase_script.segments
        nsegs = len(segments)
        seg_i = 0
        seg_phase = [s.phase_id for s in segments]
        seg_len = [s.branches for s in segments]
        cur_phase = seg_phase[0]
        remaining = seg_len[0]

        # Per-dense-branch outcome state.
        ndense = len(branch_uids)
        occs = [0] * ndense
        phase_ids = seg_phase
        units: List[List[float]] = [[]] * ndense
        probs: List[List[float]] = [[]] * ndense
        outcome_table = self.outcomes
        for dense, buid in enumerate(branch_uids):
            units[dense] = outcome_table.units(buid)
            probs[dense] = outcome_table.probs(buid, phase_ids)

        hooks = tuple(self.branch_hooks) or None
        if skip_hooks and hooks is not None:
            real_hooks = hooks
            pending = [skip_hooks]

            def _after_skip(buid, taken, phase, _h=real_hooks, _p=pending):
                if _p[0] > 0:
                    _p[0] -= 1
                    return
                for hook in _h:
                    hook(buid, taken, phase)

            hooks = (_after_skip,)
        single_hook = hooks[0] if hooks is not None and len(hooks) == 1 else None

        replaying = replay is not None
        if replaying:
            r_uids = replay.uids.tolist()
            r_taken = replay.taken.tolist()
            n_replay = len(r_uids)

        trace_uids: Optional[List[int]] = [] if collect_trace else None
        trace_taken: Optional[List[bool]] = [] if collect_trace else None

        visits = [0] * len(kind)
        stack: List[int] = []
        stop_reason = StopReason.HALTED
        instructions = 0
        branches = 0
        taken_total = 0
        calls = 0
        steps = 0

        while True:
            steps += 1
            if steps > max_steps:
                stop_reason = StopReason.STEP_LIMIT
                break
            visits[i] += 1
            instructions += size[i]
            if max_instructions is not None and instructions >= max_instructions:
                stop_reason = StopReason.INSTRUCTION_LIMIT
                break
            k = kind[i]
            if k == KIND_BRANCH:
                if max_branches is not None and branches >= max_branches:
                    stop_reason = StopReason.BRANCH_LIMIT
                    break
                dense = branch_dense[i]
                buid = branch_uids[dense]
                # Inlined PhaseCursor.advance().
                phase = cur_phase
                remaining -= 1
                if remaining <= 0 and seg_i + 1 < nsegs:
                    seg_i += 1
                    cur_phase = seg_phase[seg_i]
                    remaining = seg_len[seg_i]
                if replaying:
                    if branches >= n_replay or r_uids[branches] != buid:
                        raise ReplayDivergence(
                            f"replay diverged at branch {branches}: program "
                            f"retires uid {buid}, stream has "
                            f"{r_uids[branches] if branches < n_replay else 'EOF'}"
                        )
                    taken = r_taken[branches]
                else:
                    occ = occs[dense]
                    occs[dense] = occ + 1
                    unit_list = units[dense]
                    if occ >= len(unit_list):
                        unit_list = outcome_table.grow(buid, occ)
                        units[dense] = unit_list
                    taken = unit_list[occ] < probs[dense][phase]
                branches += 1
                if taken:
                    taken_total += 1
                if trace_uids is not None:
                    trace_uids.append(buid)
                    trace_taken.append(taken)
                if single_hook is not None:
                    single_hook(buid, taken, phase)
                elif hooks is not None:
                    for hook in hooks:
                        hook(buid, taken, phase)
                if taken:
                    if conts[i]:
                        stack.extend(conts[i])
                    i = target[i]
                else:
                    i = fall[i]
            elif k == KIND_FALL:
                i = fall[i]
            elif k == KIND_JUMP:
                if conts[i]:
                    stack.extend(conts[i])
                i = target[i]
            elif k == KIND_CALL:
                calls += 1
                stack.append(fall[i])
                i = target[i]
            elif k == KIND_RET:
                if not stack:
                    stop_reason = StopReason.STACK_UNDERFLOW
                    break
                i = stack.pop()
            else:  # KIND_HALT
                stop_reason = StopReason.HALTED
                break

        if replaying and (
            branches != n_replay
            or stop_reason is not replay.summary.stop_reason
        ):
            raise ReplayDivergence(
                f"replay ended with {branches}/{n_replay} branches "
                f"({stop_reason.value} vs recorded "
                f"{replay.summary.stop_reason.value})"
            )

        uid = cp.uid
        summary = ExecutionSummary(
            instructions=instructions,
            branches=branches,
            taken_branches=taken_total,
            calls=calls,
            steps=steps,
            stop_reason=stop_reason,
            block_visits={
                uid[j]: count for j, count in enumerate(visits) if count
            },
        )
        if collect_trace:
            self.last_trace = TraceData(
                uids=np.asarray(trace_uids, dtype=np.int64),
                taken=np.asarray(trace_taken, dtype=bool),
                summary=summary,
            )
        return summary

    def run_traced(
        self, start: Optional[Tuple[str, str]] = None
    ) -> TraceData:
        """Run and return the recorded branch stream + summary."""
        self.run(start=start, collect_trace=True)
        return self.last_trace


def run_workload(
    workload,
    program: Optional[Program] = None,
    branch_hooks: Sequence = (),
    collect_trace: bool = False,
    replay: Optional[TraceData] = None,
):
    """Convenience: a compiled run of a workload (or a packed variant)."""
    executor = CompiledExecutor(
        program or workload.program,
        workload.behavior,
        workload.phase_script,
        branch_hooks=branch_hooks,
        limits=workload.limits,
    )
    summary = executor.run(collect_trace=collect_trace, replay=replay)
    if collect_trace:
        return executor.last_trace
    return summary
