"""Figure 10: speedup from package relayout and rescheduling.

For each benchmark input, the original binary and each configuration's
packed binary run under the Table 2 timing model
(:mod:`repro.cpu.timing`); speedup is baseline cycles over packed
cycles.  As in the paper, "the average speedup forms a pattern of
improvement over the four experiments that correlates to the
improvements in coverage".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cpu.timing import TimingSimulator
from repro.optimize.passes import baseline_block_costs, packed_block_costs
from repro.postlink.vacuum import ProfileResult
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE, BenchmarkInput, load_benchmark

from .configs import FOUR_CONFIGS, FormationConfig
from .parallel import parallel_map
from .report import format_table


@dataclass
class SpeedupRow:
    """Figure 10 bars for one benchmark input."""

    benchmark: str
    input_name: str
    baseline_cycles: int
    #: packed cycles per configuration, FOUR_CONFIGS order
    packed_cycles: List[int]

    @property
    def name(self) -> str:
        return f"{self.benchmark} {self.input_name}"

    @property
    def speedups(self) -> List[float]:
        return [
            self.baseline_cycles / cycles if cycles else 0.0
            for cycles in self.packed_cycles
        ]


@dataclass
class SpeedupReport:
    rows: List[SpeedupRow] = field(default_factory=list)

    def averages(self) -> List[float]:
        if not self.rows:
            return [0.0] * len(FOUR_CONFIGS)
        return [
            sum(row.speedups[i] for row in self.rows) / len(self.rows)
            for i in range(len(FOUR_CONFIGS))
        ]

    def render(self) -> str:
        headers = ["benchmark"] + [c.label for c in FOUR_CONFIGS]
        table_rows = [
            [row.name] + [f"{s:.3f}" for s in row.speedups] for row in self.rows
        ]
        table_rows.append(
            ["average"] + [f"{a:.3f}" for a in self.averages()]
        )
        return format_table(
            headers,
            table_rows,
            title="Figure 10: speedup from package relayout and rescheduling",
        )


def measure_speedups(
    workload: Workload,
    configs: Sequence[FormationConfig] = FOUR_CONFIGS,
    profile: Optional[ProfileResult] = None,
) -> SpeedupRow:
    """Baseline + per-config packed timing for one workload."""
    baseline = TimingSimulator(
        workload.program, baseline_block_costs(workload.program)
    ).run(workload)

    profile = profile or configs[-1].packer().profile(workload)
    packed_cycles = []
    for config in configs:
        result = config.packer().pack(workload, profile=profile)
        costs = packed_block_costs(
            result.packed.program, result.packed.package_names
        )
        timing = TimingSimulator(result.packed.program, costs).run(workload)
        packed_cycles.append(timing.cycles)

    entry = workload.meta.get("entry")
    return SpeedupRow(
        benchmark=entry.benchmark if entry else workload.name,
        input_name=entry.input_name if entry else "",
        baseline_cycles=baseline.cycles,
        packed_cycles=packed_cycles,
    )


def _measure_entry(args: Tuple[BenchmarkInput, Optional[float]]) -> SpeedupRow:
    entry, scale = args
    workload = load_benchmark(entry.benchmark, entry.input_name, scale)
    return measure_speedups(workload)


def run_figure10(
    entries: Optional[Sequence[BenchmarkInput]] = None,
    scale: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[int] = None,
) -> SpeedupReport:
    """Regenerate Figure 10 over the (sub)suite."""
    report = SpeedupReport()
    work = [(entry, scale) for entry in entries or SUITE]
    report.rows = parallel_map(_measure_entry, work, jobs=jobs)
    if verbose:
        for row in report.rows:
            bars = " ".join(f"{s:.3f}" for s in row.speedups)
            print(f"  {row.name:18s} {bars}", flush=True)
    return report
