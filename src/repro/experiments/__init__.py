"""Experiment harnesses regenerating the paper's tables and figures."""

from .ablations import (
    AblationReport,
    run_bbb_ablation,
    run_max_blocks_ablation,
    run_ordering_ablation,
)
from .categorize import (
    CategorizationReport,
    CategorizationRow,
    categorize_branch,
    categorize_workload,
    run_figure9,
)
from .configs import FOUR_CONFIGS, FULL_CONFIG, FormationConfig
from .coverage import CoverageReport, CoverageRow, measure_input, run_figure8
from .expansion import ExpansionReport, ExpansionRow, run_table3
from .fault_campaign import (
    DEFAULT_FAULT_ENTRIES,
    EntrySummary,
    FaultCampaignReport,
    TrialResult,
    run_fault_campaign,
)
from .report import format_percent, format_series, format_table
from .speedup import SpeedupReport, SpeedupRow, measure_speedups, run_figure10
from .table1 import Table1Report, Table1Row, run_table1
from .timeline import detection_latencies, render_timeline

__all__ = [
    "AblationReport",
    "CategorizationReport",
    "CategorizationRow",
    "CoverageReport",
    "CoverageRow",
    "DEFAULT_FAULT_ENTRIES",
    "EntrySummary",
    "ExpansionReport",
    "ExpansionRow",
    "FaultCampaignReport",
    "FOUR_CONFIGS",
    "FULL_CONFIG",
    "FormationConfig",
    "SpeedupReport",
    "SpeedupRow",
    "Table1Report",
    "Table1Row",
    "TrialResult",
    "categorize_branch",
    "categorize_workload",
    "detection_latencies",
    "render_timeline",
    "format_percent",
    "format_series",
    "format_table",
    "measure_input",
    "measure_speedups",
    "run_bbb_ablation",
    "run_figure8",
    "run_figure9",
    "run_fault_campaign",
    "run_figure10",
    "run_max_blocks_ablation",
    "run_ordering_ablation",
    "run_table1",
    "run_table3",
]
