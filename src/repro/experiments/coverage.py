"""Figure 8: percent of dynamic instructions executed inside packages.

For each Table 1 benchmark input, the workload is profiled once under
the Hot Spot Detector; then each of the four formation configurations
(inference x linking) builds its own packages and the packed binary is
re-run to tabulate dynamic instructions in packages versus original
code — exactly the paper's section 5.1 methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.postlink.vacuum import ProfileResult
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE, BenchmarkInput, load_benchmark

from .configs import FOUR_CONFIGS, FormationConfig
from .parallel import parallel_map
from .report import format_percent, format_table


@dataclass
class CoverageRow:
    """Figure 8 bars for one benchmark input."""

    benchmark: str
    input_name: str
    #: coverage fraction per configuration, in FOUR_CONFIGS order
    coverage: List[float]
    phases: int

    @property
    def name(self) -> str:
        return f"{self.benchmark} {self.input_name}"


@dataclass
class CoverageReport:
    rows: List[CoverageRow] = field(default_factory=list)

    def averages(self) -> List[float]:
        if not self.rows:
            return [0.0] * len(FOUR_CONFIGS)
        return [
            sum(row.coverage[i] for row in self.rows) / len(self.rows)
            for i in range(len(FOUR_CONFIGS))
        ]

    def render(self) -> str:
        headers = ["benchmark", "phases"] + [c.label for c in FOUR_CONFIGS]
        table_rows = [
            [row.name, row.phases] + [format_percent(c) for c in row.coverage]
            for row in self.rows
        ]
        table_rows.append(
            ["average", ""] + [format_percent(a) for a in self.averages()]
        )
        return format_table(
            headers,
            table_rows,
            title="Figure 8: percent of dynamic instructions from within packages",
        )


def measure_input(
    workload: Workload,
    configs: Sequence[FormationConfig] = FOUR_CONFIGS,
    profile: Optional[ProfileResult] = None,
) -> CoverageRow:
    """All configuration bars for one workload (profile shared)."""
    entry = workload.meta.get("entry")
    profile = profile or configs[-1].packer().profile(workload)
    coverage = []
    for config in configs:
        result = config.packer().pack(workload, profile=profile)
        coverage.append(result.coverage.package_fraction)
    return CoverageRow(
        benchmark=entry.benchmark if entry else workload.name,
        input_name=entry.input_name if entry else "",
        coverage=coverage,
        phases=profile.phase_count,
    )


def _measure_entry(args: Tuple[BenchmarkInput, Optional[float]]) -> CoverageRow:
    entry, scale = args
    workload = load_benchmark(entry.benchmark, entry.input_name, scale)
    return measure_input(workload)


def run_figure8(
    entries: Optional[Sequence[BenchmarkInput]] = None,
    scale: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[int] = None,
) -> CoverageReport:
    """Regenerate Figure 8 over the (sub)suite."""
    report = CoverageReport()
    work = [(entry, scale) for entry in entries or SUITE]
    report.rows = parallel_map(_measure_entry, work, jobs=jobs)
    if verbose:
        for row in report.rows:
            bars = " ".join(format_percent(c) for c in row.coverage)
            print(f"  {row.name:18s} {bars}", flush=True)
    return report
