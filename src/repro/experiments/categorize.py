"""Figure 9: categorization of hot-spot branch behavior across phases.

"First, the branches were separated into two groups, those whose
static branch appears in only a single phase (Unique) and those whose
static branch appears in multiple phases (Multi) ...  The unique
branches were then divided into biased and unbiased types ...  Multi
branches that show a bias ... that vary between phases (> 70%) are
categorized as Multi High, those with more moderate swings, between
(40%) and (70%), are Multi Low, while all other biased branches are
Multi Same.  Any Multi branches that never show a bias are categorized
as Multi No Bias."

Each static branch is weighted by its dynamic execution count, so the
categories report *fractions of dynamic branches* like the paper's
stacked bars; branches never captured in any hot spot are reported as
"Not in hot spot".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.listeners import HSDListener
from repro.hsd.detector import HotSpotDetector
from repro.hsd.records import HotSpotRecord
from repro.program.image import ProgramImage
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE, BenchmarkInput, load_benchmark

from .parallel import parallel_map
from .report import format_percent, format_table

CATEGORIES = [
    "unique_biased",
    "unique_unbiased",
    "multi_high",
    "multi_low",
    "multi_same",
    "multi_no_bias",
    "not_in_hot_spot",
]

#: Taken-fraction boundary for calling a branch biased (70/30).
BIAS_THRESHOLD = 0.7
#: Swing boundaries between Multi High / Low / Same.
HIGH_SWING = 0.7
LOW_SWING = 0.4


def categorize_branch(fractions: Sequence[float]) -> str:
    """Category of one static branch from its per-phase taken fractions."""
    if not fractions:
        return "not_in_hot_spot"

    def biased(fraction: float) -> bool:
        return fraction >= BIAS_THRESHOLD or fraction <= 1.0 - BIAS_THRESHOLD

    if len(fractions) == 1:
        return "unique_biased" if biased(fractions[0]) else "unique_unbiased"
    if not any(biased(f) for f in fractions):
        return "multi_no_bias"
    swing = max(fractions) - min(fractions)
    if swing > HIGH_SWING:
        return "multi_high"
    if swing >= LOW_SWING:
        return "multi_low"
    return "multi_same"


@dataclass
class CategorizationRow:
    """Figure 9 stack for one benchmark input (fractions of dynamic
    branch executions)."""

    benchmark: str
    input_name: str
    fractions: Dict[str, float]

    @property
    def name(self) -> str:
        return f"{self.benchmark} {self.input_name}"

    def multi_opportunity(self) -> float:
        """The paper's phase-customization opportunity: High + Low."""
        return self.fractions["multi_high"] + self.fractions["multi_low"]


@dataclass
class CategorizationReport:
    rows: List[CategorizationRow] = field(default_factory=list)

    def averages(self) -> Dict[str, float]:
        if not self.rows:
            return {c: 0.0 for c in CATEGORIES}
        return {
            c: sum(r.fractions[c] for r in self.rows) / len(self.rows)
            for c in CATEGORIES
        }

    def render(self) -> str:
        headers = ["benchmark"] + CATEGORIES
        table_rows = [
            [r.name] + [format_percent(r.fractions[c]) for c in CATEGORIES]
            for r in self.rows
        ]
        avg = self.averages()
        table_rows.append(["average"] + [format_percent(avg[c]) for c in CATEGORIES])
        return format_table(
            headers,
            table_rows,
            title="Figure 9: categorization of hot spot branch behavior",
        )


class _ExecutionCounter:
    """Branch hook counting dynamic executions per static branch."""

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    def __call__(self, branch_uid: int, _taken: bool, _phase: int) -> None:
        self.counts[branch_uid] = self.counts.get(branch_uid, 0) + 1


def categorize_workload(workload: Workload) -> CategorizationRow:
    """Profile one workload and bucket its dynamic branches."""
    image = ProgramImage(workload.program)
    listener = HSDListener(
        HotSpotDetector(), dict(image.instruction_address)
    )
    counter = _ExecutionCounter()
    workload.run(branch_hooks=[listener, counter])

    # Collect per-branch taken fractions across the unique phases.
    address_of: Dict[int, int] = {}
    for uid in counter.counts:
        address_of[uid] = image.instruction_address[uid]
    by_address: Dict[int, List[float]] = {}
    for record in listener.unique_records:
        for address, profile in record.branches.items():
            by_address.setdefault(address, []).append(profile.taken_fraction)

    weights = {c: 0 for c in CATEGORIES}
    total = 0
    for uid, count in counter.counts.items():
        fractions = by_address.get(address_of[uid], [])
        weights[categorize_branch(fractions)] += count
        total += count

    entry = workload.meta.get("entry")
    fractions = {
        c: (weights[c] / total if total else 0.0) for c in CATEGORIES
    }
    return CategorizationRow(
        benchmark=entry.benchmark if entry else workload.name,
        input_name=entry.input_name if entry else "",
        fractions=fractions,
    )


def _measure_entry(
    args: Tuple[BenchmarkInput, Optional[float]]
) -> CategorizationRow:
    entry, scale = args
    workload = load_benchmark(entry.benchmark, entry.input_name, scale)
    return categorize_workload(workload)


def run_figure9(
    entries: Optional[Sequence[BenchmarkInput]] = None,
    scale: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[int] = None,
) -> CategorizationReport:
    """Regenerate Figure 9 over the (sub)suite."""
    report = CategorizationReport()
    work = [(entry, scale) for entry in entries or SUITE]
    report.rows = parallel_map(_measure_entry, work, jobs=jobs)
    if verbose:
        for row in report.rows:
            print(
                f"  {row.name:18s} "
                + " ".join(
                    f"{c}={format_percent(row.fractions[c])}" for c in CATEGORIES
                ),
                flush=True,
            )
    return report
