"""The four region-formation configurations of Figures 8 and 10.

"The experiments vary the use of hot block inference (Section 3.2.3)
and inter-package ordering (Section 3.3.4).  Four bars are listed for
each benchmark input, one without inference or linking, one without
inference but with linking, one with inference but without linking,
and one with both inference and linking."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.api import PipelineConfig
from repro.postlink.vacuum import VacuumPacker
from repro.regions.config import RegionConfig


@dataclass(frozen=True)
class FormationConfig:
    """One Figure 8 / Figure 10 bar."""

    label: str
    inference: bool
    linking: bool

    def pipeline_config(self, **changes) -> PipelineConfig:
        return PipelineConfig(
            region=RegionConfig(inference=self.inference),
            link=self.linking,
        ).replace(**changes)

    def packer(self, **changes) -> VacuumPacker:
        return VacuumPacker(self.pipeline_config(**changes))


#: Paper bar order: (inference?, linking?) =
#: (no, no), (no, yes), (yes, no), (yes, yes).
FOUR_CONFIGS: List[FormationConfig] = [
    FormationConfig("w/o inference, w/o linking", inference=False, linking=False),
    FormationConfig("w/o inference, w/ linking", inference=False, linking=True),
    FormationConfig("w/ inference, w/o linking", inference=True, linking=False),
    FormationConfig("w/ inference, w/ linking", inference=True, linking=True),
]

#: The paper's full configuration (the headline numbers).
FULL_CONFIG = FOUR_CONFIGS[3]
