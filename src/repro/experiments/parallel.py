"""Deterministic process-level fan-out for the experiment drivers.

Every ``run_*`` driver in this package iterates independent units of
work — one benchmark input per Table 1 / Figure 8 / Figure 10 row, one
entry per fault-campaign summary — whose results depend only on their
own inputs (all randomness is seeded per unit, never drawn from shared
state).  :func:`parallel_map` fans those units out over a
``ProcessPoolExecutor`` while preserving input order, so a parallel run
produces byte-identical reports to a serial one.

``jobs`` resolution: an explicit argument wins; otherwise the
``REPRO_JOBS`` environment variable; otherwise 1 (serial).  ``jobs=0``
means "one worker per CPU".  With one job (or one item) no pool is
created at all — the driver runs inline exactly as before, which also
keeps pdb/profilers usable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

_ITEM = TypeVar("_ITEM")
_RESULT = TypeVar("_RESULT")

_ENV_JOBS = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from an explicit value, ``REPRO_JOBS``, or 1."""
    if jobs is None:
        env = os.environ.get(_ENV_JOBS, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(
    fn: Callable[[_ITEM], _RESULT],
    items: Iterable[_ITEM],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[_RESULT]:
    """``[fn(item) for item in items]``, optionally across processes.

    ``fn`` must be a module-level (picklable) callable.  Results come
    back in input order regardless of completion order; a worker
    exception propagates to the caller just as it would serially.
    ``chunksize`` batches items per worker dispatch — leave it at 1
    for coarse units (one benchmark entry, one packing shard), raise
    it when the per-item work is small relative to pickling overhead.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    from repro.obs import span

    with span("parallel.map", items=len(items), jobs=workers):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=max(1, chunksize)))


__all__ = ["parallel_map", "resolve_jobs"]
