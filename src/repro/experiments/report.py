"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def format_series(title: str, pairs: Sequence) -> str:
    """Render ``name: value`` pairs as a labeled block."""
    width = max((len(str(name)) for name, _ in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"  {str(name).ljust(width)}  {_fmt(value)}" for name, value in pairs)
    return "\n".join(lines)
