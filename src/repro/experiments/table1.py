"""Table 1: the benchmark/input inventory with dynamic sizes.

The paper's Table 1 lists each benchmark, its inputs, and the dynamic
instruction count.  Here the counts are *measured* by running each
workload to its budget, alongside the scaled-down target derived from
the paper (see DESIGN.md, "Substitutions": ~1/1000 scale with a
detector-imposed floor on phase lengths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from typing import Tuple

from repro.workloads.suite import SUITE, BenchmarkInput, load_benchmark

from .parallel import parallel_map
from .report import format_table


@dataclass
class Table1Row:
    benchmark: str
    input_name: str
    input_description: str
    paper_minsts: int
    measured_instructions: int
    measured_branches: int
    static_instructions: int
    functions: int


@dataclass
class Table1Report:
    rows: List[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        headers = [
            "benchmark", "input", "paper #inst", "measured #inst",
            "branches", "static inst", "functions",
        ]
        table_rows = [
            [
                r.benchmark,
                f"{r.input_name}: {r.input_description}",
                f"{r.paper_minsts}M",
                f"{r.measured_instructions:,}",
                f"{r.measured_branches:,}",
                f"{r.static_instructions:,}",
                r.functions,
            ]
            for r in self.rows
        ]
        return format_table(
            headers, table_rows,
            title="Table 1: benchmarks and inputs used in experiments",
        )


def _measure_entry(args: Tuple[BenchmarkInput, Optional[float]]) -> Table1Row:
    entry, scale = args
    workload = load_benchmark(entry.benchmark, entry.input_name, scale)
    summary = workload.run()
    return Table1Row(
        benchmark=entry.benchmark,
        input_name=entry.input_name,
        input_description=entry.input_description,
        paper_minsts=entry.paper_minsts,
        measured_instructions=summary.instructions,
        measured_branches=summary.branches,
        static_instructions=workload.program.static_size(),
        functions=len(workload.program.functions),
    )


def run_table1(
    entries: Optional[Sequence[BenchmarkInput]] = None,
    scale: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[int] = None,
) -> Table1Report:
    """Regenerate Table 1 with measured dynamic sizes."""
    report = Table1Report()
    work = [(entry, scale) for entry in entries or SUITE]
    report.rows = parallel_map(_measure_entry, work, jobs=jobs)
    if verbose:
        for row in report.rows:
            print(
                f"  {row.benchmark:12s} {row.input_name}: "
                f"{row.measured_instructions:,} insts", flush=True,
            )
    return report
