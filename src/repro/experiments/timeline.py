"""ASCII phase timelines: detections vs ground truth.

Renders a fixed-width lane per unique phase record over the branch
timeline, with the ground-truth phase script above it — a quick way to
*see* the Hot Spot Detector's reaction time and any spurious
transition-window records::

    truth    000000000000111111111111222222222222
    record 0 ^###########
    record 1             ^###########
    record 2                         ^###########

``^`` marks the detection point; ``#`` marks the span during which the
record was the most recent detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.phases import PhaseScript
from repro.hsd.records import HotSpotRecord


@dataclass
class TimelineLane:
    label: str
    cells: str


def render_truth_lane(script: PhaseScript, width: int) -> str:
    """Ground-truth phase id per timeline cell (mod 10 for display)."""
    total = script.total_branches
    cells = []
    for i in range(width):
        branch = min(int((i + 0.5) * total / width), total - 1)
        cells.append(str(script.phase_at(branch) % 10))
    return "".join(cells)


def render_record_lanes(
    records: Sequence[HotSpotRecord], total_branches: int, width: int
) -> List[TimelineLane]:
    """One lane per record: detection point plus reign span."""
    ordered = sorted(records, key=lambda r: r.detected_at_branch)
    lanes = []
    for i, record in enumerate(ordered):
        start = record.detected_at_branch
        end = (
            ordered[i + 1].detected_at_branch
            if i + 1 < len(ordered)
            else total_branches
        )
        cells = []
        for col in range(width):
            branch = (col + 0.5) * total_branches / width
            lo = col * total_branches / width
            hi = (col + 1) * total_branches / width
            if lo <= start < hi:
                cells.append("^")
            elif start < branch <= end:
                cells.append("#")
            else:
                cells.append(" ")
        lanes.append(TimelineLane(f"record {record.index}", "".join(cells)))
    return lanes


def render_timeline(
    script: PhaseScript,
    records: Sequence[HotSpotRecord],
    width: int = 72,
    total_branches: Optional[int] = None,
) -> str:
    """Full ASCII timeline: truth lane + one lane per record."""
    total = total_branches or script.total_branches
    label_width = max(
        [len("truth")] + [len(f"record {r.index}") for r in records]
    )
    lines = [f"{'truth'.ljust(label_width)}  {render_truth_lane(script, width)}"]
    for lane in render_record_lanes(records, total, width):
        lines.append(f"{lane.label.ljust(label_width)}  {lane.cells}")
    lines.append(
        f"{''.ljust(label_width)}  0{'.' * (width - 2)}{total:,}".rstrip()
    )
    return "\n".join(lines)


def detection_latencies(
    script: PhaseScript, records: Sequence[HotSpotRecord]
) -> List[int]:
    """Branches between each phase transition and the next detection.

    A rough reaction-time metric: for every ground-truth transition,
    how long until *some* unique record was detected.
    """
    detections = sorted(r.detected_at_branch for r in records)
    latencies = []
    for boundary in [0] + script.transitions():
        after = [d for d in detections if d >= boundary]
        if after:
            latencies.append(after[0] - boundary)
    return latencies
