"""Table 3: code expansion from package construction.

"Table 3 shows the percentage growth of static instructions due to
package construction and averages 12% ...  Table 3 additionally shows
the percentage of static instructions that were selected to be a part
of at least one package.  An average of 4.5% of instructions were
selected, yielding an average replication factor ... of approximately
2.6."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.workloads.suite import SUITE, BenchmarkInput, load_benchmark

from .configs import FULL_CONFIG
from .parallel import parallel_map
from .report import format_table


@dataclass
class ExpansionRow:
    """One Table 3 row."""

    benchmark: str
    input_name: str
    pct_increase: float
    pct_selected: float
    replication: float

    @property
    def name(self) -> str:
        return f"{self.benchmark} {self.input_name}"


@dataclass
class ExpansionReport:
    rows: List[ExpansionRow] = field(default_factory=list)

    def average_increase(self) -> float:
        return (
            sum(r.pct_increase for r in self.rows) / len(self.rows)
            if self.rows
            else 0.0
        )

    def average_selected(self) -> float:
        return (
            sum(r.pct_selected for r in self.rows) / len(self.rows)
            if self.rows
            else 0.0
        )

    def average_replication(self) -> float:
        return (
            sum(r.replication for r in self.rows) / len(self.rows)
            if self.rows
            else 0.0
        )

    def render(self) -> str:
        headers = ["benchmark", "% incr in size", "% static inst selected",
                   "replication"]
        table_rows = [
            [r.name, f"{r.pct_increase:.1f}", f"{r.pct_selected:.1f}",
             f"{r.replication:.2f}"]
            for r in self.rows
        ]
        table_rows.append([
            "average",
            f"{self.average_increase():.1f}",
            f"{self.average_selected():.1f}",
            f"{self.average_replication():.2f}",
        ])
        return format_table(headers, table_rows, title="Table 3: code expansion")


def _measure_entry(args: Tuple[BenchmarkInput, Optional[float]]) -> ExpansionRow:
    entry, scale = args
    workload = load_benchmark(entry.benchmark, entry.input_name, scale)
    result = FULL_CONFIG.packer().pack(workload)
    row_data = result.expansion_row()
    return ExpansionRow(
        benchmark=entry.benchmark,
        input_name=entry.input_name,
        pct_increase=row_data["pct_increase"],
        pct_selected=row_data["pct_selected"],
        replication=row_data["replication"],
    )


def run_table3(
    entries: Optional[Sequence[BenchmarkInput]] = None,
    scale: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[int] = None,
) -> ExpansionReport:
    """Regenerate Table 3 (full configuration) over the (sub)suite."""
    report = ExpansionReport()
    work = [(entry, scale) for entry in entries or SUITE]
    report.rows = parallel_map(_measure_entry, work, jobs=jobs)
    if verbose:
        for row in report.rows:
            print(
                f"  {row.name:18s} incr={row.pct_increase:5.1f}% "
                f"sel={row.pct_selected:4.1f}% repl={row.replication:.2f}",
                flush=True,
            )
    return report
