"""Fault-injection campaign: how does packing degrade on bad profiles?

The paper's premise is that hardware profiles are *lossy* — BBB
evictions, saturated 9-bit counters, partial snapshots — and that
software must "package the imprecise data" anyway (section 2).  This
campaign quantifies that robustness end to end: it perturbs the
hot-spot records of real profiling runs with seeded faults
(:mod:`repro.hsd.faults`), re-packs under the quarantine loop, and
measures

* **survival** — did the non-strict pipeline complete without an
  uncaught exception?
* **coverage retained** — packed coverage on the faulty profile as a
  fraction of the fault-free baseline coverage;
* **quarantine activity** — phases dropped, diagnostics emitted, and
  whether the structural validators passed on the survivors.

Run it via ``python -m repro faults --seed 0 --trials 5``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api import PipelineConfig
from repro.hsd.faults import ALL_FAULT_MODES, FaultInjector, FaultSpec
from repro.postlink.vacuum import VacuumPacker
from repro.workloads.suite import SUITE, BenchmarkInput, load_benchmark

from .parallel import parallel_map
from .report import format_table

#: Default campaign subset: the suite's smallest dynamic footprints,
#: so a multi-trial campaign stays tractable (CI runs five trials).
DEFAULT_FAULT_ENTRIES: Tuple[str, ...] = (
    "134.perl/C",
    "134.perl/B",
    "130.li/B",
    "255.vortex/A",
)


@dataclass
class TrialResult:
    """One faulty pack attempt."""

    entry: str
    seed: int
    faults_injected: int
    records_in: int
    survived: bool
    error: str = ""
    coverage: float = 0.0
    retained: float = 0.0
    packages: int = 0
    quarantined: int = 0
    diagnostics: int = 0
    validation_ok: bool = False


@dataclass
class EntrySummary:
    """Aggregate over one benchmark input's trials."""

    entry: str
    baseline_coverage: float
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def survival_rate(self) -> float:
        if not self.trials:
            return 1.0
        return sum(t.survived for t in self.trials) / len(self.trials)

    @property
    def mean_retained(self) -> float:
        survivors = [t for t in self.trials if t.survived]
        if not survivors:
            return 0.0
        return sum(t.retained for t in survivors) / len(survivors)

    @property
    def mean_quarantined(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.quarantined for t in self.trials) / len(self.trials)


@dataclass
class FaultCampaignReport:
    """Full campaign result across entries."""

    entries: List[EntrySummary]
    seed: int
    trials_per_entry: int
    modes: Tuple[str, ...]
    rate: float

    @property
    def survival_rate(self) -> float:
        all_trials = [t for e in self.entries for t in e.trials]
        if not all_trials:
            return 1.0
        return sum(t.survived for t in all_trials) / len(all_trials)

    @property
    def mean_retained(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e.mean_retained for e in self.entries) / len(self.entries)

    def failures(self) -> List[TrialResult]:
        return [t for e in self.entries for t in e.trials if not t.survived]

    @property
    def ok(self) -> bool:
        return not self.failures()

    def render(self) -> str:
        rows = []
        for entry in self.entries:
            rows.append([
                entry.entry,
                len(entry.trials),
                f"{100.0 * entry.survival_rate:.0f}%",
                f"{100.0 * entry.baseline_coverage:.1f}%",
                f"{100.0 * entry.mean_retained:.1f}%",
                f"{entry.mean_quarantined:.1f}",
            ])
        table = format_table(
            ["input", "trials", "survived", "baseline cov",
             "cov retained", "quarantined/trial"],
            rows,
            title="Fault-injection campaign "
                  f"(seed={self.seed}, rate={self.rate}, "
                  f"modes={len(self.modes)})",
        )
        lines = [table, ""]
        lines.append(
            f"overall: {100.0 * self.survival_rate:.0f}% survival, "
            f"{100.0 * self.mean_retained:.1f}% of fault-free coverage "
            f"retained on average"
        )
        for failure in self.failures():
            lines.append(
                f"FAILED {failure.entry} seed={failure.seed}: {failure.error}"
            )
        return "\n".join(lines)


def _resolve_entries(
    entries: Optional[Sequence[BenchmarkInput]],
) -> List[BenchmarkInput]:
    if entries:
        return list(entries)
    by_name = {e.full_name: e for e in SUITE}
    return [by_name[name] for name in DEFAULT_FAULT_ENTRIES]


def _run_entry_trials(
    args: Tuple[BenchmarkInput, Optional[float], int, int,
                Tuple[str, ...], float, bool, bool],
) -> EntrySummary:
    """All trials for one benchmark input (the unit of fan-out).

    Module-level so :func:`~repro.experiments.parallel.parallel_map`
    can ship it to worker processes; trial seeds are ``seed + trial``
    regardless of scheduling, so parallel runs reproduce serial ones
    exactly.
    """
    entry, scale, seed, trials, modes, rate, strict, verbose, config_doc = args
    spec = FaultSpec(modes=modes, rate=rate)
    base = (
        PipelineConfig.from_dict(config_doc) if config_doc
        else PipelineConfig()
    )
    packer = VacuumPacker(base.replace(strict=strict))

    workload = load_benchmark(entry.benchmark, entry.input_name, scale)
    profile = packer.profile(workload)
    baseline = packer.pack(workload, profile)
    baseline_cov = baseline.coverage.package_fraction
    summary = EntrySummary(entry=entry.full_name,
                           baseline_coverage=baseline_cov)

    for trial in range(trials):
        trial_seed = seed + trial
        injector = FaultInjector(seed=trial_seed, spec=spec,
                                 hsd_config=packer.hsd_config)
        faulty_records, log = injector.inject(profile.records)
        faulty_profile = dataclasses.replace(
            profile, records=faulty_records
        )
        result = TrialResult(
            entry=entry.full_name,
            seed=trial_seed,
            faults_injected=log.total(),
            records_in=len(faulty_records),
            survived=False,
        )
        try:
            pack = packer.pack(workload, faulty_profile)
        except Exception as exc:  # noqa: BLE001 - the metric itself
            result.error = f"{type(exc).__name__}: {exc}"
        else:
            result.survived = True
            result.coverage = pack.coverage.package_fraction
            result.retained = (
                result.coverage / baseline_cov if baseline_cov else 1.0
            )
            result.packages = len(pack.packages)
            result.quarantined = len(pack.quarantined_phases())
            result.diagnostics = len(pack.diagnostics)
            result.validation_ok = (
                pack.validation.ok if pack.validation is not None else True
            )
        summary.trials.append(result)
        if verbose:
            status = "ok" if result.survived else "DIED"
            print(f"  {entry.full_name} seed={trial_seed} {status} "
                  f"faults={result.faults_injected} "
                  f"retained={result.retained:.1%}", flush=True)
    return summary


def run_fault_campaign(
    entries: Optional[Sequence[BenchmarkInput]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    trials: int = 20,
    modes: Sequence[str] = ALL_FAULT_MODES,
    rate: float = 0.25,
    strict: bool = False,
    verbose: bool = False,
    jobs: Optional[int] = None,
    config: Optional[PipelineConfig] = None,
) -> FaultCampaignReport:
    """Run ``trials`` seeded fault-injection packs per benchmark input.

    Each entry is profiled once; every trial perturbs that profile with
    ``FaultInjector(seed + trial)`` and re-packs.  ``strict=True``
    packs with the quarantine loop disabled (first error raises) —
    useful to demonstrate what degraded mode is saving you from.
    ``config`` is the base :class:`~repro.api.PipelineConfig` every
    pack runs under (``strict`` overrides its strictness).  ``jobs``
    fans entries out across processes (default: ``REPRO_JOBS`` or
    serial) with identical results in any configuration.
    """
    config_doc = config.to_dict() if config is not None else None
    work = [
        (entry, scale, seed, trials, tuple(modes), rate, strict, verbose,
         config_doc)
        for entry in _resolve_entries(entries)
    ]
    summaries = parallel_map(_run_entry_trials, work, jobs=jobs)
    return FaultCampaignReport(
        entries=summaries,
        seed=seed,
        trials_per_entry=trials,
        modes=tuple(modes),
        rate=rate,
    )
