"""Fleet chaos campaign: does the service survive service-scale faults?

The PR-1 fault campaign (:mod:`repro.experiments.fault_campaign`)
corrupts *profile records* and asks whether one pack survives.  This
campaign aims the same philosophy at the fleet service itself: it
simulates a client fleet once, establishes a fault-free control pack,
then replays the full ingest → merge → farm path under each
service-scale fault of :mod:`repro.service.chaos` — a worker process
crashing mid-shard, a shard hanging past its timeout, an artifact-store
entry rotting on disk, a profile truncated mid-upload, a client clock
stamping profiles from the future — and checks two things per trial:

* **survival** — the serve completes without an uncaught exception and
  without degrading any shard to the original layout (the fault budget
  is smaller than the farm's retry budget, so self-healing must win);
* **equivalence** — where the fault is recoverable by construction
  (worker faults, store corruption, clock skew under
  ``MergePolicy.max_epoch_skew``), the packed shard payloads must be
  byte-identical to the fault-free control.  A truncated upload is the
  one lossy mode: there the criterion is that exactly the bad document
  is quarantined and the remaining fleet still merges and packs.

Trials are seeded end to end (fleet simulation, fault placement, farm
backoff), so a failing campaign replays exactly.  Run it via
``python -m repro chaos --seed 0``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import PipelineConfig
from repro.experiments.parallel import resolve_jobs
from repro.obs import default_registry
from repro.service import (
    ALL_SERVICE_FAULT_MODES,
    ArtifactStore,
    ChaosSpec,
    FarmConfig,
    FarmPolicy,
    FleetPackResult,
    FleetProfile,
    IngestResult,
    MergePolicy,
    armed,
    canonical_json,
    corrupt_artifact_entry,
    ingest_dir,
    merge_runs,
    pack_fleet,
    simulate_fleet,
    skew_profile_epoch,
    truncate_profile,
)
from repro.service.chaos import WORKER_FAULT_MODES

from .report import format_table

#: Clock-skew trials clamp runaway epochs to ``median + MAX_EPOCH_SKEW``
#: and keep an epoch window wide enough that no honest client ages out.
EPOCH_WINDOW = 4
MAX_EPOCH_SKEW = 2

#: Worker-fault trials: the chaos budget (one firing) is strictly
#: smaller than the farm's retry budget, so recovery is guaranteed
#: unless the retry machinery itself is broken.
MAX_ATTEMPTS = 3
HANG_SECONDS = 20.0
SHARD_TIMEOUT = 6.0


@dataclass
class ChaosTrial:
    """One fault injection against one full serve."""

    mode: str
    trial: int
    seed: str
    survived: bool = False
    #: Payload equality with the fault-free control; ``None`` when the
    #: mode is lossy by construction (``truncated_profile``).
    matched: Optional[bool] = None
    degraded_shards: int = 0
    retried_shards: int = 0
    quarantined_ingests: int = 0
    corrupt_detected: int = 0
    seconds: float = 0.0
    detail: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.survived and self.matched is not False and not self.error


@dataclass
class ChaosCampaignReport:
    """Full chaos campaign result across fault modes."""

    benchmark: str
    seed: int
    trials_per_mode: int
    modes: Tuple[str, ...]
    jobs: int
    control_phases: int
    control_shards: int
    trials: List[ChaosTrial] = field(default_factory=list)

    @property
    def survival_rate(self) -> float:
        if not self.trials:
            return 1.0
        return sum(t.survived for t in self.trials) / len(self.trials)

    def failures(self) -> List[ChaosTrial]:
        return [t for t in self.trials if not t.ok]

    @property
    def ok(self) -> bool:
        return not self.failures()

    def to_dict(self) -> Dict:
        return {
            "benchmark": self.benchmark,
            "seed": self.seed,
            "trials_per_mode": self.trials_per_mode,
            "modes": list(self.modes),
            "jobs": self.jobs,
            "control": {
                "phases": self.control_phases,
                "shards": self.control_shards,
            },
            "survival_rate": round(self.survival_rate, 6),
            "ok": self.ok,
            "trials": [
                {
                    "mode": t.mode,
                    "trial": t.trial,
                    "seed": t.seed,
                    "survived": t.survived,
                    "matched": t.matched,
                    "ok": t.ok,
                    "degraded_shards": t.degraded_shards,
                    "retried_shards": t.retried_shards,
                    "quarantined_ingests": t.quarantined_ingests,
                    "corrupt_detected": t.corrupt_detected,
                    "seconds": round(t.seconds, 6),
                    "detail": t.detail,
                    "error": t.error,
                }
                for t in self.trials
            ],
        }

    def render(self) -> str:
        by_mode: Dict[str, List[ChaosTrial]] = {}
        for trial in self.trials:
            by_mode.setdefault(trial.mode, []).append(trial)
        rows = []
        for mode in self.modes:
            trials = by_mode.get(mode, [])
            if not trials:
                continue
            matched = [t.matched for t in trials if t.matched is not None]
            rows.append([
                mode,
                len(trials),
                f"{100.0 * sum(t.survived for t in trials) / len(trials):.0f}%",
                (f"{sum(matched)}/{len(matched)}" if matched else "n/a"),
                sum(t.retried_shards for t in trials),
                sum(t.degraded_shards for t in trials),
                f"{sum(t.seconds for t in trials):.1f}s",
            ])
        table = format_table(
            ["fault", "trials", "survived", "matched control", "retries",
             "degraded", "wall"],
            rows,
            title=f"Fleet chaos campaign — {self.benchmark} "
                  f"(seed={self.seed}, control: {self.control_phases} "
                  f"phase(s) / {self.control_shards} shard(s))",
        )
        lines = [table, ""]
        lines.append(
            f"overall: {100.0 * self.survival_rate:.0f}% survival across "
            f"{len(self.trials)} trial(s)"
        )
        for failure in self.failures():
            lines.append(
                f"FAILED {failure.mode} trial={failure.trial}: "
                f"{failure.error or 'payloads diverged from control'}"
            )
        return "\n".join(lines)


def _signature(packed: FleetPackResult) -> str:
    """Canonical bytes of every shard payload, in shard order."""
    return canonical_json([outcome.payload for outcome in packed.outcomes])


def _corrupt_counter() -> float:
    counters = default_registry().snapshot().get("counters", {})
    return float(counters.get("service.artifacts.corrupt", 0.0))


def _serve(
    profiles_dir: Path,
    config: FarmConfig,
    merge_policy: MergePolicy,
    store: ArtifactStore,
    policy: FarmPolicy,
    jobs: int,
) -> Tuple[IngestResult, FleetProfile, FleetPackResult]:
    ingest = ingest_dir(str(profiles_dir))
    fleet = merge_runs(ingest, policy=merge_policy)
    packed = pack_fleet(fleet, config, jobs=jobs, store=store, policy=policy)
    return ingest, fleet, packed


def _copy_profiles(source: Path, destination: Path) -> Path:
    shutil.copytree(source, destination)
    return destination


def run_chaos_campaign(
    benchmark: str = "181.mcf",
    input_name: str = "A",
    scale: Optional[float] = None,
    seed: int = 0,
    trials: int = 1,
    modes: Sequence[str] = ALL_SERVICE_FAULT_MODES,
    runs: int = 6,
    epochs: int = 2,
    shard_size: int = 1,
    jobs: Optional[int] = None,
    work_dir: Optional[str] = None,
    verbose: bool = False,
    config: Optional[PipelineConfig] = None,
) -> ChaosCampaignReport:
    """Run ``trials`` seeded injections per fault mode against a serve.

    The fleet is simulated once; every trial gets a pristine copy of
    whatever state its fault mutates (profile documents, an artifact
    store) plus a fresh chaos token directory, so trials are
    independent and the campaign is deterministic for a given
    ``seed``.  Worker faults need a real process pool — those trials
    run with at least two workers regardless of ``jobs``.
    """
    pipeline = config if config is not None else PipelineConfig()
    workers = resolve_jobs(jobs)
    merge_policy = MergePolicy(
        epoch_window=EPOCH_WINDOW, max_epoch_skew=MAX_EPOCH_SKEW
    )
    farm_config = FarmConfig(
        benchmark=benchmark,
        input_name=input_name,
        scale=scale,
        pipeline=pipeline.to_dict(),
        shard_size=shard_size,
    )
    calm = FarmPolicy(max_attempts=MAX_ATTEMPTS, backoff_base=0.01,
                      backoff_seed=seed)

    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if work_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        work = Path(cleanup.name)
    else:
        work = Path(work_dir)
        work.mkdir(parents=True, exist_ok=True)

    try:
        profiles = work / "profiles"
        simulate_fleet(
            benchmark, input_name, runs=runs, out_dir=str(profiles),
            base_seed=seed, epochs=epochs, scale=scale,
        )

        # Fault-free control: the payload signature every recoverable
        # trial must reproduce.
        _, control_fleet, control_packed = _serve(
            profiles, farm_config, merge_policy,
            ArtifactStore(str(work / "control-store")), calm, workers,
        )
        control_signature = _signature(control_packed)

        report = ChaosCampaignReport(
            benchmark=f"{benchmark}/{input_name}",
            seed=seed,
            trials_per_mode=trials,
            modes=tuple(modes),
            jobs=workers,
            control_phases=len(control_fleet.phases),
            control_shards=len(control_packed.outcomes),
        )
        for mode in modes:
            for number in range(trials):
                trial = _run_trial(
                    mode=mode,
                    number=number,
                    seed=seed,
                    work=work,
                    profiles=profiles,
                    farm_config=farm_config,
                    merge_policy=merge_policy,
                    calm=calm,
                    workers=workers,
                    control_signature=control_signature,
                )
                report.trials.append(trial)
                if verbose:
                    status = "ok" if trial.ok else "FAILED"
                    print(f"  {mode} trial={number} {status} "
                          f"retries={trial.retried_shards} "
                          f"degraded={trial.degraded_shards} "
                          f"{trial.seconds:.1f}s"
                          + (f" — {trial.error}" if trial.error else ""),
                          flush=True)
        return report
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _run_trial(
    mode: str,
    number: int,
    seed: int,
    work: Path,
    profiles: Path,
    farm_config: FarmConfig,
    merge_policy: MergePolicy,
    calm: FarmPolicy,
    workers: int,
    control_signature: str,
) -> ChaosTrial:
    """One fault injection: set the stage, serve, judge the outcome."""
    trial_seed = f"chaos:{seed}:{mode}:{number}"
    rng = random.Random(trial_seed)
    trial_dir = work / f"trial-{mode}-{number:03d}"
    trial_dir.mkdir(parents=True, exist_ok=True)
    trial = ChaosTrial(mode=mode, trial=number, seed=trial_seed)
    started = time.perf_counter()
    try:
        if mode in WORKER_FAULT_MODES:
            _worker_trial(trial, mode, trial_dir, profiles, farm_config,
                          merge_policy, calm, workers, control_signature)
        elif mode == "corrupt_artifact":
            _corrupt_trial(trial, rng, trial_dir, profiles, farm_config,
                           merge_policy, calm, workers, control_signature)
        elif mode == "truncated_profile":
            _truncate_trial(trial, rng, trial_dir, profiles, farm_config,
                            merge_policy, calm, workers)
        elif mode == "epoch_skew":
            _skew_trial(trial, rng, trial_dir, profiles, farm_config,
                        merge_policy, calm, workers, control_signature)
        else:
            trial.error = f"unknown chaos mode {mode!r}"
    except Exception as exc:  # noqa: BLE001 - survival is the metric
        trial.error = f"{type(exc).__name__}: {exc}"
    trial.seconds = time.perf_counter() - started
    return trial


def _judge_recovered(
    trial: ChaosTrial,
    packed: FleetPackResult,
    control_signature: str,
) -> None:
    """Shared verdict for modes that must reproduce the control."""
    trial.degraded_shards = packed.degraded_shards
    trial.retried_shards = packed.retried_shards
    trial.matched = _signature(packed) == control_signature
    if packed.degraded_shards:
        trial.error = (
            f"{packed.degraded_shards} shard(s) degraded to the original "
            f"layout — the chaos budget should be within the retry budget"
        )
    elif not trial.matched:
        trial.error = "packed payloads diverged from the fault-free control"


def _worker_trial(trial, mode, trial_dir, profiles, farm_config,
                  merge_policy, calm, workers, control_signature) -> None:
    # A crash or hang needs a pool to contain it: inline dispatch would
    # take the campaign process down with the worker.
    pool_workers = max(2, workers)
    policy = calm if mode != "shard_hang" else FarmPolicy(
        max_attempts=calm.max_attempts,
        shard_timeout=SHARD_TIMEOUT,
        backoff_base=calm.backoff_base,
        backoff_seed=calm.backoff_seed,
    )
    spec = ChaosSpec(
        mode=mode,
        tokens_dir=str(trial_dir / "tokens"),
        max_triggers=1,
        hang_seconds=HANG_SECONDS,
    )
    with armed(spec):
        _, _, packed = _serve(
            profiles, farm_config, merge_policy,
            ArtifactStore(str(trial_dir / "store")), policy, pool_workers,
        )
    trial.survived = True
    _judge_recovered(trial, packed, control_signature)
    if not trial.error and not packed.retried_shards:
        trial.error = (
            "chaos token was never claimed — the fault did not fire"
        )
    trial.detail = f"pool of {pool_workers}, one {mode} firing"


def _corrupt_trial(trial, rng, trial_dir, profiles, farm_config,
                   merge_policy, calm, workers, control_signature) -> None:
    store = ArtifactStore(str(trial_dir / "store"))
    _serve(profiles, farm_config, merge_policy, store, calm, workers)
    damaged = corrupt_artifact_entry(store.root, rng)
    before = _corrupt_counter()
    _, _, packed = _serve(
        profiles, farm_config, merge_policy, store, calm, workers
    )
    trial.survived = True
    trial.corrupt_detected = int(_corrupt_counter() - before)
    _judge_recovered(trial, packed, control_signature)
    if not trial.error and trial.corrupt_detected < 1:
        trial.error = "store never noticed the corrupt entry"
    if not trial.error and packed.packed_shards < 1:
        trial.error = "corrupt entry was served from cache, not re-packed"
    trial.detail = f"corrupted {Path(damaged).name}"


def _truncate_trial(trial, rng, trial_dir, profiles, farm_config,
                    merge_policy, calm, workers) -> None:
    mutated = _copy_profiles(profiles, trial_dir / "profiles")
    damaged = truncate_profile(mutated, rng)
    ingest, fleet, packed = _serve(
        mutated, farm_config, merge_policy,
        ArtifactStore(str(trial_dir / "store")), calm, workers,
    )
    trial.survived = True
    trial.degraded_shards = packed.degraded_shards
    trial.retried_shards = packed.retried_shards
    trial.quarantined_ingests = len(ingest.rejected)
    if len(ingest.rejected) != 1:
        trial.error = (
            f"expected exactly the truncated document quarantined, got "
            f"{len(ingest.rejected)} rejection(s)"
        )
    elif not fleet.phases:
        trial.error = "surviving fleet merged to zero phases"
    elif packed.degraded_shards:
        trial.error = f"{packed.degraded_shards} shard(s) degraded"
    trial.detail = f"truncated {Path(damaged).name}"


def _skew_trial(trial, rng, trial_dir, profiles, farm_config,
                merge_policy, calm, workers, control_signature) -> None:
    mutated = _copy_profiles(profiles, trial_dir / "profiles")
    damaged = skew_profile_epoch(mutated, rng)
    _, fleet, packed = _serve(
        mutated, farm_config, merge_policy,
        ArtifactStore(str(trial_dir / "store")), calm, workers,
    )
    trial.survived = True
    _judge_recovered(trial, packed, control_signature)
    if not trial.error and fleet.aged_out:
        trial.error = (
            f"one skewed clock aged {fleet.aged_out} honest run(s) out "
            f"of the merge window"
        )
    trial.detail = f"skewed {Path(damaged).name}, clamp at median+" \
                   f"{MAX_EPOCH_SKEW}"


__all__ = [
    "ChaosCampaignReport",
    "ChaosTrial",
    "run_chaos_campaign",
]
