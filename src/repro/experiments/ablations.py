"""Ablation studies on the design choices DESIGN.md calls out.

* **A1 — MAX_BLOCKS**: the heuristic-growth budget of section 3.2.3
  (the paper fixes it at 1).
* **A2 — BBB geometry**: sets/ways of the Branch Behavior Buffer;
  smaller tables lose more branches to contention (section 3.1).
* **A3 — package ordering**: the rank-guided ordering of section 3.3.4
  versus the worst and construction orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api import PipelineConfig
from repro.hsd.config import HSDConfig
from repro.postlink.vacuum import VacuumPacker
from repro.regions.config import RegionConfig
from repro.workloads.suite import load_benchmark

from .parallel import parallel_map
from .report import format_percent, format_table

#: Default subset: inputs whose behavior is sensitive to the ablated
#: parameter (shared-root interpreters for ordering/linking, a branchy
#: benchmark for BBB pressure).
DEFAULT_SUBSET: Sequence[Tuple[str, str]] = (
    ("124.m88ksim", "A"),
    ("134.perl", "B"),
    ("099.go", "A"),
    ("197.parser", "A"),
)


@dataclass
class AblationReport:
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def _max_blocks_row(
    args: Tuple[str, str, Optional[float], Tuple[int, ...]],
) -> List[object]:
    benchmark, input_name, scale, budgets = args
    workload = load_benchmark(benchmark, input_name, scale)
    profile = VacuumPacker().profile(workload)
    row: List[object] = [workload.name]
    for budget in budgets:
        packer = VacuumPacker(PipelineConfig(
            region=RegionConfig(max_growth_blocks=budget)
        ))
        result = packer.pack(workload, profile=profile)
        row.append(format_percent(result.coverage.package_fraction))
    return row


def run_max_blocks_ablation(
    budgets: Sequence[int] = (0, 1, 2, 4),
    subset: Optional[Sequence[Tuple[str, str]]] = None,
    scale: Optional[float] = None,
    jobs: Optional[int] = None,
) -> AblationReport:
    """Coverage as the growth budget MAX_BLOCKS varies (paper: 1)."""
    report = AblationReport(
        title="Ablation A1: coverage vs MAX_BLOCKS growth budget",
        headers=["benchmark"] + [f"MAX_BLOCKS={b}" for b in budgets],
    )
    work = [
        (b, i, scale, tuple(budgets)) for b, i in subset or DEFAULT_SUBSET
    ]
    report.rows = parallel_map(_max_blocks_row, work, jobs=jobs)
    return report


def _bbb_row(
    args: Tuple[str, str, Optional[float], Tuple[Tuple[int, int], ...]],
) -> List[object]:
    benchmark, input_name, scale, geometries = args
    workload = load_benchmark(benchmark, input_name, scale)
    row: List[object] = [workload.name]
    for sets, ways in geometries:
        hsd = HSDConfig(bbb_sets=sets, bbb_ways=ways)
        cells = []
        for inference in (True, False):
            packer = VacuumPacker(PipelineConfig(
                hsd=hsd,
                region=RegionConfig(inference=inference),
            ))
            result = packer.pack(workload)
            cells.append(format_percent(result.coverage.package_fraction))
        row.append(f"{cells[0]} / {cells[1]}")
    return row


def run_bbb_ablation(
    geometries: Sequence[Tuple[int, int]] = ((2, 2), (4, 2), (16, 4), (512, 4)),
    subset: Optional[Sequence[Tuple[str, str]]] = None,
    scale: Optional[float] = None,
    jobs: Optional[int] = None,
) -> AblationReport:
    """Coverage vs BBB geometry, with inference on and off.

    A small table loses branches to contention (section 3.1's "prevent
    the branch from being tracked at all"), which is precisely what
    temperature inference (section 3.2.2) exists to tolerate — the
    inference-on column should degrade more gracefully than the
    inference-off column as the table shrinks.  At the paper's 512x4
    geometry our synthetic working sets fit comfortably, so the two
    coincide there.
    """
    report = AblationReport(
        title="Ablation A2: coverage (inference on / off) vs BBB geometry",
        headers=["benchmark"] + [f"{s}x{w}" for s, w in geometries],
    )
    work = [
        (b, i, scale, tuple(geometries)) for b, i in subset or DEFAULT_SUBSET
    ]
    report.rows = parallel_map(_bbb_row, work, jobs=jobs)
    return report


def _ordering_row(
    args: Tuple[str, str, Optional[float], Tuple[str, ...]],
) -> List[object]:
    benchmark, input_name, scale, modes = args
    workload = load_benchmark(benchmark, input_name, scale)
    profile = VacuumPacker().profile(workload)
    row: List[object] = [workload.name]
    for mode in modes:
        packer = VacuumPacker(PipelineConfig(ordering=mode))
        result = packer.pack(workload, profile=profile)
        total_rank = sum(g.rank for g in result.plan.groups)
        row.append(
            f"{format_percent(result.coverage.package_fraction)} / "
            f"{total_rank:.2f}"
        )
    return row


def run_ordering_ablation(
    subset: Optional[Sequence[Tuple[str, str]]] = None,
    scale: Optional[float] = None,
    jobs: Optional[int] = None,
) -> AblationReport:
    """Rank-guided ordering vs worst/construction order (coverage + rank)."""
    modes = ("best", "first", "worst")
    report = AblationReport(
        title="Ablation A3: package ordering policy",
        headers=["benchmark"] + [f"{m} (cov / total rank)" for m in modes],
    )
    work = [(b, i, scale, modes) for b, i in subset or DEFAULT_SUBSET]
    report.rows = parallel_map(_ordering_row, work, jobs=jobs)
    return report
