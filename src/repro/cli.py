"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's tables/figures or run the pipeline on
one benchmark input:

.. code-block:: console

   python -m repro table1
   python -m repro figure8 --scale 0.5
   python -m repro figure10 --bench 130.li/B --bench 181.mcf/A
   python -m repro table3 --out /tmp/table3.txt
   python -m repro ablations
   python -m repro pack 134.perl B --scale 0.5
   python -m repro faults --seed 0 --trials 5 --jobs 4
   python -m repro bench --quick --check benchmarks/results/baseline.json
   python -m repro trace pack 134.perl --export chrome
   python -m repro stats trace-pack.json
   python -m repro server --bench 181.mcf/A --listen 127.0.0.1:8080

Flags are uniform across subcommands: ``--jobs N`` (or ``REPRO_JOBS``)
fans work out across processes with deterministic, serial-identical
results; ``--out PATH`` writes the command's report next to printing
it; ``--seed N`` seeds whatever the command randomizes; and ``--config
pipeline.json`` loads a :class:`repro.api.PipelineConfig` document —
its pipeline knobs apply wherever the command builds a packer, and its
``obs`` options (tracing) apply to every command.

``repro trace <cmd> [args...]`` runs any other subcommand with span
tracing enabled, prints the per-stage time/size table, and writes the
ledger (``--export chrome|jsonl``, ``--trace-out PATH``); ``repro
stats <ledger>`` re-renders the table from a written ledger.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments import (
    run_bbb_ablation,
    run_figure8,
    run_figure9,
    run_figure10,
    run_max_blocks_ablation,
    run_ordering_ablation,
    run_table1,
    run_table3,
)
from repro.workloads.suite import SUITE, BenchmarkInput


def _parse_entries(specs: Optional[Sequence[str]]) -> Optional[List[BenchmarkInput]]:
    if not specs:
        return None
    by_name = {entry.full_name: entry for entry in SUITE}
    entries = []
    for spec in specs:
        if spec not in by_name:
            known = ", ".join(sorted(by_name))
            raise SystemExit(f"unknown benchmark {spec!r}; known: {known}")
        entries.append(by_name[spec])
    return entries


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w") as handle:
            handle.write(text + "\n")
        print(f"\n(written to {out})")


def _load_pipeline_config(path: Optional[str]):
    """The ``--config pipeline.json`` document, or ``None``."""
    if not path:
        return None
    from repro.api import PipelineConfig

    try:
        return PipelineConfig.load(path)
    except OSError as exc:
        raise SystemExit(f"repro: cannot read --config {path}: {exc}")
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"repro: bad --config {path}: {exc}")


def _base_config(args: argparse.Namespace):
    """The command's base PipelineConfig (``--config`` or defaults)."""
    from repro.api import PipelineConfig

    return getattr(args, "pipeline", None) or PipelineConfig()


def _cmd_experiment(args: argparse.Namespace) -> int:
    entries = _parse_entries(args.bench)
    runners = {
        "table1": run_table1,
        "figure8": run_figure8,
        "table3": run_table3,
        "figure9": run_figure9,
        "figure10": run_figure10,
    }
    report = runners[args.command](
        entries=entries, scale=args.scale, verbose=args.verbose,
        jobs=args.jobs,
    )
    _emit(report.render(), args.out)
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    parts = [
        run_max_blocks_ablation(scale=args.scale, jobs=args.jobs).render(),
        "",
        run_bbb_ablation(scale=args.scale, jobs=args.jobs).render(),
        "",
        run_ordering_ablation(scale=args.scale, jobs=args.jobs).render(),
    ]
    _emit("\n".join(parts), args.out)
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.workloads.suite import load_benchmark

    config = _base_config(args)
    if args.classic:
        config = config.replace(classic=True)
    if args.strict:
        config = config.replace(strict=True)
    workload = load_benchmark(args.benchmark, args.input, scale=args.scale)
    result = config.packer().pack(workload)
    print(f"benchmark          : {args.benchmark}/{args.input}")
    print(f"static instructions: {workload.program.static_size():,}")
    print(f"dynamic branches   : {result.profile.summary.branches:,}")
    print(f"raw detections     : {result.profile.raw_detections}")
    print(f"unique phases      : {result.profile.phase_count}")
    print(f"packages           : {len(result.packages)}")
    for package in result.packages:
        linked = sum(1 for e in package.exits if e.is_linked)
        print(f"  {package.name}: root={package.root} "
              f"size={package.static_size()} exits={len(package.exits)} "
              f"linked={linked}")
    row = result.expansion_row()
    print(f"code growth        : +{row['pct_increase']:.1f}% "
          f"(selected {row['pct_selected']:.1f}%, "
          f"replication {row['replication']:.2f}x)")
    print(f"coverage           : {result.coverage.package_fraction:.1%}")
    if result.validation is not None:
        status = "ok" if result.validation.ok else "FAILED"
        print(f"validation         : {status} "
              f"({result.validation.checks} checks)")
    for diag in result.diagnostics:
        print(f"  quarantine: {diag.render()}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.fault_campaign import run_fault_campaign
    from repro.hsd.faults import ALL_FAULT_MODES, FaultSpec

    try:
        FaultSpec(modes=tuple(args.mode or ALL_FAULT_MODES), rate=args.rate)
    except ValueError as exc:
        raise SystemExit(f"repro faults: {exc}")
    report = run_fault_campaign(
        entries=_parse_entries(args.bench),
        scale=args.scale,
        seed=args.seed,
        trials=args.trials,
        modes=args.mode or ALL_FAULT_MODES,
        rate=args.rate,
        strict=args.strict,
        verbose=args.verbose,
        jobs=args.jobs,
        config=getattr(args, "pipeline", None),
    )
    _emit(report.render(), args.out)
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        mispatch_launch,
        parse_budget,
        parse_seed_range,
        replay_case,
        resolve_corpus,
        run_fuzz,
    )

    mutator = mispatch_launch if args.inject_mispatch else None
    if args.replay:
        case, report = replay_case(args.replay, mutate_packed=mutator)
        program = case.workload.program
        print(f"replay {args.replay}: seed {case.seed}, "
              f"{len(program.functions)} function(s)"
              + (f" — {case.note}" if case.note else ""))
        print(report.render())
        return 0 if report.ok else 1

    try:
        seeds = parse_seed_range(args.seed_range)
        budget = parse_budget(args.budget)
    except ValueError as exc:
        raise SystemExit(f"repro fuzz: {exc}")
    report = run_fuzz(
        seeds,
        jobs=args.jobs,
        budget=budget,
        corpus=resolve_corpus(args.corpus),
        shrink=not args.no_shrink,
        mutate_packed=mutator,
    )
    _emit(report.render(), args.out)
    return 0 if report.ok else 1


def _parse_bench_spec(spec: str) -> tuple:
    benchmark, _, input_name = spec.partition("/")
    if not benchmark or not input_name:
        raise SystemExit(
            f"expected NAME/INPUT (e.g. 181.mcf/A), got {spec!r}"
        )
    return benchmark, input_name


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import IncrementalAggregator, simulate_fleet

    benchmark, input_name = _parse_bench_spec(args.bench)
    aggregator = (
        IncrementalAggregator() if args.aggregator == "streaming" else None
    )
    clients = simulate_fleet(
        benchmark,
        input_name,
        runs=args.runs,
        out_dir=args.out,
        base_seed=args.seed,
        epochs=args.epochs,
        scale=args.scale,
        aggregator=aggregator,
    )
    summary = {
        "benchmark": args.bench,
        "profiles": len(clients),
        "out_dir": args.out,
        "runs": [
            {"run_id": c.run_id, "seed": c.seed, "epoch": c.epoch,
             "phases": c.phases, "path": c.path}
            for c in clients
        ],
    }
    if aggregator is not None:
        fleet = aggregator.snapshot()
        summary["aggregate"] = {
            "mode": "streaming",
            "documents": aggregator.documents,
            "quarantined": len(aggregator.rejected),
            "phases_merged": len(fleet.phases),
            "max_epoch": fleet.max_epoch,
            "profile_digest": fleet.digest(),
        }
    print(_json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _parse_listen(spec: str) -> tuple:
    host, _, port_text = spec.rpartition(":")
    if not host or not port_text:
        raise SystemExit(
            f"expected HOST:PORT (e.g. 127.0.0.1:8080), got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"--listen port must be an integer, got "
                         f"{port_text!r}")
    return host, port


def _server_config_from_args(args: argparse.Namespace):
    """The daemon's ServerConfig: ``--config server.json`` + overrides.

    ``repro server --config`` takes a :class:`repro.api.ServerConfig`
    document (not a pipeline document — the pipeline section nests
    inside it); explicit flags override file values.  The forwarding
    path (``repro serve --listen``) has no server document and keeps
    its pipeline ``--config`` semantics.
    """
    from repro.api import PipelineConfig, ServerConfig

    base = None
    if args.command == "server" and getattr(args, "config", None):
        try:
            base = ServerConfig.load(args.config)
        except OSError as exc:
            raise SystemExit(
                f"repro: cannot read --config {args.config}: {exc}"
            )
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"repro: bad --config {args.config}: {exc}")

    bench = getattr(args, "bench", None)
    if base is None and not bench:
        raise SystemExit(
            "repro server: --bench NAME/INPUT or --config SERVER.json "
            "is required"
        )

    changes = {}
    if bench:
        benchmark, input_name = _parse_bench_spec(bench)
        changes["benchmark"] = benchmark
        changes["input_name"] = input_name
    listen = getattr(args, "listen", None)
    if listen:
        changes["host"], changes["port"] = _parse_listen(listen)
    elif base is None:
        changes["host"], changes["port"] = "127.0.0.1", 8080
    for attr, key in (
        ("scale", "scale"),
        ("jobs", "jobs"),
        ("shard_size", "shard_size"),
        ("profiles", "profiles_dir"),
        ("gc_max_bytes", "gc_max_bytes"),
        ("gc_interval", "gc_interval"),
        ("checkpoint_tag", "tag"),
        ("store", "store"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            changes[key] = value

    # The daemon's ingest is always the streaming aggregator — that is
    # the point of a daemon; --aggregator batch only affects one-shot
    # serve.  Knobs absent from the serve parser fall back to daemon
    # defaults, so both entry points build the same config.
    pipeline = getattr(args, "pipeline", None)
    if pipeline is None and base is not None and base.pipeline is not None:
        pipeline = PipelineConfig.from_dict(base.pipeline)
    pipeline = pipeline or PipelineConfig()
    if getattr(args, "classic", False):
        pipeline = pipeline.replace(classic=True)
    changes["pipeline"] = pipeline.to_dict()

    if base is None:
        base = ServerConfig(
            benchmark=changes.pop("benchmark"),
            input_name=changes.pop("input_name"),
        )
    return base.replace(**changes)


def _cmd_server(args: argparse.Namespace) -> int:
    from repro.server import ProfileDaemon

    config = _server_config_from_args(args)
    # The daemon resolves the artifact store from config.store.
    return ProfileDaemon(config).run()


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ServiceError
    from repro.experiments.parallel import resolve_jobs
    from repro.service import (
        ArtifactStore,
        FarmConfig,
        IncrementalAggregator,
        MergePolicy,
        build_report,
        default_store,
        ingest_dir,
        merge_runs,
        pack_fleet,
    )

    if getattr(args, "listen", None):
        return _cmd_server(args)
    benchmark, input_name = _parse_bench_spec(args.bench)
    pipeline = _base_config(args)
    if args.classic:
        pipeline = pipeline.replace(classic=True)
    try:
        store = (
            ArtifactStore(args.store) if args.store else default_store()
        )
        aggregate_section = None
        if args.aggregator == "streaming":
            # The live state checkpoints under the profiles directory's
            # identity: a restarted serve over the same directory
            # restores it and the per-path dedup skips every document
            # already folded, so only new uploads cost ingest work.
            policy = MergePolicy()
            tag = f"serve:{Path(args.profiles).resolve()}"
            restored = IncrementalAggregator.restore(store, tag, policy)
            aggregator = restored or IncrementalAggregator(policy)
            folded = aggregator.ingest_paths(
                sorted(Path(args.profiles).glob("*.json"))
            )
            ingest = aggregator.ingest_view()
            fleet = aggregator.snapshot()
            aggregator.save_checkpoint(store, tag)
            aggregate_section = {
                "mode": "streaming",
                "checkpoint": "restored" if restored else "cold",
                "documents": aggregator.documents,
                "folded_now": folded,
                "deduplicated": aggregator.duplicates,
            }
        else:
            ingest = ingest_dir(args.profiles)
            fleet = merge_runs(ingest)
        config = FarmConfig(
            benchmark=benchmark,
            input_name=input_name,
            scale=args.scale,
            pipeline=pipeline.to_dict(),
            shard_size=args.shard_size,
        )
        packed = pack_fleet(fleet, config, jobs=args.jobs, store=store)
    except ServiceError as exc:
        message = f"repro serve: {exc}"
        if exc.hint:
            message += f" (hint: {exc.hint})"
        raise SystemExit(message)
    report = build_report(
        ingest, fleet, packed, config, store, jobs=resolve_jobs(args.jobs),
        aggregate=aggregate_section,
    )
    _emit(report.to_json(), args.out)
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    import tempfile

    from repro.errors import ServiceError
    from repro.service import (
        ArtifactStore,
        ControllerConfig,
        DriftSpec,
        run_controller,
    )

    benchmark, input_name = _parse_bench_spec(args.bench)
    pipeline = _base_config(args)
    try:
        config = ControllerConfig(
            benchmark=benchmark,
            input_name=input_name,
            scale=args.scale,
            epochs=args.epochs,
            clients_per_epoch=args.clients,
            base_seed=args.seed,
            epoch_window=args.epoch_window,
            shard_size=args.shard_size,
            drift=DriftSpec(
                epoch=args.drift_epoch,
                severity=args.severity,
                warm_bias=args.warm_bias,
                seed=args.seed,
            ),
            decay_threshold=args.decay_threshold,
            min_staleness=args.min_staleness,
            patience=args.patience,
            pipeline=pipeline.to_dict(),
            aggregator=args.aggregator,
        )
    except ValueError as exc:
        raise SystemExit(f"repro drift: {exc}")
    store = ArtifactStore(args.store) if args.store else ArtifactStore("off")
    try:
        if args.work_dir:
            report = run_controller(
                config, args.work_dir, jobs=args.jobs, store=store,
                verbose=args.verbose,
            )
        else:
            with tempfile.TemporaryDirectory(prefix="repro-drift-") as work:
                report = run_controller(
                    config, work, jobs=args.jobs, store=store,
                    verbose=args.verbose,
                )
    except ServiceError as exc:
        message = f"repro drift: {exc}"
        if exc.hint:
            message += f" (hint: {exc.hint})"
        raise SystemExit(message)
    print(report.render())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"\n(written to {args.out})")
    return 0 if report.recovered else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from repro.experiments.chaos_campaign import run_chaos_campaign
    from repro.service import ALL_SERVICE_FAULT_MODES

    modes = tuple(args.mode or ALL_SERVICE_FAULT_MODES)
    unknown = [m for m in modes if m not in ALL_SERVICE_FAULT_MODES]
    if unknown:
        known = ", ".join(ALL_SERVICE_FAULT_MODES)
        raise SystemExit(
            f"repro chaos: unknown mode(s) {', '.join(unknown)}; "
            f"known: {known}"
        )
    benchmark, input_name = _parse_bench_spec(args.bench)
    report = run_chaos_campaign(
        benchmark=benchmark,
        input_name=input_name,
        scale=args.scale,
        seed=args.seed,
        trials=args.trials,
        modes=modes,
        runs=args.runs,
        epochs=args.epochs,
        shard_size=args.shard_size,
        jobs=args.jobs,
        work_dir=args.work_dir,
        verbose=args.verbose,
        config=getattr(args, "pipeline", None),
    )
    print(report.render())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(
                _json.dumps(report.to_dict(), indent=2, sort_keys=True)
                + "\n"
            )
        print(f"\n(written to {args.out})")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import main_bench

    return main_bench(
        quick=args.quick,
        out=args.out,
        check=args.check,
        threshold=args.threshold,
        only=args.names or None,
    )


def _extract_trace_flags(rest: List[str]):
    """Pull ``--export``/``--trace-out`` out of a REMAINDER list.

    argparse's REMAINDER swallows every token after the wrapped
    command, including flags meant for ``repro trace`` itself, so they
    are extracted by hand wherever they appear.
    """
    fmt, out, cleaned = "chrome", None, []
    tokens = list(rest)
    while tokens:
        token = tokens.pop(0)
        name, eq, inline = token.partition("=")
        if name not in ("--export", "--trace-out"):
            cleaned.append(token)
            continue
        if eq:
            value = inline
        elif tokens:
            value = tokens.pop(0)
        else:
            raise SystemExit(f"repro trace: {name} needs a value")
        if name == "--export":
            fmt = value
        else:
            out = value
    return fmt, out, cleaned


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.render import EXPORT_FORMATS, stage_table, write_export

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    fmt, out, cleaned = _extract_trace_flags(rest)
    if fmt not in EXPORT_FORMATS:
        raise SystemExit(
            f"repro trace: --export must be one of "
            f"{', '.join(EXPORT_FORMATS)}, got {fmt!r}"
        )
    if not cleaned:
        raise SystemExit(
            "repro trace: expected a repro command to run, e.g. "
            "`repro trace pack 134.perl`"
        )
    command = cleaned[0]
    if command in ("trace", "stats"):
        raise SystemExit(f"repro trace: cannot trace {command!r}")
    out = out or f"trace-{command}.{'json' if fmt == 'chrome' else 'jsonl'}"

    obs.reset_metrics()
    tracer = obs.enable_tracing()
    try:
        with obs.span(f"repro.{command}"):
            status = main(cleaned)
    except SystemExit as exc:
        status = int(exc.code) if isinstance(exc.code, int) else 1
    finally:
        obs.disable_tracing()
    metrics = obs.default_registry().snapshot()
    write_export(out, tracer.spans(), metrics, fmt=fmt)
    print()
    print(stage_table(tracer.spans(), metrics))
    print(f"\n(trace written to {out})")
    return status


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.render import load_export, stage_table, write_export

    try:
        spans, metrics = load_export(args.ledger)
    except OSError as exc:
        raise SystemExit(f"repro stats: {exc}")
    except ValueError as exc:
        raise SystemExit(f"repro stats: {exc}")
    print(stage_table(spans, metrics))
    if args.out:
        write_export(args.out, spans, metrics, fmt=args.export)
        print(f"\n(re-exported to {args.out})")
    return 0


def _parents(*names: str) -> List[argparse.ArgumentParser]:
    """Shared flag groups; one spelling of each flag for every command."""
    registry = {}

    config = argparse.ArgumentParser(add_help=False)
    config.add_argument("--config", metavar="PIPELINE.json", default=None,
                        help="PipelineConfig document; pipeline knobs "
                             "apply where the command packs, obs options "
                             "apply everywhere")
    registry["config"] = config

    scale = argparse.ArgumentParser(add_help=False)
    scale.add_argument("--scale", type=float, default=None,
                       help="dynamic-budget scale (default: REPRO_SCALE "
                            "or 1.0)")
    registry["scale"] = scale

    jobs = argparse.ArgumentParser(add_help=False)
    jobs.add_argument("--jobs", type=int, default=None,
                      help="worker processes (0 = one per CPU; "
                           "default REPRO_JOBS or serial)")
    registry["jobs"] = jobs

    out = argparse.ArgumentParser(add_help=False)
    out.add_argument("--out", help="also write the output to this file")
    registry["out"] = out

    verbose = argparse.ArgumentParser(add_help=False)
    verbose.add_argument("--verbose", action="store_true",
                         help="print per-item progress")
    registry["verbose"] = verbose

    bench_filter = argparse.ArgumentParser(add_help=False)
    bench_filter.add_argument("--bench", action="append",
                              metavar="NAME/INPUT",
                              help="restrict to one input (repeatable)")
    registry["bench_filter"] = bench_filter

    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument("--engine", default=None, type=_normalize_engine,
                        choices=("batched", "compiled", "reference"),
                        help="execution engine (sets REPRO_ENGINE): batched "
                             "lockstep fleet rows (default; falls back to "
                             "compiled for single runs), per-client "
                             "compiled, or the reference interpreter")
    registry["engine"] = engine

    aggregator = argparse.ArgumentParser(add_help=False)
    aggregator.add_argument(
        "--aggregator", default="batch", choices=("streaming", "batch"),
        help="profile aggregation strategy: streaming folds each "
             "document into a live IncrementalAggregator (O(phases) per "
             "document, checkpointable); batch re-clusters the whole "
             "set from scratch (default)")
    registry["aggregator"] = aggregator

    # Shared by the one-shot fleet request (serve) and the daemon
    # (server), so both spell the packing knobs identically.
    fleet = argparse.ArgumentParser(add_help=False)
    fleet.add_argument("--bench", required=True, metavar="NAME/INPUT",
                       help="benchmark binary to pack")
    fleet.add_argument("--classic", action="store_true",
                       help="also apply the classic clean-up passes")
    fleet.add_argument("--shard-size", type=int, default=1,
                       help="merged phases per farm shard (default 1)")
    fleet.add_argument("--store", default=None,
                       help="artifact store root (default "
                            "REPRO_ARTIFACT_STORE or "
                            "~/.cache/repro/artifacts; 'off' disables)")
    registry["fleet"] = fleet

    return [registry[name] for name in names]


def _normalize_engine(value: str) -> str:
    return value.strip().lower()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vacuum Packing (MICRO 2002) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("table1", "benchmark/input inventory with measured sizes"),
        ("figure8", "coverage under the four formation configurations"),
        ("table3", "code expansion from package construction"),
        ("figure9", "hot-spot branch categorization"),
        ("figure10", "speedup from relayout + rescheduling"),
    ]:
        cmd = sub.add_parser(
            name, help=help_text,
            parents=_parents("config", "scale", "jobs", "out", "verbose",
                             "bench_filter"),
        )
        cmd.set_defaults(func=_cmd_experiment)

    abl = sub.add_parser(
        "ablations", help="run the three ablation studies",
        parents=_parents("config", "scale", "jobs", "out"),
    )
    abl.set_defaults(func=_cmd_ablations)

    pack = sub.add_parser(
        "pack", help="run the pipeline on one input",
        parents=_parents("config", "scale"),
    )
    pack.add_argument("benchmark", nargs="?", default="134.perl",
                      help="Table 1 benchmark (default 134.perl)")
    pack.add_argument("input", nargs="?", default="A")
    pack.add_argument("--classic", action="store_true",
                      help="also apply the classic clean-up passes")
    pack.add_argument("--strict", action="store_true",
                      help="raise on the first phase failure instead of "
                           "quarantining it")
    pack.set_defaults(func=_cmd_pack)

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign over lossy hardware profiles",
        parents=_parents("config", "scale", "jobs", "out", "verbose",
                         "bench_filter"),
    )
    faults.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (trial i uses seed+i)")
    faults.add_argument("--trials", type=int, default=20,
                        help="faulty packs per benchmark input")
    faults.add_argument("--rate", type=float, default=0.25,
                        help="per-record fault probability for each mode")
    faults.add_argument("--mode", action="append",
                        help="fault mode to enable (repeatable; default all)")
    faults.add_argument("--strict", action="store_true",
                        help="pack without the quarantine loop (errors are "
                             "counted as campaign failures)")
    faults.set_defaults(func=_cmd_faults)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing (generator + oracle stack)",
        parents=_parents("config", "jobs", "out"),
    )
    fuzz.add_argument("--seed-range", default="0:50", metavar="LO:HI",
                      help="half-open seed interval to fuzz (default 0:50)")
    fuzz.add_argument("--budget", default=None, metavar="TIME",
                      help="stop scheduling after this long (e.g. 60s, 2m)")
    fuzz.add_argument("--corpus", default=None,
                      help="corpus directory (default REPRO_FUZZ_CORPUS; "
                           "unset = no persistence)")
    fuzz.add_argument("--replay", metavar="CASE.json",
                      help="re-run one persisted repro file and exit")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimizing them")
    fuzz.add_argument("--inject-mispatch", action="store_true",
                      help="sabotage one launch point per pack (proves the "
                           "oracles catch rewriter bugs; forces serial)")
    fuzz.set_defaults(func=_cmd_fuzz)

    ingest = sub.add_parser(
        "ingest",
        help="simulate a client fleet: N profiling runs -> profile docs",
        parents=_parents("config", "scale", "engine", "aggregator"),
    )
    ingest.add_argument("--bench", required=True, metavar="NAME/INPUT",
                        help="benchmark binary the fleet runs")
    ingest.add_argument("--runs", type=int, default=16,
                        help="simulated client runs (default 16)")
    ingest.add_argument("--seed", "--base-seed", dest="seed", type=int,
                        default=0,
                        help="client i profiles with behavior seed "
                             "base+i (default 0)")
    ingest.add_argument("--epochs", type=int, default=1,
                        help="spread runs over this many staleness "
                             "epochs (default 1)")
    ingest.add_argument("--out", "--out-dir", dest="out", required=True,
                        help="directory for the profile documents")
    ingest.set_defaults(func=_cmd_ingest)

    serve = sub.add_parser(
        "serve",
        help="fleet request: ingest profiles -> merge -> sharded pack "
             "-> JSON report",
        parents=_parents("config", "scale", "jobs", "out", "engine",
                         "aggregator", "fleet"),
    )
    serve.add_argument("--profiles", required=True,
                       help="directory of client profile documents")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="run as the long-lived HTTP daemon instead "
                            "of one shot, preloading --profiles "
                            "(same as `repro server`)")
    serve.set_defaults(func=_cmd_serve)

    server = sub.add_parser(
        "server",
        help="long-running multi-tenant HTTP profile daemon: "
             "streaming NDJSON ingest routed per meta.benchmark, "
             "/tenants/<name>/{profiles,snapshot,repack}, /artifacts, "
             "dashboards, store GC",
        parents=_parents("scale", "jobs", "engine", "aggregator"),
    )
    server.add_argument("--config", metavar="SERVER.json", default=None,
                        help="ServerConfig document (repro.api."
                             "ServerConfig.to_dict); explicit flags "
                             "override file values")
    server.add_argument("--bench", metavar="NAME/INPUT", default=None,
                        help="default tenant's benchmark binary "
                             "(required unless --config provides it)")
    server.add_argument("--classic", action="store_true",
                        help="also apply the classic clean-up passes")
    server.add_argument("--shard-size", type=int, default=None,
                        help="merged phases per farm shard (default 1)")
    server.add_argument("--store", default=None,
                        help="artifact store root (default "
                             "REPRO_ARTIFACT_STORE or "
                             "~/.cache/repro/artifacts; 'off' disables)")
    server.add_argument("--listen", default=None,
                        metavar="HOST:PORT",
                        help="bind address (port 0 = ephemeral; "
                             "default 127.0.0.1:8080)")
    server.add_argument("--profiles", default=None,
                        help="directory of profile documents preloaded "
                             "(routed per meta.benchmark) on boot")
    server.add_argument("--gc-max-bytes", type=int, default=None,
                        help="artifact-store byte cap enforced by "
                             "periodic LRU eviction (default: GC off)")
    server.add_argument("--gc-interval", type=float, default=None,
                        help="seconds between GC sweeps (default 30)")
    server.add_argument("--checkpoint-tag", default=None, dest="checkpoint_tag",
                        help="aggregator checkpoint slot identity "
                             "(default 'server'); daemons sharing a "
                             "store and tag resume each other's state")
    server.set_defaults(func=_cmd_server)

    drift = sub.add_parser(
        "drift",
        help="continuous re-optimization loop: simulate epochs, inject "
             "drift, detect decay, re-pack, measure time-to-recover",
        parents=_parents("config", "scale", "jobs", "out", "verbose",
                         "engine", "aggregator"),
    )
    drift.add_argument("--bench", required=True, metavar="NAME/INPUT",
                       help="benchmark binary the fleet runs")
    drift.add_argument("--epochs", type=int, default=6,
                       help="service epochs to simulate (default 6)")
    drift.add_argument("--clients", type=int, default=4,
                       help="client profiling runs per epoch (default 4)")
    drift.add_argument("--seed", type=int, default=0,
                       help="base seed for clients and the drift draw")
    drift.add_argument("--drift-epoch", type=int, default=2,
                       help="epoch at which fleet behavior drifts "
                            "(default 2)")
    drift.add_argument("--severity", type=float, default=0.5,
                       help="fraction of cold guards that warm up "
                            "(default 0.5)")
    drift.add_argument("--warm-bias", type=float, default=0.4,
                       help="taken probability a warmed guard acquires "
                            "(default 0.4)")
    drift.add_argument("--epoch-window", type=int, default=2,
                       help="epochs of profiles a re-aggregation looks "
                            "back over (default 2)")
    drift.add_argument("--decay-threshold", type=float, default=0.1,
                       help="relative coverage decay that counts as a "
                            "strike (default 0.1)")
    drift.add_argument("--min-staleness", type=int, default=1,
                       help="artifact staleness before decay counts "
                            "(default 1)")
    drift.add_argument("--patience", type=int, default=1,
                       help="consecutive decayed epochs before a re-pack "
                            "(default 1)")
    drift.add_argument("--shard-size", type=int, default=1,
                       help="merged phases per farm shard (default 1)")
    drift.add_argument("--store", default=None,
                       help="artifact store root (default: off for a "
                            "self-contained run)")
    drift.add_argument("--work-dir", default=None,
                       help="keep per-epoch profiles here (default: a "
                            "temporary directory)")
    drift.set_defaults(func=_cmd_drift)

    chaos = sub.add_parser(
        "chaos",
        help="fleet chaos campaign: inject service-scale faults and "
             "check the farm self-heals to the fault-free pack",
        parents=_parents("config", "scale", "jobs", "out", "verbose",
                         "engine"),
    )
    chaos.add_argument("--bench", default="181.mcf/A", metavar="NAME/INPUT",
                       help="benchmark binary the fleet runs "
                            "(default 181.mcf/A)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed (fleet, fault placement, "
                            "backoff)")
    chaos.add_argument("--trials", type=int, default=1,
                       help="injections per fault mode (default 1)")
    chaos.add_argument("--mode", action="append",
                       help="fault mode to enable (repeatable; "
                            "default all)")
    chaos.add_argument("--runs", type=int, default=6,
                       help="simulated client runs (default 6)")
    chaos.add_argument("--epochs", type=int, default=2,
                       help="staleness epochs the fleet spans (default 2)")
    chaos.add_argument("--shard-size", type=int, default=1,
                       help="merged phases per farm shard (default 1)")
    chaos.add_argument("--work-dir", default=None,
                       help="keep trial state here (default: a temporary "
                            "directory)")
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="pinned micro-benchmark suite (engine, detector, pipeline)",
        parents=_parents("config", "out", "engine"),
    )
    bench.add_argument("names", nargs="*", metavar="NAME",
                       help="run only these benchmarks (e.g. agg_scale; "
                            "default: the whole suite)")
    bench.add_argument("--quick", action="store_true",
                       help="single repetitions + short campaign (CI smoke)")
    bench.add_argument("--check", metavar="BASELINE",
                       help="compare against a baseline JSON and fail on "
                            "regression")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="allowed slowdown vs baseline (default 0.25)")
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="run any repro command with span tracing; prints the "
             "per-stage table and writes the ledger",
    )
    trace.add_argument("rest", nargs=argparse.REMAINDER,
                       metavar="COMMAND [args...]",
                       help="the repro command to trace; accepts "
                            "--export chrome|jsonl and --trace-out PATH")
    trace.set_defaults(func=_cmd_trace)

    stats = sub.add_parser(
        "stats",
        help="render the per-stage table from a written trace ledger",
        parents=_parents("out"),
    )
    stats.add_argument("ledger", help="a ledger written by repro trace")
    stats.add_argument("--export", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="format for --out re-export (default chrome)")
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None):
        import os

        os.environ["REPRO_ENGINE"] = args.engine
    # `repro server --config` is a ServerConfig document, parsed by the
    # command itself; everywhere else --config is a pipeline document.
    if getattr(args, "command", None) == "server":
        args.pipeline = None
    else:
        args.pipeline = _load_pipeline_config(getattr(args, "config", None))
    if args.pipeline is not None and args.pipeline.obs.trace:
        from repro.api import _traced

        with _traced(args.pipeline):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
