"""A tiny blocking client for the profile daemon.

``http.client`` over one keep-alive connection — enough for the
tests, the CI smoke job, and :mod:`examples.http_fleet` to drive the
full route surface without any dependency.  Each helper mirrors one
endpoint and returns parsed JSON plus the HTTP status, so callers can
assert on both.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Dict, Iterable, Optional, Tuple


class DaemonClient:
    """Blocking HTTP client bound to one daemon address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    @classmethod
    def for_daemon(cls, handle, timeout: float = 30.0) -> "DaemonClient":
        """A client for a :class:`~repro.server.app.DaemonHandle`."""
        return cls(handle.daemon.config.host, handle.port, timeout=timeout)

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> Tuple[int, bytes]:
        """One request; reconnects once if the keep-alive went stale."""
        headers = {"Content-Type": content_type} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except (ConnectionError, HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def request_json(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict]:
        status, payload = self.request(method, path, body=body)
        return status, json.loads(payload)

    # -- endpoint helpers --------------------------------------------

    def post_profiles(self, texts: Iterable[str]) -> Tuple[int, Dict]:
        """POST documents as one NDJSON upload (one JSON per line)."""
        body = "\n".join(
            " ".join(text.split("\n")) for text in texts
        ).encode()
        return self.request_json(
            "POST", "/profiles", body=body,
        )

    def healthz(self) -> Tuple[int, Dict]:
        return self.request_json("GET", "/healthz")

    def metrics(self) -> Tuple[int, Dict]:
        return self.request_json("GET", "/metrics")

    def snapshot(self) -> Tuple[int, Dict]:
        return self.request_json("GET", "/snapshot")

    def repack(self) -> Tuple[int, Dict]:
        return self.request_json("POST", "/repack")

    def artifact(self, key: str) -> Tuple[int, bytes]:
        """Raw canonical bytes of one stored artifact (or a 404 body)."""
        return self.request("GET", f"/artifacts/{key}")

    def dashboard(self) -> Tuple[int, str]:
        status, body = self.request("GET", "/")
        return status, body.decode()


__all__ = ["DaemonClient"]
