"""A tiny blocking client for the profile daemon.

``http.client`` over one keep-alive connection — enough for the
tests, the CI smoke job, and :mod:`examples.http_fleet` to drive the
full route surface without any dependency.  Each helper mirrors one
endpoint and returns parsed JSON plus the HTTP status, so callers can
assert on both.

Since PR 10 the daemon is multi-tenant and the client follows:
:meth:`DaemonClient.tenant` returns a :class:`TenantClient` handle
scoped to one tenant's routes::

    with DaemonClient.for_daemon(handle) as client:
        gcc = client.tenant("gcc/train")
        gcc.upload(documents)
        status, snap = gcc.snapshot()
        status, packed = gcc.repack()

``client.tenant()`` (no name) speaks the flat PR-9 routes, which
alias the daemon's default tenant — ``POST /profiles`` through that
handle still demultiplexes stamped lines per tenant.  The legacy flat
methods (``post_profiles`` / ``snapshot`` / ``repack``) remain as
thin shims over ``tenant()`` that emit a ``DeprecationWarning``,
mirroring the ``VacuumPacker(**kwargs)`` shim.
"""

from __future__ import annotations

import json
import warnings
from http.client import HTTPConnection, HTTPException
from typing import Dict, Iterable, Optional, Tuple
from urllib.parse import quote


class TenantClient:
    """One tenant's route surface over a shared :class:`DaemonClient`.

    ``name=None`` binds the flat root routes (the default-tenant
    aliases); a named handle speaks ``/tenants/<name>/…``.
    """

    def __init__(self, client: "DaemonClient", name: Optional[str] = None):
        self.client = client
        self.name = name

    def path(self, verb: str) -> str:
        if self.name is None:
            return f"/{verb}"
        return f"/tenants/{quote(self.name, safe='/')}/{verb}"

    def upload(self, texts: Iterable[str]) -> Tuple[int, Dict]:
        """POST documents as one NDJSON upload (one JSON per line)."""
        body = "\n".join(
            " ".join(text.split("\n")) for text in texts
        ).encode()
        return self.client.request_json(
            "POST", self.path("profiles"), body=body,
        )

    def snapshot(self) -> Tuple[int, Dict]:
        return self.client.request_json("GET", self.path("snapshot"))

    def repack(self) -> Tuple[int, Dict]:
        return self.client.request_json("POST", self.path("repack"))

    def dashboard(self) -> Tuple[int, str]:
        path = self.path("") if self.name is not None else "/"
        status, body = self.client.request("GET", path)
        return status, body.decode()


class DaemonClient:
    """Blocking HTTP client bound to one daemon address."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    @classmethod
    def for_daemon(cls, handle, timeout: float = 30.0) -> "DaemonClient":
        """A client for a :class:`~repro.server.app.DaemonHandle`."""
        return cls(handle.daemon.config.host, handle.port, timeout=timeout)

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> Tuple[int, bytes]:
        """One request; reconnects once if the keep-alive went stale."""
        headers = {"Content-Type": content_type} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.status, response.read()
            except (ConnectionError, HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def request_json(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict]:
        status, payload = self.request(method, path, body=body)
        return status, json.loads(payload)

    # -- tenant surface ----------------------------------------------

    def tenant(self, name: Optional[str] = None) -> TenantClient:
        """A handle on one tenant's routes (``None`` = flat aliases)."""
        return TenantClient(self, name)

    def tenants(self) -> Tuple[int, Dict]:
        """The JSON tenant index: names, counters, the default."""
        return self.request_json("GET", "/tenants")

    # -- daemon-wide endpoint helpers --------------------------------

    def healthz(self) -> Tuple[int, Dict]:
        return self.request_json("GET", "/healthz")

    def metrics(self) -> Tuple[int, Dict]:
        return self.request_json("GET", "/metrics")

    def artifact(self, key: str) -> Tuple[int, bytes]:
        """Raw canonical bytes of one stored artifact (or a 404 body)."""
        return self.request("GET", f"/artifacts/{key}")

    def dashboard(self) -> Tuple[int, str]:
        """The tenant index page (``GET /``)."""
        status, body = self.request("GET", "/")
        return status, body.decode()

    # -- deprecated flat shims ---------------------------------------
    # PR-9 spelled tenant operations as bare client methods; they now
    # delegate to the default-tenant handle, like VacuumPacker's
    # scattered kwargs fold into a PipelineConfig.

    def _deprecated(self, old: str, new: str) -> None:
        warnings.warn(
            f"DaemonClient.{old} is deprecated; use "
            f"DaemonClient.tenant(){new}",
            DeprecationWarning,
            stacklevel=3,
        )

    def post_profiles(self, texts: Iterable[str]) -> Tuple[int, Dict]:
        """Deprecated: ``client.tenant().upload(texts)``."""
        self._deprecated("post_profiles", ".upload(texts)")
        return self.tenant().upload(texts)

    def snapshot(self) -> Tuple[int, Dict]:
        """Deprecated: ``client.tenant().snapshot()``."""
        self._deprecated("snapshot", ".snapshot()")
        return self.tenant().snapshot()

    def repack(self) -> Tuple[int, Dict]:
        """Deprecated: ``client.tenant().repack()``."""
        self._deprecated("repack", ".repack()")
        return self.tenant().repack()


__all__ = ["DaemonClient", "TenantClient"]
