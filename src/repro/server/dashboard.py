"""The daemon's ``GET /`` page: one self-contained HTML document.

No JavaScript, no external assets, no template engine — just escaped
HTML built from the same structures the JSON endpoints serve, so the
dashboard can never disagree with the API.  Sections:

* daemon summary (benchmark, uptime, ingest counters, checkpoint
  disposition, store root/bytes);
* the merged-phase provenance table from the current snapshot
  (branches, contributing runs, detections, agreement, epoch bounds,
  staleness) — the fleet analog of the paper's per-phase tables;
* the most recent ``POST /repack`` report (per-shard rows with
  ``/artifacts/<key>`` links, cache hit rate, fault counters);
* the ``repro stats`` per-stage span/metric table
  (:func:`repro.obs.render.stage_table`) in a ``<pre>`` block;
* the tail of the quarantine log.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, List

from repro.errors import ServiceError
from repro.obs import default_registry
from repro.obs.render import stage_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ProfileDaemon

_STYLE = """
body { font-family: monospace; margin: 2em; background: #fdfdfd; }
h1, h2 { font-family: sans-serif; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
pre { background: #f2f2f2; padding: 1em; overflow-x: auto; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _table(headers: List[str], rows: List[List[str]],
           left: int = 1) -> List[str]:
    """An HTML table; the first ``left`` columns are left-aligned."""
    def cells(tag: str, row: List[str]) -> str:
        parts = []
        for index, cell in enumerate(row):
            cls = ' class="l"' if index < left else ""
            parts.append(f"<{tag}{cls}>{_esc(cell)}</{tag}>")
        return "".join(parts)

    out = ["<table>", f"<tr>{cells('th', headers)}</tr>"]
    out.extend(f"<tr>{cells('td', row)}</tr>" for row in rows)
    out.append("</table>")
    return out


def render_dashboard(daemon: "ProfileDaemon") -> str:
    agg = daemon.aggregator
    cfg = daemon.config
    store = daemon.store
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>repro server — {_esc(cfg.benchmark)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>repro server — {_esc(cfg.benchmark)}/"
        f"{_esc(cfg.input_name)}</h1>",
    ]

    stats = daemon.server_stats()
    out.extend(_table(
        ["field", "value"],
        [
            ["uptime", f"{daemon.uptime:.1f}s"],
            ["requests", stats["requests"]],
            ["documents folded", agg.documents],
            ["duplicates deduped", agg.duplicates],
            ["quarantined", len(agg.rejected)],
            ["checkpoint", "restored" if daemon.restored else "cold"],
            ["checkpoints written", stats["checkpoints"]],
            ["gc sweeps", stats["gc_sweeps"]],
            ["store root", store.root if store.enabled else "off"],
            ["store bytes", f"{store.total_bytes():,}"
             if store.enabled else "-"],
            ["store evictions", store.stats.evictions],
        ],
    ))

    out.append("<h2>Merged fleet snapshot</h2>")
    try:
        fleet = daemon.snapshot()
    except ServiceError as exc:
        out.append(f"<p>no snapshot yet: {_esc(exc)}</p>")
    else:
        out.append(
            f"<p>{len(fleet.phases)} merged phase(s) from {fleet.runs} "
            f"run(s) (max epoch {fleet.max_epoch}, {fleet.aged_out} aged "
            f"out); digest <code>{_esc(fleet.digest())}</code></p>"
        )
        out.extend(_table(
            ["phase", "branches", "runs", "detections", "agreement",
             "epochs", "staleness"],
            [
                [
                    phase.index,
                    len(phase.record.branches),
                    len(phase.provenance.run_ids),
                    phase.provenance.detections,
                    f"{phase.provenance.agreement:.4f}",
                    f"{phase.provenance.first_epoch}.."
                    f"{phase.provenance.last_epoch}",
                    phase.provenance.staleness,
                ]
                for phase in fleet.phases
            ],
        ))

    out.append("<h2>Last repack</h2>")
    report = daemon.last_report
    if report is None:
        out.append("<p>no repack yet — <code>POST /repack</code></p>")
    else:
        pack = report["pack"]
        cache = pack["cache"]
        out.append(
            f"<p>{pack['packages']} package(s) over phases "
            f"{_esc(pack['phase_set'])}; cache hit rate "
            f"{float(cache['hit_rate']):.1%}; "
            f"{pack['faults']['degraded_shards']} degraded shard(s)</p>"
        )
        rows = []
        for shard in pack["shards"]:
            key = str(shard["key"])
            link = (f'<a href="/artifacts/{_esc(key)}">'
                    f"{_esc(key[:16])}…</a>")
            rows.append([
                shard["shard"], _esc(shard["phases"]), link,
                "hit" if shard["cached"] else "packed",
                shard["packages"], f"{float(shard['coverage']):.1%}",
                shard["attempts"],
                "degraded" if shard["degraded"] else "ok",
            ])
        # The artifact link is pre-built HTML; bypass the escaping
        # table helper for that one column.
        out.append("<table><tr>" + "".join(
            f"<th>{h}</th>" for h in
            ["shard", "phases", "artifact", "source", "packages",
             "coverage", "attempts", "state"]
        ) + "</tr>")
        for row in rows:
            cells = []
            for index, cell in enumerate(row):
                cells.append(f"<td>{cell}</td>" if index in (1, 2)
                             else f"<td>{_esc(cell)}</td>")
            out.append("<tr>" + "".join(cells) + "</tr>")
        out.append("</table>")

    out.append("<h2>Stages and metrics</h2>")
    out.append("<pre>"
               + _esc(stage_table([], default_registry().snapshot()))
               + "</pre>")

    with daemon.agg_lock:
        quarantine_tail = list(agg.rejected[-10:])
    if quarantine_tail:
        out.append("<h2>Quarantine log (last 10)</h2><pre>")
        out.extend(_esc(reject.render()) for reject in quarantine_tail)
        out.append("</pre>")

    out.append("</body></html>")
    return "\n".join(out)


__all__ = ["render_dashboard"]
