"""The daemon's HTML pages: a tenant index plus per-tenant views.

No JavaScript, no external assets, no template engine — just escaped
HTML built from the same structures the JSON endpoints serve, so the
dashboards can never disagree with the API.

``GET /`` renders :func:`render_index`: the daemon summary (uptime,
request/GC/checkpoint counters, store root/bytes) plus one row per
tenant — documents, duplicates, quarantined, checkpoint disposition —
each linking to that tenant's page at ``/tenants/<name>/``.

``GET /tenants/<name>/`` renders :func:`render_tenant`, the PR-9
single-tenant dashboard scoped to one aggregator:

* tenant summary (benchmark spec, ingest counters, checkpoint
  disposition);
* the merged-phase provenance table from the current snapshot
  (branches, contributing runs, detections, agreement, epoch bounds,
  staleness) — the fleet analog of the paper's per-phase tables;
* the tenant's most recent repack report (per-shard rows with
  ``/artifacts/<key>`` links, cache hit rate, fault counters);
* the ``repro stats`` per-stage span/metric table
  (:func:`repro.obs.render.stage_table`) in a ``<pre>`` block;
* the tail of the tenant's quarantine log.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, List
from urllib.parse import quote

from repro.errors import ServiceError
from repro.obs import default_registry
from repro.obs.render import stage_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ProfileDaemon, Tenant

_STYLE = """
body { font-family: monospace; margin: 2em; background: #fdfdfd; }
h1, h2 { font-family: sans-serif; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
pre { background: #f2f2f2; padding: 1em; overflow-x: auto; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _table(headers: List[str], rows: List[List[str]],
           left: int = 1) -> List[str]:
    """An HTML table; the first ``left`` columns are left-aligned."""
    def cells(tag: str, row: List[str]) -> str:
        parts = []
        for index, cell in enumerate(row):
            cls = ' class="l"' if index < left else ""
            parts.append(f"<{tag}{cls}>{_esc(cell)}</{tag}>")
        return "".join(parts)

    out = ["<table>", f"<tr>{cells('th', headers)}</tr>"]
    out.extend(f"<tr>{cells('td', row)}</tr>" for row in rows)
    out.append("</table>")
    return out


def _page(title: str, body: List[str]) -> str:
    return "\n".join([
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        *body,
        "</body></html>",
    ])


def tenant_href(name: str) -> str:
    """Dashboard URL for one tenant (``/`` is a path separator, kept)."""
    return f"/tenants/{quote(name, safe='/')}/"


def render_index(daemon: "ProfileDaemon") -> str:
    """The ``GET /`` page: daemon summary + tenant index."""
    cfg = daemon.config
    store = daemon.store
    stats = daemon.server_stats()
    out = ["<h1>repro server — tenant index</h1>"]
    out.extend(_table(
        ["field", "value"],
        [
            ["default tenant", cfg.default_tenant],
            ["uptime", f"{daemon.uptime:.1f}s"],
            ["requests", stats["requests"]],
            ["tenants", stats["tenants"]],
            ["checkpoints written", stats["checkpoints"]],
            ["gc sweeps", stats["gc_sweeps"]],
            ["store root", store.root if store.enabled else "off"],
            ["store bytes", f"{store.total_bytes():,}"
             if store.enabled else "-"],
            ["store evictions", store.stats.evictions],
        ],
    ))

    out.append("<h2>Tenants</h2>")
    rows = []
    for tenant in daemon.registry.tenants():
        counters = tenant.counters()
        label = (f"{tenant.name} (default)"
                 if tenant.name == cfg.default_tenant else tenant.name)
        link = (f'<a href="{_esc(tenant_href(tenant.name))}">'
                f"{_esc(label)}</a>")
        rows.append([
            link,
            _esc(counters["documents"]),
            _esc(counters["duplicates"]),
            _esc(counters["quarantined"]),
            _esc(counters["checkpoint"]),
        ])
    # The tenant link is pre-built HTML; bypass the escaping helper
    # for that one column.
    headers = ["tenant", "documents", "duplicates", "quarantined",
               "checkpoint"]
    out.append("<table><tr>" + '<th class="l">' + headers[0] + "</th>"
               + "".join(f"<th>{h}</th>" for h in headers[1:]) + "</tr>")
    for row in rows:
        out.append("<tr>" + "".join(
            f'<td class="l">{cell}</td>' if index == 0 else f"<td>{cell}</td>"
            for index, cell in enumerate(row)
        ) + "</tr>")
    out.append("</table>")
    return _page("repro server — tenants", out)


def render_tenant(daemon: "ProfileDaemon", tenant: "Tenant") -> str:
    """One tenant's full dashboard (the PR-9 page, scoped)."""
    agg = tenant.aggregator
    store = daemon.store
    stats = daemon.server_stats()
    counters = tenant.counters()
    out = [
        f"<h1>repro server — tenant {_esc(tenant.name)}</h1>",
        '<p><a href="/">&larr; tenant index</a></p>',
    ]
    out.extend(_table(
        ["field", "value"],
        [
            ["tenant", tenant.name],
            ["uptime", f"{daemon.uptime:.1f}s"],
            ["requests", stats["requests"]],
            ["documents folded", counters["documents"]],
            ["duplicates deduped", counters["duplicates"]],
            ["quarantined", counters["quarantined"]],
            ["checkpoint", counters["checkpoint"]],
            ["checkpoints written", stats["checkpoints"]],
            ["gc sweeps", stats["gc_sweeps"]],
            ["store root", store.root if store.enabled else "off"],
            ["store bytes", f"{store.total_bytes():,}"
             if store.enabled else "-"],
            ["store evictions", store.stats.evictions],
        ],
    ))

    out.append("<h2>Merged fleet snapshot</h2>")
    try:
        fleet = tenant.snapshot()
    except ServiceError as exc:
        out.append(f"<p>no snapshot yet: {_esc(exc)}</p>")
    else:
        out.append(
            f"<p>{len(fleet.phases)} merged phase(s) from {fleet.runs} "
            f"run(s) (max epoch {fleet.max_epoch}, {fleet.aged_out} aged "
            f"out); digest <code>{_esc(fleet.digest())}</code></p>"
        )
        out.extend(_table(
            ["phase", "branches", "runs", "detections", "agreement",
             "epochs", "staleness"],
            [
                [
                    phase.index,
                    len(phase.record.branches),
                    len(phase.provenance.run_ids),
                    phase.provenance.detections,
                    f"{phase.provenance.agreement:.4f}",
                    f"{phase.provenance.first_epoch}.."
                    f"{phase.provenance.last_epoch}",
                    phase.provenance.staleness,
                ]
                for phase in fleet.phases
            ],
        ))

    out.append("<h2>Last repack</h2>")
    report = tenant.last_report
    if report is None:
        out.append("<p>no repack yet — <code>POST "
                   f"{_esc(tenant_href(tenant.name))}repack</code></p>")
    else:
        pack = report["pack"]
        cache = pack["cache"]
        out.append(
            f"<p>{pack['packages']} package(s) over phases "
            f"{_esc(pack['phase_set'])}; cache hit rate "
            f"{float(cache['hit_rate']):.1%}; "
            f"{pack['faults']['degraded_shards']} degraded shard(s)</p>"
        )
        rows = []
        for shard in pack["shards"]:
            key = str(shard["key"])
            link = (f'<a href="/artifacts/{_esc(key)}">'
                    f"{_esc(key[:16])}…</a>")
            rows.append([
                shard["shard"], _esc(shard["phases"]), link,
                "hit" if shard["cached"] else "packed",
                shard["packages"], f"{float(shard['coverage']):.1%}",
                shard["attempts"],
                "degraded" if shard["degraded"] else "ok",
            ])
        # The artifact link is pre-built HTML; bypass the escaping
        # table helper for that one column.
        out.append("<table><tr>" + "".join(
            f"<th>{h}</th>" for h in
            ["shard", "phases", "artifact", "source", "packages",
             "coverage", "attempts", "state"]
        ) + "</tr>")
        for row in rows:
            cells = []
            for index, cell in enumerate(row):
                cells.append(f"<td>{cell}</td>" if index in (1, 2)
                             else f"<td>{_esc(cell)}</td>")
            out.append("<tr>" + "".join(cells) + "</tr>")
        out.append("</table>")

    out.append("<h2>Stages and metrics</h2>")
    out.append("<pre>"
               + _esc(stage_table([], default_registry().snapshot()))
               + "</pre>")

    with tenant.lock:
        quarantine_tail = list(agg.rejected[-10:])
    if quarantine_tail:
        out.append("<h2>Quarantine log (last 10)</h2><pre>")
        out.extend(_esc(reject.render()) for reject in quarantine_tail)
        out.append("</pre>")

    return _page(f"repro server — {tenant.name}", out)


def render_dashboard(daemon: "ProfileDaemon") -> str:
    """PR-9 compatibility: the default tenant's full dashboard."""
    return render_tenant(daemon, daemon.registry.default)


__all__ = ["render_dashboard", "render_index", "render_tenant",
           "tenant_href"]
