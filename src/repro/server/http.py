"""Minimal HTTP/1.1 plumbing over asyncio streams.

The daemon deliberately speaks raw HTTP over ``asyncio.start_server``
instead of pulling in a framework: the repo's no-new-dependency rule
holds, and the profile wire protocol needs exactly one non-trivial
feature — *streaming* request bodies, so ``POST /profiles`` can fold
NDJSON documents into the aggregator as the bytes arrive instead of
buffering a fleet-sized upload.

Supported surface (all the daemon needs, nothing more): request-line +
headers parsing, ``Content-Length``-framed bodies exposed as an async
chunk iterator, ``Content-Length``-framed responses, and HTTP/1.1
keep-alive (a ``Connection: close`` request header or HTTP/1.0 closes
after the response).  ``Transfer-Encoding: chunked`` requests are
refused with 411 (clients must frame uploads) rather than
half-implemented.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional
from urllib.parse import parse_qsl, unquote

#: Response reason phrases for the statuses the daemon emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard cap on request-line/header sizes; a line longer than this is a
#: malformed request, not a buffering exercise.
_MAX_LINE = 16 * 1024
#: Body read granularity for the streaming iterator.
_CHUNK = 64 * 1024


class BadRequest(ValueError):
    """Malformed HTTP that warrants a 400 (or given status) reply."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request; the body is *not* read yet."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    reader: asyncio.StreamReader
    length: int = 0
    _consumed: int = 0

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    async def chunks(self) -> AsyncIterator[bytes]:
        """Stream the body in arrival-sized chunks.

        Raises :class:`BadRequest` when the peer hangs up before
        delivering ``Content-Length`` bytes (a truncated upload is the
        *sender's* error, never a 500).
        """
        while self._consumed < self.length:
            chunk = await self.reader.read(
                min(_CHUNK, self.length - self._consumed)
            )
            if not chunk:
                raise BadRequest(
                    f"request body truncated at {self._consumed} of "
                    f"{self.length} bytes"
                )
            self._consumed += len(chunk)
            yield chunk

    async def body(self) -> bytes:
        parts = [chunk async for chunk in self.chunks()]
        return b"".join(parts)

    async def drain(self) -> None:
        """Discard any unread body so keep-alive stays framed."""
        async for _ in self.chunks():
            pass


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            .encode(),
            content_type="application/json",
        )

    @classmethod
    def error(cls, status: int, message: str, **extra) -> "Response":
        return cls.json({"error": message, **extra}, status=status)

    @classmethod
    def html(cls, text: str, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=text.encode(),
            content_type="text/html; charset=utf-8",
        )


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request head; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request line")
    except asyncio.LimitOverrunError:
        raise BadRequest("request line too long", status=413)
    if len(line) > _MAX_LINE:
        raise BadRequest("request line too long", status=413)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise BadRequest(f"malformed request line: {line[:80]!r}")
    method, target, version = parts

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise BadRequest("truncated request headers")
        if len(line) > _MAX_LINE:
            raise BadRequest("request header too long", status=413)
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line[:80]!r}")
        name, value = name.strip().lower(), value.strip()
        if name in headers:
            # Duplicated framing headers are a smuggling vector, not a
            # merge candidate; everything else list-combines per RFC
            # 7230 §3.2.2.
            if name in ("content-length", "transfer-encoding",
                        "connection", "host"):
                raise BadRequest(f"duplicate {name} header")
            headers[name] = f"{headers[name]}, {value}"
        else:
            headers[name] = value

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise BadRequest(
            "chunked uploads are not supported; send Content-Length",
            status=411,
        )
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise BadRequest("unparseable Content-Length")
    if length < 0:
        raise BadRequest("negative Content-Length")

    path, _, query_string = target.partition("?")
    request = Request(
        method=method.upper(),
        path=unquote(path) or "/",
        query=dict(parse_qsl(query_string)),
        headers=headers,
        reader=reader,
        length=length,
    )
    if version == "HTTP/1.0" and headers.get(
            "connection", "").lower() != "keep-alive":
        request.headers["connection"] = "close"
    return request


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    keep_alive: bool,
) -> None:
    reason = REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{k}: {v}" for k, v in response.headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


__all__ = [
    "BadRequest",
    "REASONS",
    "Request",
    "Response",
    "read_request",
    "write_response",
]
