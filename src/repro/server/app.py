"""The long-running profile daemon: asyncio loop, lifecycle, GC.

This is the deployment shape of the BOLT data-center loop: clients
push serialized HSD profile documents over HTTP, the daemon folds each
one into a checkpointed
:class:`~repro.service.aggregate.IncrementalAggregator` as it arrives,
and operators pull merged snapshots, re-packed artifacts, and a
dashboard back out.  The module splits cleanly:

* :class:`ServerConfig` — everything that parameterizes one daemon;
* :class:`ProfileDaemon` — the asyncio server plus aggregator/store
  lifecycle: restore-or-cold-start on boot, checkpoint after every
  mutating request, periodic artifact-store GC sweeps under
  ``gc_max_bytes`` (checkpoint slot pinned, so eviction can never eat
  the daemon's own state), and graceful shutdown — SIGTERM stops the
  listener, drains in-flight requests, and writes a final checkpoint,
  so a restarted daemon resumes with no double-counting (replayed
  uploads dedup by content digest);
* :func:`start_daemon_thread` — the test/example harness: the same
  daemon on an ephemeral port in a background thread, with a handle
  that stops it synchronously.

Request routing lives in :mod:`repro.server.routes`; the HTTP wire
plumbing in :mod:`repro.server.http`.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.obs import inc, set_gauge
from repro.service import (
    ArtifactStore,
    FarmPolicy,
    IncrementalAggregator,
    MergePolicy,
    checkpoint_key,
    default_store,
)

from .http import BadRequest, Response, read_request, write_response

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServerConfig:
    """Everything that parameterizes one profile daemon."""

    #: Benchmark binary ``/repack`` packs against (``NAME`` + input).
    benchmark: str
    input_name: str = "A"
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from
    #: :attr:`ProfileDaemon.port` or the printed banner).
    port: int = 0
    scale: Optional[float] = None
    #: Merged phases per farm shard on ``/repack``.
    shard_size: int = 1
    jobs: Optional[int] = None
    #: Full pipeline-config document for the packer (``None`` =
    #: defaults), exactly as :class:`~repro.service.farm.FarmConfig`
    #: takes it.
    pipeline: Optional[Dict] = None
    #: Checkpoint-slot identity: one daemon tag = one resumable state.
    tag: str = "server"
    #: Artifact-store byte cap enforced by the periodic GC sweep
    #: (``None`` = GC off).
    gc_max_bytes: Optional[int] = None
    #: Seconds between GC sweeps.
    gc_interval: float = 30.0
    #: Optional directory of profile documents preloaded (and dedup'd)
    #: into the aggregator on boot — the ``repro serve --listen``
    #: migration path.
    profiles_dir: Optional[str] = None
    #: Seconds shutdown waits for in-flight requests to drain.
    drain_timeout: float = 5.0


class ProfileDaemon:
    """One long-running profile service over one aggregator + store."""

    def __init__(
        self,
        config: ServerConfig,
        store: Optional[ArtifactStore] = None,
        policy: Optional[MergePolicy] = None,
        farm_policy: Optional[FarmPolicy] = None,
    ):
        self.config = config
        self.store = store or default_store()
        self.policy = policy or MergePolicy()
        self.farm_policy = farm_policy or FarmPolicy()
        self.checkpoint_slot = checkpoint_key(config.tag, self.policy)
        # The daemon's own state must survive any GC pressure.
        self.store.pin(self.checkpoint_slot)

        restored = IncrementalAggregator.restore(
            self.store, config.tag, self.policy
        )
        self.aggregator = restored or IncrementalAggregator(self.policy)
        self.restored = restored is not None
        if config.profiles_dir:
            self.aggregator.ingest_paths(
                sorted(Path(config.profiles_dir).glob("*.json"))
            )

        #: Serializes every aggregator touch: ingest mutates on the
        #: event loop while snapshots/checkpoints/dashboard renders run
        #: in worker threads, and the aggregator has no locking of its
        #: own — an unguarded overlap tears ``to_state()`` or raises
        #: mid-iteration.  Held only around in-memory work (fold,
        #: serialize, materialize), never across disk writes.
        self.agg_lock = threading.Lock()

        self.started = time.time()
        self.port: Optional[int] = None
        #: Set (thread-safely readable) once the listener is bound.
        self.ready = threading.Event()
        #: Report dict of the most recent successful ``/repack``.
        self.last_report: Optional[Dict] = None
        self.requests = 0
        self.gc_sweeps = 0
        self.checkpoints = 0

        self._inflight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._repack_lock: Optional[asyncio.Lock] = None

    # -- state the routes read/write ---------------------------------

    @property
    def uptime(self) -> float:
        return time.time() - self.started

    def server_stats(self) -> Dict:
        return {
            "requests": self.requests,
            "inflight": self._inflight,
            "gc_sweeps": self.gc_sweeps,
            "checkpoints": self.checkpoints,
            "uptime": round(self.uptime, 3),
        }

    def snapshot(self):
        """Materialize the merged fleet under :attr:`agg_lock`.

        The returned :class:`~repro.service.merge.FleetProfile` is
        built from fresh structures, so callers may use it unlocked.
        """
        with self.agg_lock:
            return self.aggregator.snapshot()

    def checkpoint(self) -> bool:
        """Persist the aggregator; counted, never fatal.

        State is serialized under :attr:`agg_lock` so a concurrent
        ingest cannot tear it; the disk write happens unlocked.
        """
        with self.agg_lock:
            if not self.aggregator.documents:
                return False
            state = self.aggregator.to_state()
        saved = self.aggregator.save_checkpoint(
            self.store, self.config.tag, state=state
        )
        if saved:
            self.checkpoints += 1
        return saved

    def sweep_store(self) -> int:
        """One GC pass under the configured byte cap; evicted count."""
        if self.config.gc_max_bytes is None:
            return 0
        evicted = self.store.evict(self.config.gc_max_bytes)
        self.gc_sweeps += 1
        if evicted:
            logger.info(
                "server gc: evicted %d artifact(s), store now %d byte(s)",
                len(evicted), self.store.total_bytes(),
            )
        return len(evicted)

    # -- asyncio lifecycle -------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        from .routes import dispatch

        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as exc:
                    await write_response(
                        writer, Response.error(exc.status, str(exc)), False
                    )
                    break
                if request is None:
                    break
                self.requests += 1
                self._inflight += 1
                try:
                    response = await dispatch(self, request)
                    # An unread body would desynchronize keep-alive
                    # framing; a handler that failed mid-body closes.
                    try:
                        await request.drain()
                    except BadRequest:
                        request.headers["connection"] = "close"
                except BadRequest as exc:
                    response = Response.error(exc.status, str(exc))
                    request.headers["connection"] = "close"
                except Exception as exc:  # route bug: 500, keep serving
                    logger.exception("server: unhandled error on %s %s",
                                     request.method, request.path)
                    response = Response.error(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                    # The handler may have died mid-body; unread bytes
                    # would desynchronize keep-alive framing.
                    request.headers["connection"] = "close"
                finally:
                    self._inflight -= 1
                inc("server.requests",
                    method=request.method, status=str(response.status))
                keep = request.keep_alive and not (
                    self._shutdown and self._shutdown.is_set()
                )
                await write_response(writer, response, keep)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _gc_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.gc_interval)
            # Checkpoint first so the slot the sweep must keep is the
            # *current* state, then shrink under the cap.
            await asyncio.to_thread(self.checkpoint)
            await asyncio.to_thread(self.sweep_store)

    async def serve(self) -> None:
        """Run the daemon until shutdown is requested."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._repack_lock = asyncio.Lock()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, ValueError, RuntimeError):
                # Not the main thread (the test harness) or an
                # event-loop policy without signal support: the owner
                # stops us via request_shutdown() instead.
                break
        gc_task = (
            asyncio.ensure_future(self._gc_loop())
            if self.config.gc_max_bytes is not None
            else None
        )
        print(
            f"repro server: listening on "
            f"http://{self.config.host}:{self.port} "
            f"({self.config.benchmark}/{self.config.input_name}, "
            f"checkpoint {'restored' if self.restored else 'cold'})",
            flush=True,
        )
        self.ready.set()
        try:
            await self._shutdown.wait()
        finally:
            # Stop accepting, drain what is in flight, then write the
            # final checkpoint — the order SIGTERM semantics promise.
            server.close()
            await server.wait_closed()
            deadline = time.monotonic() + self.config.drain_timeout
            while self._inflight and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            if gc_task is not None:
                gc_task.cancel()
                try:
                    await gc_task
                except asyncio.CancelledError:
                    pass
            await asyncio.to_thread(self.checkpoint)
            set_gauge("server.uptime_seconds", round(self.uptime, 3))
            print("repro server: checkpointed and stopped", flush=True)

    def run(self) -> int:
        """Blocking entry point (the CLI's daemon path)."""
        asyncio.run(self.serve())
        return 0

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (harness equivalent of SIGTERM)."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed


@dataclass
class DaemonHandle:
    """A running background daemon plus its lifecycle controls."""

    daemon: ProfileDaemon
    thread: threading.Thread

    @property
    def port(self) -> int:
        assert self.daemon.port is not None
        return self.daemon.port

    @property
    def base_url(self) -> str:
        return f"http://{self.daemon.config.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain, final checkpoint, join."""
        self.daemon.request_shutdown()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise RuntimeError("daemon thread did not stop in time")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.thread.is_alive():
            self.stop()


def start_daemon_thread(
    config: ServerConfig,
    store: Optional[ArtifactStore] = None,
    policy: Optional[MergePolicy] = None,
    farm_policy: Optional[FarmPolicy] = None,
    timeout: float = 10.0,
) -> DaemonHandle:
    """Run a daemon on a background thread; returns once it is bound.

    The tests' and examples' front door: an ephemeral port (``port=0``
    recommended), a real socket, the full route surface — without
    subprocess management.
    """
    daemon = ProfileDaemon(
        config, store=store, policy=policy, farm_policy=farm_policy
    )
    thread = threading.Thread(
        target=daemon.run, name="repro-server", daemon=True
    )
    thread.start()
    if not daemon.ready.wait(timeout=timeout):
        daemon.request_shutdown()
        raise RuntimeError("daemon failed to bind within the timeout")
    return DaemonHandle(daemon=daemon, thread=thread)


__all__ = [
    "DaemonHandle",
    "ProfileDaemon",
    "ServerConfig",
    "start_daemon_thread",
]
