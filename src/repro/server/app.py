"""The long-running profile daemon: asyncio loop, tenants, lifecycle, GC.

This is the deployment shape of the BOLT data-center loop: clients
push serialized HSD profile documents over HTTP, the daemon folds each
one into a checkpointed
:class:`~repro.service.aggregate.IncrementalAggregator` as it arrives,
and operators pull merged snapshots, re-packed artifacts, and a
dashboard back out.

Since PR 10 the daemon is **multi-tenant**: one process collects
profiles for *many* binaries.  Each distinct ``meta.benchmark`` stamp
seen in uploads lazily becomes a tenant — its own aggregator, its own
lock, its own pinned checkpoint slot — while the artifact store and
the GC byte budget stay shared across tenants.  The module splits
cleanly:

* :class:`ServerConfig` — everything that parameterizes one daemon
  (defined in :mod:`repro.api`, re-exported here);
* :class:`Tenant` / :class:`TenantRegistry` — per-benchmark aggregator
  state plus the lazy creation, restore, and routing rules;
* :class:`ProfileDaemon` — the asyncio server plus registry/store
  lifecycle: restore-or-cold-start every known tenant on boot,
  checkpoint after every mutating request, periodic artifact-store GC
  sweeps under ``gc_max_bytes`` (every tenant's checkpoint slot and
  the tenant directory are pinned, so eviction can never eat daemon
  state), and graceful shutdown — SIGTERM stops the listener, drains
  in-flight requests, and writes a final checkpoint per tenant, so a
  restarted daemon resumes every tenant with no double-counting
  (replayed uploads dedup by content digest);
* :func:`start_daemon_thread` — the test/example harness: the same
  daemon on an ephemeral port in a background thread, with a handle
  that stops it synchronously.

The routing rule (documented in ``docs/service.md``): a scoped upload
(``POST /tenants/<name>/profiles``) pins every line to ``<name>`` and
quarantines lines stamped for a *different* tenant (stage ``route``);
a flat upload (``POST /profiles``) demultiplexes per line by the
``meta.benchmark`` stamp, with unstamped lines folding into the
default tenant (``config.benchmark/config.input_name``).  Flat
``/snapshot``, ``/repack``, and the per-tenant dashboard alias the
default tenant, so every PR-9 caller keeps working unchanged.

Request routing lives in :mod:`repro.server.routes`; the HTTP wire
plumbing in :mod:`repro.server.http`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import re
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api import ServerConfig
from repro.errors import ServiceError
from repro.obs import inc, set_gauge
from repro.service import (
    ArtifactStore,
    FarmPolicy,
    IncrementalAggregator,
    MergePolicy,
    checkpoint_key,
    default_store,
)
from repro.service.aggregate import quarantine_profile

from .http import BadRequest, Response, read_request, write_response

logger = logging.getLogger(__name__)

#: Version stamp of the tenant-directory slot payload.
TENANT_DIRECTORY_VERSION = 1

#: Path segments a tenant name may not end in — they would collide
#: with the ``/tenants/<name>/<verb>`` route suffixes.
RESERVED_SEGMENTS = frozenset({"profiles", "snapshot", "repack", "tenants"})

#: Characters a tenant name may use (benchmark specs like
#: ``181.mcf/A`` route cleanly; no URL escaping is ever needed).
_TENANT_CHARS = re.compile(r"[A-Za-z0-9._/:+-]+\Z")

_MAX_TENANT_NAME = 120


class RouteError(ServiceError):
    """A profile document that cannot be routed to a tenant.

    Quarantined per line with stage ``route`` — a mis-addressed upload
    is the sender's error and must never bleed into another tenant's
    aggregate (nor 500 the daemon).
    """

    default_hint = (
        "stamp meta.benchmark with the tenant the document belongs "
        "to, or upload through that tenant's /tenants/<name>/profiles"
    )

    def __init__(self, message: str, **kwargs):
        super().__init__(message, **kwargs)
        self.stage = "route"


def check_tenant_name(name: str) -> Optional[str]:
    """Why ``name`` cannot name a tenant, or ``None`` if it can."""
    if not isinstance(name, str) or not name:
        return "tenant name must be a non-empty string"
    if len(name) > _MAX_TENANT_NAME:
        return f"tenant name exceeds {_MAX_TENANT_NAME} characters"
    if not _TENANT_CHARS.match(name):
        return ("tenant name may only use letters, digits, and ./:+-_ "
                f"(got {name!r})")
    segments = name.split("/")
    if any(not segment for segment in segments):
        return f"tenant name has an empty path segment: {name!r}"
    if segments[-1] in RESERVED_SEGMENTS:
        return (f"tenant name may not end in a reserved segment "
                f"({', '.join(sorted(RESERVED_SEGMENTS))}): {name!r}")
    return None


def tenant_directory_key(tag: str) -> str:
    """Artifact-store slot listing a daemon's known tenants.

    A mutable slot like the checkpoint slots: keyed by daemon tag so a
    restarted daemon can eagerly restore every tenant it served, not
    just the ones that happen to receive traffic first.
    """
    digest = hashlib.blake2b(digest_size=20)
    digest.update(f"tenant-directory-v{TENANT_DIRECTORY_VERSION};".encode())
    digest.update(f"tag={tag};".encode())
    return digest.hexdigest()


@dataclass
class Tenant:
    """One benchmark's aggregator state inside a multi-tenant daemon."""

    name: str
    #: Checkpoint tag: the daemon tag itself for the default tenant
    #: (so PR-9 single-tenant checkpoints restore), ``tag:name`` else.
    tag: str
    #: Pinned artifact-store slot this tenant checkpoints into.
    slot: str
    aggregator: IncrementalAggregator
    #: Serializes every touch of :attr:`aggregator`: ingest mutates on
    #: the event loop while snapshots/checkpoints/dashboard renders
    #: run in worker threads, and the aggregator has no locking of its
    #: own.  Held only around in-memory work (fold, serialize,
    #: materialize), never across disk writes.
    lock: threading.Lock = field(default_factory=threading.Lock)
    restored: bool = False
    #: Report dict of this tenant's most recent successful ``/repack``.
    last_report: Optional[Dict] = None

    def snapshot(self):
        """Materialize the merged fleet under :attr:`lock`.

        The returned :class:`~repro.service.aggregate.FleetProfile` is
        built from fresh structures, so callers may use it unlocked.
        """
        with self.lock:
            return self.aggregator.snapshot()

    def checkpoint(self, store: ArtifactStore) -> bool:
        """Persist the aggregator; never fatal.

        State is serialized under :attr:`lock` so a concurrent ingest
        cannot tear it; the disk write happens unlocked.
        """
        with self.lock:
            if not self.aggregator.documents:
                return False
            state = self.aggregator.to_state()
        return self.aggregator.save_checkpoint(store, self.tag, state=state)

    def counters(self) -> Dict:
        """Thread-safe ingest counters for health/metrics/dashboard."""
        with self.lock:
            return {
                "documents": self.aggregator.documents,
                "duplicates": self.aggregator.duplicates,
                "quarantined": len(self.aggregator.rejected),
                "checkpoint": "restored" if self.restored else "cold",
            }

    def bench_spec(self, config: ServerConfig) -> Tuple[str, str]:
        """(benchmark, input) this tenant's ``/repack`` packs against.

        The default tenant packs the configured pair; a named tenant's
        name *is* its benchmark spec (``NAME/INPUT``, or a bare name
        that borrows the configured input).
        """
        if self.name == config.default_tenant:
            return config.benchmark, config.input_name
        if "/" in self.name:
            benchmark, _, input_name = self.name.rpartition("/")
            return benchmark, input_name
        return self.name, config.input_name


class TenantRegistry:
    """Lazily-created per-``meta.benchmark`` tenants over one store.

    Creation, restore, and the persisted tenant directory are
    serialized under one registry lock; each created tenant's
    checkpoint slot is pinned immediately, so the shared GC budget can
    never evict live daemon state.  Tenants are never dropped — the
    registry is append-only for a daemon's lifetime.
    """

    def __init__(
        self,
        config: ServerConfig,
        store: ArtifactStore,
        policy: MergePolicy,
    ):
        self.config = config
        self.store = store
        self.policy = policy
        self._lock = threading.RLock()
        self._tenants: Dict[str, Tenant] = {}
        self.directory_slot = tenant_directory_key(config.tag)
        self.store.pin(self.directory_slot)
        # Read the persisted directory BEFORE any get() — creating a
        # tenant rewrites the slot from the in-memory registry, so
        # reading afterwards would see only what was just written.
        known = self._stored_directory()
        #: The tenant the flat (PR-9) routes alias.
        self.default = self.get(config.default_tenant)
        for name in known:
            if check_tenant_name(name) is None:
                self.get(name)

    def _stored_directory(self) -> List[str]:
        payload = self.store.get(self.directory_slot)
        if not isinstance(payload, dict):
            return []
        if payload.get("version") != TENANT_DIRECTORY_VERSION:
            return []
        names = payload.get("tenants")
        return [n for n in names if isinstance(n, str)] \
            if isinstance(names, list) else []

    def _save_directory(self) -> None:
        self.store.put(self.directory_slot, {
            "kind": "tenant-directory",
            "version": TENANT_DIRECTORY_VERSION,
            "tag": self.config.tag,
            "tenants": sorted(self._tenants),
        })

    def get(self, name: str) -> Tenant:
        """The named tenant, created (and checkpoint-restored) lazily.

        Raises :class:`RouteError` for an invalid name — callers turn
        that into a per-line quarantine or a 400, never a new tenant.
        """
        problem = check_tenant_name(name)
        if problem is not None:
            raise RouteError(problem)
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is not None:
                return tenant
            tag = (self.config.tag if name == self.config.default_tenant
                   else f"{self.config.tag}:{name}")
            slot = checkpoint_key(tag, self.policy)
            # The tenant's state must survive any GC pressure; pin
            # before the first checkpoint can exist so there is no
            # window in which a sweep could take the slot.
            self.store.pin(slot)
            restored = IncrementalAggregator.restore(
                self.store, tag, self.policy
            )
            tenant = Tenant(
                name=name,
                tag=tag,
                slot=slot,
                aggregator=restored or IncrementalAggregator(self.policy),
                restored=restored is not None,
            )
            self._tenants[name] = tenant
            inc("server.tenants.created")
            self._save_directory()
            return tenant

    def peek(self, name: str) -> Optional[Tenant]:
        """The named tenant if it exists; reads never create tenants."""
        with self._lock:
            return self._tenants.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenants(self) -> List[Tenant]:
        """All tenants, sorted by name (a stable iteration snapshot)."""
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]


class ProfileDaemon:
    """One long-running profile service over N tenants + one store."""

    def __init__(
        self,
        config: ServerConfig,
        store: Optional[ArtifactStore] = None,
        policy: Optional[MergePolicy] = None,
        farm_policy: Optional[FarmPolicy] = None,
    ):
        self.config = config
        if store is None:
            store = (ArtifactStore(config.store) if config.store
                     else default_store())
        self.store = store
        self.policy = policy or MergePolicy()
        self.farm_policy = farm_policy or FarmPolicy()
        self.registry = TenantRegistry(config, self.store, self.policy)

        if config.profiles_dir:
            for path in sorted(Path(config.profiles_dir).glob("*.json")):
                try:
                    text = path.read_text()
                except OSError as exc:
                    tenant = self.registry.default
                    with tenant.lock:
                        tenant.aggregator.rejected.append(
                            quarantine_profile(str(path), exc)
                        )
                    continue
                self.route_text(text, name=str(path))

        self.started = time.time()
        self.port: Optional[int] = None
        #: Set (thread-safely readable) once the listener is bound.
        self.ready = threading.Event()
        self.requests = 0
        self.gc_sweeps = 0
        self.checkpoints = 0

        self._inflight = 0
        self._writers: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._repack_lock: Optional[asyncio.Lock] = None

    # -- single-tenant compatibility surface -------------------------
    # The PR-9 daemon held exactly one aggregator; these properties
    # keep that shape pointing at the default tenant so existing
    # callers (tests, tooling poking a live daemon) stay correct.

    @property
    def aggregator(self) -> IncrementalAggregator:
        return self.registry.default.aggregator

    @property
    def agg_lock(self) -> threading.Lock:
        return self.registry.default.lock

    @property
    def restored(self) -> bool:
        """True when any tenant resumed from a checkpoint."""
        return any(t.restored for t in self.registry.tenants())

    @property
    def last_report(self) -> Optional[Dict]:
        return self.registry.default.last_report

    # -- state the routes read/write ---------------------------------

    @property
    def uptime(self) -> float:
        return time.time() - self.started

    def server_stats(self) -> Dict:
        return {
            "requests": self.requests,
            "inflight": self._inflight,
            "gc_sweeps": self.gc_sweeps,
            "checkpoints": self.checkpoints,
            "tenants": len(self.registry.names()),
            "uptime": round(self.uptime, 3),
        }

    def totals(self) -> Dict:
        """Ingest counters summed over every tenant."""
        totals = {"documents": 0, "duplicates": 0, "quarantined": 0}
        for tenant in self.registry.tenants():
            counters = tenant.counters()
            for key in totals:
                totals[key] += counters[key]
        return totals

    def snapshot(self):
        """The default tenant's merged fleet (PR-9 compatibility)."""
        return self.registry.default.snapshot()

    def checkpoint_tenant(self, tenant: Tenant) -> bool:
        saved = tenant.checkpoint(self.store)
        if saved:
            self.checkpoints += 1
        return saved

    def checkpoint(self) -> bool:
        """Persist every tenant; counted, never fatal."""
        saved = False
        for tenant in self.registry.tenants():
            saved = self.checkpoint_tenant(tenant) or saved
        return saved

    def sweep_store(self) -> int:
        """One GC pass under the configured byte cap; evicted count.

        The cap is one budget over the whole store — tenants share it,
        and eviction accounting stays global; only pinned slots (every
        tenant's checkpoint, the tenant directory) are exempt.
        """
        if self.config.gc_max_bytes is None:
            return 0
        evicted = self.store.evict(self.config.gc_max_bytes)
        self.gc_sweeps += 1
        if evicted:
            logger.info(
                "server gc: evicted %d artifact(s), store now %d byte(s)",
                len(evicted), self.store.total_bytes(),
            )
        return len(evicted)

    # -- per-line tenant routing -------------------------------------

    def route_text(
        self,
        text: str,
        pinned: Optional[Tenant] = None,
        name: Optional[str] = None,
    ) -> Tuple[str, Tenant, Optional[Dict]]:
        """Route one profile document to its tenant and fold it.

        The routing rule: ``pinned`` (a scoped upload's URL tenant)
        wins, and a conflicting ``meta.benchmark`` stamp is
        quarantined into ``pinned`` with stage ``route``; without a
        pin, the stamp picks (and lazily creates) the tenant and
        unstamped documents fold into the default tenant.

        Returns ``(disposition, tenant, reject)`` where disposition is
        ``folded`` | ``duplicate`` | ``rejected`` and ``reject`` (for
        rejections only) carries the quarantine fields.
        """
        parsed: Optional[Dict] = None
        stamp = None
        try:
            loaded = json.loads(text)
        except ValueError:
            loaded = None
        if isinstance(loaded, dict):
            parsed = loaded
            meta = loaded.get("meta")
            if isinstance(meta, dict):
                stamp = meta.get("benchmark")

        route_error: Optional[RouteError] = None
        tenant = pinned
        if stamp is not None:
            if not isinstance(stamp, str) or check_tenant_name(stamp):
                route_error = RouteError(
                    f"unroutable meta.benchmark stamp {stamp!r}"
                )
            elif pinned is not None and stamp != pinned.name:
                route_error = RouteError(
                    f"document stamped for tenant {stamp!r} uploaded "
                    f"to tenant {pinned.name!r}"
                )
            elif pinned is None:
                tenant = self.registry.get(stamp)
        if tenant is None:
            tenant = self.registry.default

        if route_error is not None:
            label = name or "<upload:{}>".format(
                hashlib.blake2b(text.encode(), digest_size=16)
                .hexdigest()[:12]
            )
            reject = quarantine_profile(label, route_error)
            with tenant.lock:
                tenant.aggregator.rejected.append(reject)
            return "rejected", tenant, {
                "error": reject.error,
                "stage": reject.stage,
                "exception_type": reject.exception_type,
            }

        agg = tenant.aggregator
        with tenant.lock:
            before_rejects = len(agg.rejected)
            before_dupes = agg.duplicates
            if agg.ingest_text(text, name=name, parsed=parsed):
                return "folded", tenant, None
            if agg.duplicates > before_dupes:
                return "duplicate", tenant, None
            reject = agg.rejected[-1] if len(agg.rejected) > before_rejects \
                else None
        if reject is None:  # pragma: no cover - ingest_text invariant
            return "duplicate", tenant, None
        return "rejected", tenant, {
            "error": reject.error,
            "stage": reject.stage,
            "exception_type": reject.exception_type,
        }

    # -- asyncio lifecycle -------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        from .routes import dispatch

        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as exc:
                    await write_response(
                        writer, Response.error(exc.status, str(exc)), False
                    )
                    break
                if request is None:
                    break
                self.requests += 1
                self._inflight += 1
                try:
                    response = await dispatch(self, request)
                    # An unread body would desynchronize keep-alive
                    # framing; a handler that failed mid-body closes.
                    try:
                        await request.drain()
                    except BadRequest:
                        request.headers["connection"] = "close"
                except BadRequest as exc:
                    response = Response.error(exc.status, str(exc))
                    request.headers["connection"] = "close"
                except Exception as exc:  # route bug: 500, keep serving
                    logger.exception("server: unhandled error on %s %s",
                                     request.method, request.path)
                    response = Response.error(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                    # The handler may have died mid-body; unread bytes
                    # would desynchronize keep-alive framing.
                    request.headers["connection"] = "close"
                finally:
                    self._inflight -= 1
                inc("server.requests",
                    method=request.method, status=str(response.status))
                keep = request.keep_alive and not (
                    self._shutdown and self._shutdown.is_set()
                )
                await write_response(writer, response, keep)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _gc_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.gc_interval)
            # Checkpoint first so the slots the sweep must keep hold
            # the *current* state, then shrink under the cap.
            await asyncio.to_thread(self.checkpoint)
            await asyncio.to_thread(self.sweep_store)

    async def serve(self) -> None:
        """Run the daemon until shutdown is requested."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._repack_lock = asyncio.Lock()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, ValueError, RuntimeError):
                # Not the main thread (the test harness) or an
                # event-loop policy without signal support: the owner
                # stops us via request_shutdown() instead.
                break
        gc_task = (
            asyncio.ensure_future(self._gc_loop())
            if self.config.gc_max_bytes is not None
            else None
        )
        tenants = self.registry.tenants()
        restored = sum(1 for t in tenants if t.restored)
        print(
            f"repro server: listening on "
            f"http://{self.config.host}:{self.port} "
            f"(default tenant {self.config.default_tenant}, "
            f"checkpoint {'restored' if restored else 'cold'} "
            f"[{restored}/{len(tenants)} tenant(s)])",
            flush=True,
        )
        self.ready.set()
        try:
            await self._shutdown.wait()
        finally:
            # Stop accepting, drain what is in flight, then write the
            # final checkpoints — the order SIGTERM semantics promise.
            server.close()
            await server.wait_closed()
            deadline = time.monotonic() + self.config.drain_timeout
            while self._inflight and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            # Idle keep-alive connections are parked in read_request;
            # close them so their handler tasks finish before the loop
            # tears down (a cancelled reader would log noise instead).
            for writer in list(self._writers):
                writer.close()
            while self._writers and time.monotonic() < deadline + 1.0:
                await asyncio.sleep(0.01)
            if gc_task is not None:
                gc_task.cancel()
                try:
                    await gc_task
                except asyncio.CancelledError:
                    pass
            await asyncio.to_thread(self.checkpoint)
            set_gauge("server.uptime_seconds", round(self.uptime, 3))
            print("repro server: checkpointed and stopped", flush=True)

    def run(self) -> int:
        """Blocking entry point (the CLI's daemon path)."""
        asyncio.run(self.serve())
        return 0

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (harness equivalent of SIGTERM)."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already closed


@dataclass
class DaemonHandle:
    """A running background daemon plus its lifecycle controls."""

    daemon: ProfileDaemon
    thread: threading.Thread

    @property
    def port(self) -> int:
        assert self.daemon.port is not None
        return self.daemon.port

    @property
    def base_url(self) -> str:
        return f"http://{self.daemon.config.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain, final checkpoint, join."""
        self.daemon.request_shutdown()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise RuntimeError("daemon thread did not stop in time")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.thread.is_alive():
            self.stop()


def start_daemon_thread(
    config: ServerConfig,
    store: Optional[ArtifactStore] = None,
    policy: Optional[MergePolicy] = None,
    farm_policy: Optional[FarmPolicy] = None,
    timeout: float = 10.0,
) -> DaemonHandle:
    """Run a daemon on a background thread; returns once it is bound.

    The tests' and examples' front door: an ephemeral port (``port=0``
    recommended), a real socket, the full route surface — without
    subprocess management.
    """
    daemon = ProfileDaemon(
        config, store=store, policy=policy, farm_policy=farm_policy
    )
    thread = threading.Thread(
        target=daemon.run, name="repro-server", daemon=True
    )
    thread.start()
    if not daemon.ready.wait(timeout=timeout):
        daemon.request_shutdown()
        raise RuntimeError("daemon failed to bind within the timeout")
    return DaemonHandle(daemon=daemon, thread=thread)


__all__ = [
    "DaemonHandle",
    "ProfileDaemon",
    "RouteError",
    "ServerConfig",
    "Tenant",
    "TenantRegistry",
    "check_tenant_name",
    "start_daemon_thread",
    "tenant_directory_key",
]
