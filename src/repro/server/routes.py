"""Endpoint dispatch for the profile daemon.

The wire surface, all JSON except the dashboards.  Every data route
exists twice: tenant-scoped under ``/tenants/<name>/…``, and flat at
the root as a PR-9 compatibility alias for the **default tenant**
(``config.benchmark/config.input_name``):

============================== ======================================
``POST /tenants/<t>/profiles`` NDJSON stream of profile documents,
                               every line pinned to tenant ``<t>``
                               (created lazily); lines stamped for a
                               *different* tenant quarantine with
                               stage ``route``.
``POST /profiles``             the flat alias **demultiplexes**: each
                               line routes by its ``meta.benchmark``
                               stamp, unstamped lines fold into the
                               default tenant.
``GET /tenants/<t>/snapshot``  tenant's merged fleet profile + digest.
``POST /tenants/<t>/repack``   sharded farm pack of that tenant's
                               snapshot; full fleet report + artifact
                               keys.
``GET /tenants``               JSON tenant index (names + counters).
``GET /tenants/<t>/``          per-tenant HTML dashboard.
``GET /``                      HTML tenant index page.
``GET /artifacts/<k>``         content-addressed artifact retrieval
                               (shared across tenants; stamps the
                               read for GC).
``GET /healthz``               liveness + per-tenant/store counters.
``GET /metrics``               ``repro.obs`` registry snapshot.
============================== ======================================

``/snapshot`` and ``/repack`` at the root alias the default tenant.
Tenant names may contain ``/`` (benchmark specs like ``181.mcf/A``),
so tenant routes parse by *suffix*: the last path segment is the verb,
everything between ``/tenants/`` and the verb is the tenant name —
unambiguous because a tenant name may never end in a reserved segment.

Every handler returns a :class:`~repro.server.http.Response`; protocol
errors raise :class:`~repro.server.http.BadRequest`.  Handlers run on
the event loop but push blocking work (packing, checkpoint writes)
through ``asyncio.to_thread``, so ingest keeps streaming while a
repack runs.  Because of that split, every aggregator touch — folding
a document on the loop, serializing or snapshotting in a worker
thread — happens under that tenant's lock; the aggregator itself has
no locking.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ServiceError
from repro.obs import default_registry
from repro.service import FarmConfig, build_report, canonical_json, pack_fleet

from .http import BadRequest, Request, Response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ProfileDaemon, Tenant

#: Upload size cap: a fleet posts documents in batches, not the whole
#: fleet in one request.
MAX_UPLOAD_BYTES = 64 * 1024 * 1024


async def _profiles(
    daemon: "ProfileDaemon",
    request: Request,
    tenant: Optional["Tenant"] = None,
) -> Response:
    """Streaming NDJSON ingest: one profile document JSON per line.

    ``tenant`` pins a scoped upload; ``None`` (the flat alias) routes
    each line by its ``meta.benchmark`` stamp.
    """
    if request.length > MAX_UPLOAD_BYTES:
        raise BadRequest(
            f"upload of {request.length} bytes exceeds the "
            f"{MAX_UPLOAD_BYTES}-byte cap; batch the fleet", status=413,
        )
    received = folded = duplicates = 0
    rejected: List[Dict] = []
    truncated = None
    touched: Dict[str, "Tenant"] = {}
    folded_by: Dict[str, int] = {}

    def ingest_line(line: bytes) -> None:
        nonlocal received, folded, duplicates
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            return
        received += 1
        disposition, routed, reject = daemon.route_text(text, pinned=tenant)
        if disposition == "folded":
            folded += 1
            touched[routed.name] = routed
            folded_by[routed.name] = folded_by.get(routed.name, 0) + 1
        elif disposition == "duplicate":
            duplicates += 1
        else:
            entry = {"line": received, "tenant": routed.name}
            entry.update(reject or {})
            rejected.append(entry)

    buffer = b""
    try:
        async for chunk in request.chunks():
            buffer += chunk
            while True:
                line, sep, buffer = buffer.partition(b"\n")
                if not sep:
                    buffer = line
                    break
                ingest_line(line)
    except BadRequest as exc:
        # A peer that hung up mid-body gets its partial work accounted
        # and a 400 — the documents already folded stay folded.
        truncated = str(exc)
    if buffer and truncated is None:
        ingest_line(buffer)

    if touched:
        def checkpoint_touched() -> None:
            for routed in touched.values():
                daemon.checkpoint_tenant(routed)
        await asyncio.to_thread(checkpoint_touched)
    documents = (tenant.counters()["documents"] if tenant is not None
                 else daemon.totals()["documents"])
    body = {
        "received": received,
        "folded": folded,
        "duplicates": duplicates,
        "rejected": rejected,
        "documents": documents,
        "tenants": folded_by,
    }
    if tenant is not None:
        body["tenant"] = tenant.name
    if truncated is not None:
        body["truncated"] = truncated
    status = 400 if rejected or truncated is not None else 200
    return Response.json(body, status=status)


def _snapshot_payload(daemon: "ProfileDaemon", tenant: "Tenant") -> Dict:
    fleet = tenant.snapshot()
    return {
        "tenant": tenant.name,
        "fleet": fleet.to_dict(),
        "digest": fleet.digest(),
    }


async def _snapshot(
    daemon: "ProfileDaemon",
    request: Request,
    tenant: Optional["Tenant"] = None,
) -> Response:
    tenant = tenant or daemon.registry.default
    try:
        payload = await asyncio.to_thread(_snapshot_payload, daemon, tenant)
    except ServiceError as exc:
        return Response.error(404, str(exc), hint=exc.hint)
    return Response.json(payload)


def _repack_sync(daemon: "ProfileDaemon", tenant: "Tenant") -> Dict:
    from repro.experiments.parallel import resolve_jobs

    cfg = daemon.config
    benchmark, input_name = tenant.bench_spec(cfg)
    # One lock hold: the snapshot, the rejection view, and the ingest
    # counters must describe the same instant; packing and report
    # building below work on materialized copies, unlocked.
    with tenant.lock:
        fleet = tenant.aggregator.snapshot()
        ingest = tenant.aggregator.ingest_view()
        documents = tenant.aggregator.documents
        deduplicated = tenant.aggregator.duplicates
    farm = FarmConfig(
        benchmark=benchmark,
        input_name=input_name,
        scale=cfg.scale,
        pipeline=cfg.pipeline,
        shard_size=cfg.shard_size,
    )
    packed = pack_fleet(
        fleet, farm, jobs=cfg.jobs, store=daemon.store,
        policy=daemon.farm_policy,
    )
    report = build_report(
        ingest, fleet, packed, farm,
        daemon.store, jobs=resolve_jobs(cfg.jobs),
        aggregate={
            "mode": "streaming",
            "checkpoint": "restored" if tenant.restored else "cold",
            "documents": documents,
            "deduplicated": deduplicated,
        },
    )
    return {
        "tenant": tenant.name,
        "report": report.to_dict(),
        "artifacts": [outcome.key for outcome in packed.outcomes],
    }


async def _repack(
    daemon: "ProfileDaemon",
    request: Request,
    tenant: Optional["Tenant"] = None,
) -> Response:
    tenant = tenant or daemon.registry.default
    lock = daemon._repack_lock
    assert lock is not None
    async with lock:
        try:
            body = await asyncio.to_thread(_repack_sync, daemon, tenant)
        except ServiceError as exc:
            return Response.error(409, str(exc), hint=exc.hint)
        tenant.last_report = body["report"]
        await asyncio.to_thread(daemon.checkpoint_tenant, tenant)
    return Response.json(body)


async def _artifact(daemon: "ProfileDaemon", request: Request) -> Response:
    key = request.path[len("/artifacts/"):]
    if not key or "/" in key:
        raise BadRequest(f"malformed artifact key {key!r}")
    payload = await asyncio.to_thread(daemon.store.get, key)
    if payload is None:
        return Response.error(404, f"no artifact under key {key!r}")
    # Canonical bytes, exactly as a local store.get would canonicalize:
    # the HTTP round trip is byte-identical to the on-disk payload.
    return Response(status=200, body=canonical_json(payload),
                    content_type="application/json")


def _tenant_counters(daemon: "ProfileDaemon") -> Dict[str, Dict]:
    return {t.name: t.counters() for t in daemon.registry.tenants()}


async def _healthz(daemon: "ProfileDaemon", request: Request) -> Response:
    store = daemon.store
    totals = daemon.totals()
    return Response.json({
        "status": "ok",
        "benchmark": f"{daemon.config.benchmark}/"
                     f"{daemon.config.input_name}",
        "uptime": round(daemon.uptime, 3),
        "documents": totals["documents"],
        "duplicates": totals["duplicates"],
        "quarantined": totals["quarantined"],
        "checkpoint": "restored" if daemon.restored else "cold",
        "tenants": _tenant_counters(daemon),
        "store": {
            "root": store.root if store.enabled else "off",
            "hits": store.stats.hits,
            "misses": store.stats.misses,
            "puts": store.stats.puts,
            "evictions": store.stats.evictions,
        },
    })


async def _metrics(daemon: "ProfileDaemon", request: Request) -> Response:
    return Response.json({
        "metrics": default_registry().snapshot(),
        "server": daemon.server_stats(),
        "tenants": _tenant_counters(daemon),
    })


async def _tenant_index(daemon: "ProfileDaemon", request: Request) -> Response:
    return Response.json({
        "default": daemon.config.default_tenant,
        "tenants": _tenant_counters(daemon),
    })


async def _index_page(daemon: "ProfileDaemon", request: Request) -> Response:
    from .dashboard import render_index

    html = await asyncio.to_thread(render_index, daemon)
    return Response.html(html)


async def _tenant_page(
    daemon: "ProfileDaemon", request: Request, tenant: "Tenant"
) -> Response:
    from .dashboard import render_tenant

    html = await asyncio.to_thread(render_tenant, daemon, tenant)
    return Response.html(html)


#: (method, exact path) -> handler; prefix routes handled in dispatch.
_EXACT = {
    ("POST", "/profiles"): _profiles,
    ("GET", "/snapshot"): _snapshot,
    ("POST", "/repack"): _repack,
    ("GET", "/healthz"): _healthz,
    ("GET", "/metrics"): _metrics,
    ("GET", "/tenants"): _tenant_index,
    ("GET", "/"): _index_page,
}

#: Paths that exist (for 405-vs-404 on a method mismatch).
_KNOWN_PATHS = {path for _, path in _EXACT} | {"/artifacts/"}


async def _dispatch_tenant(
    daemon: "ProfileDaemon", request: Request
) -> Response:
    """Suffix-parse ``/tenants/<name>/<verb>`` and route it."""
    from .app import RouteError

    rest = request.path[len("/tenants/"):]
    if rest.endswith("/"):
        name = rest[:-1]
        tenant = daemon.registry.peek(name)
        if tenant is None:
            return Response.error(404, f"no tenant named {name!r}")
        if request.method != "GET":
            return Response.error(405, "the tenant dashboard is read-only")
        return await _tenant_page(daemon, request, tenant)
    name, _, verb = rest.rpartition("/")
    if verb == "profiles":
        if request.method != "POST":
            return Response.error(405, "profiles accepts POST only")
        try:
            tenant = daemon.registry.get(name)
        except RouteError as exc:
            return Response.error(400, str(exc), hint=exc.hint)
        return await _profiles(daemon, request, tenant=tenant)
    if verb in ("snapshot", "repack"):
        tenant = daemon.registry.peek(name)
        if tenant is None:
            return Response.error(404, f"no tenant named {name!r}")
        if verb == "snapshot":
            if request.method != "GET":
                return Response.error(405, "snapshot accepts GET only")
            return await _snapshot(daemon, request, tenant=tenant)
        if request.method != "POST":
            return Response.error(405, "repack accepts POST only")
        return await _repack(daemon, request, tenant=tenant)
    return Response.error(
        404,
        f"no tenant route for {request.path!r}",
        hint="tenant routes end in /profiles, /snapshot, /repack, or "
             "/ (dashboard)",
    )


async def dispatch(daemon: "ProfileDaemon", request: Request) -> Response:
    """Route one request; 404 unknown paths, 405 wrong methods."""
    handler = _EXACT.get((request.method, request.path))
    if handler is not None:
        return await handler(daemon, request)
    if request.path.startswith("/artifacts/"):
        if request.method != "GET":
            return Response.error(405, "artifacts are read-only")
        return await _artifact(daemon, request)
    if request.path == "/tenants/":
        if request.method != "GET":
            return Response.error(405, "the tenant index is read-only")
        return await _tenant_index(daemon, request)
    if request.path.startswith("/tenants/"):
        return await _dispatch_tenant(daemon, request)
    if any(path == request.path for path in _KNOWN_PATHS):
        return Response.error(
            405, f"{request.method} not supported on {request.path}"
        )
    return Response.error(404, f"no route for {request.path}")


__all__ = ["MAX_UPLOAD_BYTES", "dispatch"]
