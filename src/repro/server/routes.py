"""Endpoint dispatch for the profile daemon.

The wire surface, all JSON except the dashboard:

====================== ==============================================
``POST /profiles``     NDJSON stream of profile documents, folded
                       into the aggregator as chunks arrive; corrupt
                       lines quarantine (4xx, never 500), duplicate
                       content dedups, success checkpoints.
``GET /snapshot``      current merged fleet profile + digest.
``POST /repack``       sharded farm pack against the snapshot; the
                       full fleet report plus artifact keys.
``GET /artifacts/<k>`` content-addressed artifact retrieval (stamps
                       the read for GC).
``GET /healthz``       liveness + aggregator/store counters.
``GET /metrics``       ``repro.obs`` registry snapshot.
``GET /``              the HTML dashboard.
====================== ==============================================

Every handler returns a :class:`~repro.server.http.Response`; protocol
errors raise :class:`~repro.server.http.BadRequest`.  Handlers run on
the event loop but push blocking work (packing, checkpoint writes)
through ``asyncio.to_thread``, so ingest keeps streaming while a
repack runs.  Because of that split, every aggregator touch — folding
a document on the loop, serializing or snapshotting in a worker
thread — happens under ``daemon.agg_lock``; the aggregator itself has
no locking.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict, List

from repro.errors import ServiceError
from repro.obs import default_registry
from repro.service import FarmConfig, build_report, canonical_json, pack_fleet

from .http import BadRequest, Request, Response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ProfileDaemon

#: Upload size cap: a fleet posts documents in batches, not the whole
#: fleet in one request.
MAX_UPLOAD_BYTES = 64 * 1024 * 1024


async def _profiles(daemon: "ProfileDaemon", request: Request) -> Response:
    """Streaming NDJSON ingest: one profile document JSON per line."""
    if request.length > MAX_UPLOAD_BYTES:
        raise BadRequest(
            f"upload of {request.length} bytes exceeds the "
            f"{MAX_UPLOAD_BYTES}-byte cap; batch the fleet", status=413,
        )
    agg = daemon.aggregator
    received = folded = duplicates = 0
    rejected: List[Dict] = []
    truncated = None

    def ingest_line(line: bytes) -> None:
        nonlocal received, folded, duplicates
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            return
        received += 1
        with daemon.agg_lock:
            before_rejects = len(agg.rejected)
            before_dupes = agg.duplicates
            if agg.ingest_text(text):
                folded += 1
            elif agg.duplicates > before_dupes:
                duplicates += 1
            elif len(agg.rejected) > before_rejects:
                reject = agg.rejected[-1]
                rejected.append({
                    "line": received,
                    "error": reject.error,
                    "stage": reject.stage,
                    "exception_type": reject.exception_type,
                })

    buffer = b""
    try:
        async for chunk in request.chunks():
            buffer += chunk
            while True:
                line, sep, buffer = buffer.partition(b"\n")
                if not sep:
                    buffer = line
                    break
                ingest_line(line)
    except BadRequest as exc:
        # A peer that hung up mid-body gets its partial work accounted
        # and a 400 — the documents already folded stay folded.
        truncated = str(exc)
    if buffer and truncated is None:
        ingest_line(buffer)

    if folded:
        await asyncio.to_thread(daemon.checkpoint)
    body = {
        "received": received,
        "folded": folded,
        "duplicates": duplicates,
        "rejected": rejected,
        "documents": agg.documents,
    }
    if truncated is not None:
        body["truncated"] = truncated
    status = 400 if rejected or truncated is not None else 200
    return Response.json(body, status=status)


def _snapshot_payload(daemon: "ProfileDaemon") -> Dict:
    fleet = daemon.snapshot()
    return {"fleet": fleet.to_dict(), "digest": fleet.digest()}


async def _snapshot(daemon: "ProfileDaemon", request: Request) -> Response:
    try:
        payload = await asyncio.to_thread(_snapshot_payload, daemon)
    except ServiceError as exc:
        return Response.error(404, str(exc), hint=exc.hint)
    return Response.json(payload)


def _repack_sync(daemon: "ProfileDaemon") -> Dict:
    from repro.experiments.parallel import resolve_jobs

    cfg = daemon.config
    # One lock hold: the snapshot, the rejection view, and the ingest
    # counters must describe the same instant; packing and report
    # building below work on materialized copies, unlocked.
    with daemon.agg_lock:
        fleet = daemon.aggregator.snapshot()
        ingest = daemon.aggregator.ingest_view()
        documents = daemon.aggregator.documents
        deduplicated = daemon.aggregator.duplicates
    farm = FarmConfig(
        benchmark=cfg.benchmark,
        input_name=cfg.input_name,
        scale=cfg.scale,
        pipeline=cfg.pipeline,
        shard_size=cfg.shard_size,
    )
    packed = pack_fleet(
        fleet, farm, jobs=cfg.jobs, store=daemon.store,
        policy=daemon.farm_policy,
    )
    report = build_report(
        ingest, fleet, packed, farm,
        daemon.store, jobs=resolve_jobs(cfg.jobs),
        aggregate={
            "mode": "streaming",
            "checkpoint": "restored" if daemon.restored else "cold",
            "documents": documents,
            "deduplicated": deduplicated,
        },
    )
    return {
        "report": report.to_dict(),
        "artifacts": [outcome.key for outcome in packed.outcomes],
    }


async def _repack(daemon: "ProfileDaemon", request: Request) -> Response:
    lock = daemon._repack_lock
    assert lock is not None
    async with lock:
        try:
            body = await asyncio.to_thread(_repack_sync, daemon)
        except ServiceError as exc:
            return Response.error(409, str(exc), hint=exc.hint)
        daemon.last_report = body["report"]
        await asyncio.to_thread(daemon.checkpoint)
    return Response.json(body)


async def _artifact(daemon: "ProfileDaemon", request: Request) -> Response:
    key = request.path[len("/artifacts/"):]
    if not key or "/" in key:
        raise BadRequest(f"malformed artifact key {key!r}")
    payload = await asyncio.to_thread(daemon.store.get, key)
    if payload is None:
        return Response.error(404, f"no artifact under key {key!r}")
    # Canonical bytes, exactly as a local store.get would canonicalize:
    # the HTTP round trip is byte-identical to the on-disk payload.
    return Response(status=200, body=canonical_json(payload),
                    content_type="application/json")


async def _healthz(daemon: "ProfileDaemon", request: Request) -> Response:
    agg = daemon.aggregator
    store = daemon.store
    return Response.json({
        "status": "ok",
        "benchmark": f"{daemon.config.benchmark}/"
                     f"{daemon.config.input_name}",
        "uptime": round(daemon.uptime, 3),
        "documents": agg.documents,
        "duplicates": agg.duplicates,
        "quarantined": len(agg.rejected),
        "checkpoint": "restored" if daemon.restored else "cold",
        "store": {
            "root": store.root if store.enabled else "off",
            "hits": store.stats.hits,
            "misses": store.stats.misses,
            "puts": store.stats.puts,
            "evictions": store.stats.evictions,
        },
    })


async def _metrics(daemon: "ProfileDaemon", request: Request) -> Response:
    return Response.json({
        "metrics": default_registry().snapshot(),
        "server": daemon.server_stats(),
    })


async def _dashboard(daemon: "ProfileDaemon", request: Request) -> Response:
    from .dashboard import render_dashboard

    html = await asyncio.to_thread(render_dashboard, daemon)
    return Response.html(html)


#: (method, exact path) -> handler; prefix routes handled in dispatch.
_EXACT = {
    ("POST", "/profiles"): _profiles,
    ("GET", "/snapshot"): _snapshot,
    ("POST", "/repack"): _repack,
    ("GET", "/healthz"): _healthz,
    ("GET", "/metrics"): _metrics,
    ("GET", "/"): _dashboard,
}

#: Paths that exist (for 405-vs-404 on a method mismatch).
_KNOWN_PATHS = {path for _, path in _EXACT} | {"/artifacts/"}


async def dispatch(daemon: "ProfileDaemon", request: Request) -> Response:
    """Route one request; 404 unknown paths, 405 wrong methods."""
    handler = _EXACT.get((request.method, request.path))
    if handler is not None:
        return await handler(daemon, request)
    if request.path.startswith("/artifacts/"):
        if request.method != "GET":
            return Response.error(405, "artifacts are read-only")
        return await _artifact(daemon, request)
    if any(path == request.path for path in _KNOWN_PATHS):
        return Response.error(
            405, f"{request.method} not supported on {request.path}"
        )
    return Response.error(404, f"no route for {request.path}")


__all__ = ["MAX_UPLOAD_BYTES", "dispatch"]
