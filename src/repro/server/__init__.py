"""HTTP front door for the fleet profile service.

The long-running counterpart of the one-shot ``repro serve`` request
(the BOLT deployment loop): a stdlib/asyncio daemon that accepts
streaming NDJSON profile uploads into a checkpointed
:class:`~repro.service.aggregate.IncrementalAggregator`, serves
content-addressed packing artifacts and merged snapshots back, re-packs
on demand through the sharded farm, keeps the artifact store bounded
with LRU GC, and shuts down gracefully (drain → final checkpoint).

Start it with ``repro server --bench NAME/INPUT --listen HOST:PORT``
(or ``repro serve ... --listen``), or in-process via
:func:`start_daemon_thread`; drive it with
:class:`~repro.server.client.DaemonClient`.
"""

from .app import DaemonHandle, ProfileDaemon, ServerConfig, start_daemon_thread
from .client import DaemonClient
from .http import BadRequest, Request, Response
from .routes import MAX_UPLOAD_BYTES, dispatch

__all__ = [
    "BadRequest",
    "DaemonClient",
    "DaemonHandle",
    "MAX_UPLOAD_BYTES",
    "ProfileDaemon",
    "Request",
    "Response",
    "ServerConfig",
    "dispatch",
    "start_daemon_thread",
]
