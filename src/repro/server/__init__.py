"""HTTP front door for the fleet profile service.

The long-running counterpart of the one-shot ``repro serve`` request
(the BOLT deployment loop): a stdlib/asyncio daemon that accepts
streaming NDJSON profile uploads into checkpointed per-tenant
:class:`~repro.service.aggregate.IncrementalAggregator` instances —
one tenant per ``meta.benchmark`` value, lazily created by the
:class:`~repro.server.app.TenantRegistry` — serves content-addressed
packing artifacts and per-tenant merged snapshots back, re-packs on
demand through the sharded farm, keeps the shared artifact store
bounded with LRU GC under one global byte budget (every tenant's
checkpoint slot pinned), and shuts down gracefully (drain → final
checkpoint per tenant).

Start it with ``repro server --bench NAME/INPUT --listen HOST:PORT``
(or ``repro server --config server.json``), or in-process via
:func:`start_daemon_thread`; drive it with
:class:`~repro.server.client.DaemonClient` and its
:meth:`~repro.server.client.DaemonClient.tenant` handles.
"""

from .app import (
    DaemonHandle,
    ProfileDaemon,
    RouteError,
    ServerConfig,
    Tenant,
    TenantRegistry,
    check_tenant_name,
    start_daemon_thread,
    tenant_directory_key,
)
from .client import DaemonClient, TenantClient
from .http import BadRequest, Request, Response
from .routes import MAX_UPLOAD_BYTES, dispatch

__all__ = [
    "BadRequest",
    "DaemonClient",
    "DaemonHandle",
    "MAX_UPLOAD_BYTES",
    "ProfileDaemon",
    "Request",
    "Response",
    "RouteError",
    "ServerConfig",
    "Tenant",
    "TenantClient",
    "TenantRegistry",
    "check_tenant_name",
    "dispatch",
    "start_daemon_thread",
    "tenant_directory_key",
]
