"""The fuzz driver: seed scheduling, corpus persistence, shrinking.

``run_fuzz`` walks a deterministic seed range, derives a per-seed
:class:`~repro.fuzz.genprog.GenConfig` variation (so the range explores
the knob space, not one fixed shape), runs every case through the
oracle stack, and:

* keeps cases whose *coverage signature* is novel in the corpus
  directory (``--corpus`` or ``REPRO_FUZZ_CORPUS``) — that is the
  coverage guidance;
* greedily **shrinks** any failing case (drop functions → cut branches
  → shorten the phase script) and writes a replayable repro file, which
  ``repro fuzz --replay <case.json>`` re-runs through the full stack.

Seeds are partitioned across worker processes with
:func:`~repro.experiments.parallel.parallel_map`; results are
deterministic and input-ordered, so a parallel run reports exactly what
a serial run would.  Fault-injection hooks (``mutate_packed``) force
the serial path — closures do not pickle.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.experiments.parallel import parallel_map, resolve_jobs
from repro.obs import annotate, inc, span
from repro.postlink.rewriter import PackedProgram

from .genprog import (
    FuzzCase,
    GenConfig,
    Reduction,
    ReductionError,
    build_case,
    case_to_dict,
    load_case,
    save_case,
)
from .oracles import CaseReport, run_oracle_stack

_ENV_CORPUS = "REPRO_FUZZ_CORPUS"

#: Every Nth seed runs a detection-sized phase script (>= 45k branches
#: per segment, so the HSD finds phases and packing actually packs);
#: the rest run small scripts that exercise the same pipeline paths in
#: a few milliseconds.
_DETECTION_SEED_STRIDE = 16


# ---------------------------------------------------------------------------
# argument parsing helpers (shared by the CLI and tests)
# ---------------------------------------------------------------------------

def parse_seed_range(spec: str) -> range:
    """``"0:200"`` → ``range(0, 200)``; ``"42"`` → ``range(42, 43)``."""
    text = spec.strip()
    if ":" in text:
        lo_text, hi_text = text.split(":", 1)
        lo, hi = int(lo_text or 0), int(hi_text)
    else:
        lo = int(text)
        hi = lo + 1
    if hi <= lo:
        raise ValueError(f"empty seed range {spec!r}")
    return range(lo, hi)


def parse_budget(spec: Optional[str]) -> Optional[float]:
    """``"60s"`` / ``"2m"`` / ``"90"`` → seconds; ``None`` → no budget."""
    if spec is None:
        return None
    text = str(spec).strip().lower()
    if not text:
        return None
    scale = 1.0
    if text.endswith("ms"):
        scale, text = 0.001, text[:-2]
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("h"):
        scale, text = 3600.0, text[:-1]
    value = float(text) * scale
    if value <= 0:
        raise ValueError(f"budget {spec!r} must be positive")
    return value


def resolve_corpus(explicit: Optional[str] = None) -> Optional[str]:
    """Corpus directory: explicit argument, else ``REPRO_FUZZ_CORPUS``,
    else ``None`` (persistence disabled)."""
    if explicit:
        return explicit
    env = os.environ.get(_ENV_CORPUS, "").strip()
    return env or None


# ---------------------------------------------------------------------------
# per-seed configuration
# ---------------------------------------------------------------------------

def config_for_seed(seed: int, base: Optional[GenConfig] = None) -> GenConfig:
    """Deterministic knob variation for one seed.

    Derived from the seed alone (not from process state), so any seed's
    case regenerates identically anywhere.  When ``base`` is given its
    shape is kept and only the phase-script size policy applies.
    """
    import random

    rng = random.Random(f"fuzzcfg:{seed}")
    detect = seed % _DETECTION_SEED_STRIDE == 0
    if base is None:
        base = GenConfig(
            functions=rng.randrange(1, 5),
            loop_depth=rng.randrange(1, 4),
            call_fanout=rng.randrange(0, 3),
            chain_depth=rng.randrange(1, 3),
            diamonds=rng.randrange(1, 4),
            block_size=rng.randrange(2, 7),
            phases=rng.randrange(1, 4),
            phase_pattern=rng.choice(("sequence", "repeat")),
            irreducible_fraction=rng.uniform(0.0, 0.8),
            recursion=rng.random() < 0.3,
            cold_functions=rng.randrange(0, 3),
        )
    branches = 45_000 if detect else rng.randrange(3_000, 9_000)
    return dataclasses.replace(base, phase_branches=branches)


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass
class SeedResult:
    """Oracle verdicts for one seed."""

    seed: int
    ok: bool
    failing: Tuple[str, ...] = ()
    signature: Tuple[str, ...] = ()
    packages: int = 0
    records: int = 0
    detail: str = ""
    duration: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class FuzzReport:
    """Outcome of one ``run_fuzz`` invocation."""

    results: List[SeedResult] = field(default_factory=list)
    #: Shrunk failing cases (same seed order as ``results``).
    failures: List[FuzzCase] = field(default_factory=list)
    failure_paths: List[str] = field(default_factory=list)
    novel_signatures: int = 0
    corpus_dir: Optional[str] = None
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def seeds_run(self) -> int:
        return len(self.results)

    def render(self) -> str:
        failed = [r for r in self.results if not r.ok]
        lines = [
            f"fuzz: {self.seeds_run} seeds in {self.elapsed:.1f}s — "
            f"{len(failed)} failing, {self.novel_signatures} novel "
            f"signatures"
            + (f", corpus {self.corpus_dir}" if self.corpus_dir else "")
            + (" (budget exhausted)" if self.budget_exhausted else "")
        ]
        for result in failed:
            lines.append(
                f"  seed {result.seed}: FAILED "
                f"[{', '.join(result.failing)}] {result.detail}".rstrip()
            )
        for case, path in zip(self.failures, self.failure_paths):
            program = case.workload.program
            kind = "shrunk" if not case.reduction.is_identity else "repro"
            lines.append(
                f"  seed {case.seed} {kind}: {len(program.functions)} "
                f"function(s), {sum(len(f.blocks) for f in program.functions.values())} "
                f"blocks → {path or '(not persisted)'}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# workers
# ---------------------------------------------------------------------------

def _case_for(seed: int, config_payload: Optional[dict]) -> FuzzCase:
    base = GenConfig.from_dict(config_payload) if config_payload else None
    return build_case(seed, config_for_seed(seed, base))


def _run_seed(item: Tuple[int, Optional[dict]]) -> dict:
    """Module-level worker (must stay picklable for parallel_map)."""
    seed, config_payload = item
    started = time.perf_counter()
    capture = obs.start_capture()
    with span("fuzz.seed", seed=seed) as entry:
        try:
            case = _case_for(seed, config_payload)
            report = run_oracle_stack(case)
        except Exception as exc:
            annotate(entry, ok=False, error=type(exc).__name__)
            result = SeedResult(
                seed=seed,
                ok=False,
                failing=("harness",),
                detail=f"{type(exc).__name__}: {exc}",
                duration=time.perf_counter() - started,
            ).to_dict()
        else:
            failing = tuple(report.failing())
            detail = "; ".join(
                f"{r.name}: {r.detail}" for r in report.results if not r.ok
            )
            annotate(entry, ok=report.ok, packages=report.packages)
            result = SeedResult(
                seed=seed,
                ok=report.ok,
                failing=failing,
                signature=report.signature,
                packages=report.packages,
                records=report.records,
                detail=detail[:500],
                duration=time.perf_counter() - started,
            ).to_dict()
    return _attach_obs(result, capture)


def _attach_obs(result: dict, capture) -> dict:
    """Attach a finished worker capture as ``result["obs"]``.

    ``run_fuzz`` pops the key and absorbs it into the parent ledger
    before the payload is turned back into a :class:`SeedResult`.
    """
    if capture is not None:
        result["obs"] = obs.finish_capture(capture)
    return result


def _result_from_dict(payload: dict) -> SeedResult:
    payload = dict(payload)
    payload["failing"] = tuple(payload.get("failing", ()))
    payload["signature"] = tuple(payload.get("signature", ()))
    return SeedResult(**payload)


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def _still_fails(
    case: FuzzCase,
    reduction: Reduction,
    only: Optional[Tuple[str, ...]],
    mutate_packed,
) -> Optional[FuzzCase]:
    """The reduced case iff it still fails the (restricted) stack."""
    try:
        candidate = build_case(case.seed, case.config, reduction)
    except ReductionError:
        return None
    report = run_oracle_stack(candidate, only=only, mutate_packed=mutate_packed)
    return candidate if not report.ok else None


def shrink_case(
    case: FuzzCase,
    failing: Sequence[str] = (),
    mutate_packed: Optional[
        Callable[[PackedProgram], Optional[PackedProgram]]
    ] = None,
    max_probes: int = 200,
) -> FuzzCase:
    """Greedy minimization of a failing case.

    Three passes, in the order the gains are largest: drop whole
    functions, cut conditional branches (their blocks fall through and
    unreachable code is pruned), then shorten the phase script — first
    truncating to one segment, then halving the segment length.  Every
    candidate is re-checked against the oracles that originally failed
    (``failing``; empty = the full stack) and kept only if it still
    fails; the result is always itself a replayable failing case.
    """
    only = tuple(failing) or None
    current = case
    probes = 0

    # Pass 1: drop functions, re-trying until a fixpoint (removing one
    # function can make another droppable).
    changed = True
    while changed and probes < max_probes:
        changed = False
        program = current.workload.program
        for name in sorted(program.functions):
            if name == program.entry or probes >= max_probes:
                continue
            reduction = dataclasses.replace(
                current.reduction,
                drop_functions=current.reduction.drop_functions + (name,),
            )
            probes += 1
            reduced = _still_fails(case, reduction, only, mutate_packed)
            if reduced is not None:
                current = reduced
                changed = True

    # Pass 2: cut conditional branches (one at a time, single sweep —
    # the fall-through keeps the program valid, pruning drops whatever
    # became unreachable).
    program = current.workload.program
    branch_sites = [
        (function.name, block.label)
        for function in program.functions.values()
        for block in function.blocks
        if block.terminator is not None
        and block.terminator.is_conditional_branch
    ]
    for site in branch_sites:
        if probes >= max_probes:
            break
        reduction = dataclasses.replace(
            current.reduction,
            cut_branches=current.reduction.cut_branches + (site,),
        )
        probes += 1
        reduced = _still_fails(case, reduction, only, mutate_packed)
        if reduced is not None:
            current = reduced

    # Pass 3: shorten the phase script — truncate, then halve.
    segments = len(current.workload.phase_script.segments)
    if segments > 1 and probes < max_probes:
        reduction = dataclasses.replace(current.reduction, phase_segments=1)
        probes += 1
        reduced = _still_fails(case, reduction, only, mutate_packed)
        if reduced is not None:
            current = reduced
    scale = current.reduction.phase_scale
    while scale > 1 / 64 and probes < max_probes:
        scale /= 2
        reduction = dataclasses.replace(
            current.reduction, phase_scale=scale
        )
        probes += 1
        reduced = _still_fails(case, reduction, only, mutate_packed)
        if reduced is None:
            break
        current = reduced

    return FuzzCase(
        seed=current.seed,
        config=current.config,
        reduction=current.reduction,
        workload=current.workload,
        note=case.note or f"shrunk; fails {', '.join(only or ('stack',))}",
    )


# ---------------------------------------------------------------------------
# corpus persistence
# ---------------------------------------------------------------------------

def _load_known_signatures(corpus_dir: str) -> Set[Tuple[str, ...]]:
    known: Set[Tuple[str, ...]] = set()
    directory = os.path.join(corpus_dir, "corpus")
    if not os.path.isdir(directory):
        return known
    for name in os.listdir(directory):
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                payload = json.load(handle)
            known.add(tuple(payload.get("signature", ())))
        except (OSError, ValueError):
            continue
    return known


def _persist_case(
    corpus_dir: str, subdir: str, name: str, case: FuzzCase,
    extra: Optional[dict] = None,
) -> str:
    directory = os.path.join(corpus_dir, subdir)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    payload = case_to_dict(case)
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

def run_fuzz(
    seeds: range,
    base_config: Optional[GenConfig] = None,
    jobs: Optional[int] = None,
    budget: Optional[float] = None,
    corpus: Optional[str] = None,
    shrink: bool = True,
    mutate_packed: Optional[
        Callable[[PackedProgram], Optional[PackedProgram]]
    ] = None,
) -> FuzzReport:
    """Fuzz a seed range through the oracle stack.

    ``budget`` (seconds) stops scheduling new chunks once exceeded —
    already-scheduled seeds finish, so the report stays deterministic
    for the seeds it covers.  ``mutate_packed`` (fault-injection) forces
    serial execution.
    """
    started = time.monotonic()
    corpus_dir = resolve_corpus(corpus)
    config_payload = base_config.to_dict() if base_config else None
    report = FuzzReport(corpus_dir=corpus_dir)

    known = _load_known_signatures(corpus_dir) if corpus_dir else set()
    known.add(())  # the empty signature is never worth keeping

    workers = resolve_jobs(jobs)
    serial = mutate_packed is not None or workers <= 1
    chunk_size = 1 if serial else max(workers * 4, 8)

    pending = list(seeds)
    while pending:
        if budget is not None and time.monotonic() - started >= budget:
            report.budget_exhausted = True
            break
        chunk, pending = pending[:chunk_size], pending[chunk_size:]
        items = [(seed, config_payload) for seed in chunk]
        if serial:
            payloads = []
            for item in items:
                if mutate_packed is None:
                    payloads.append(_run_seed(item))
                else:
                    payloads.append(
                        _run_seed_mutating(item, mutate_packed)
                    )
        else:
            payloads = parallel_map(_run_seed, items, jobs=workers)
        for payload in payloads:
            obs.absorb(payload.pop("obs", None))
            result = _result_from_dict(payload)
            report.results.append(result)
            inc("fuzz.seeds")
            if not result.ok:
                inc("fuzz.failures")
            if corpus_dir and result.ok and result.signature not in known:
                known.add(result.signature)
                report.novel_signatures += 1
                inc("fuzz.novel_signatures")
                case = _case_for(result.seed, config_payload)
                _persist_case(
                    corpus_dir, "corpus", f"seed{result.seed:06d}.json",
                    case, extra={"signature": list(result.signature)},
                )
            elif result.signature and result.signature not in known:
                known.add(result.signature)
                report.novel_signatures += 1
                inc("fuzz.novel_signatures")
            if not result.ok:
                case = _case_for(result.seed, config_payload)
                failing = tuple(f for f in result.failing if f != "harness")
                shrunk = case
                if shrink and failing:
                    shrunk = shrink_case(
                        case, failing, mutate_packed=mutate_packed
                    )
                report.failures.append(shrunk)
                path = ""
                if corpus_dir:
                    path = _persist_case(
                        corpus_dir, "failures",
                        f"fail-seed{result.seed:06d}.json", shrunk,
                        extra={"failing": list(result.failing),
                               "detail": result.detail},
                    )
                report.failure_paths.append(path)

    report.elapsed = time.monotonic() - started
    return report


def _run_seed_mutating(item: Tuple[int, Optional[dict]], mutate_packed) -> dict:
    """Serial-only variant of :func:`_run_seed` with a fault hook."""
    seed, config_payload = item
    started = time.perf_counter()
    with span("fuzz.seed", seed=seed) as entry:
        try:
            case = _case_for(seed, config_payload)
            report = run_oracle_stack(case, mutate_packed=mutate_packed)
        except Exception as exc:
            annotate(entry, ok=False, error=type(exc).__name__)
            return SeedResult(
                seed=seed, ok=False, failing=("harness",),
                detail=f"{type(exc).__name__}: {exc}",
                duration=time.perf_counter() - started,
            ).to_dict()
        detail = "; ".join(
            f"{r.name}: {r.detail}" for r in report.results if not r.ok
        )
        annotate(entry, ok=report.ok, packages=report.packages)
        return SeedResult(
            seed=seed, ok=report.ok, failing=tuple(report.failing()),
            signature=report.signature, packages=report.packages,
            records=report.records, detail=detail[:500],
            duration=time.perf_counter() - started,
        ).to_dict()


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

def replay_case(
    path: str,
    mutate_packed: Optional[
        Callable[[PackedProgram], Optional[PackedProgram]]
    ] = None,
) -> Tuple[FuzzCase, CaseReport]:
    """Re-run a persisted repro file through the full oracle stack."""
    case = load_case(path)
    report = run_oracle_stack(case, mutate_packed=mutate_packed)
    return case, report
