"""Differential conformance fuzzing.

The paper's contract is that vacuum packing preserves program semantics
while working from lossy hardware profiles; this package machine-checks
that contract at scale:

* :mod:`repro.fuzz.genprog` — a seeded random *program generator* that
  emits structurally-valid linked images (nested loops,
  irreducible-ish CFG fragments, call chains) with matching behavior
  models and phase scripts, plus the *reduction* engine the shrinker
  uses to minimize failing cases;
* :mod:`repro.fuzz.oracles` — the four-oracle conformance stack
  (engine equivalence, pack differential, structural validation,
  trace-cache round-trip stability);
* :mod:`repro.fuzz.driver` — the coverage-guided fuzz driver with
  corpus persistence, deterministic parallel seed partitioning, greedy
  shrinking, and repro-file replay (``repro fuzz``).
"""

from .driver import (
    FuzzReport,
    SeedResult,
    parse_budget,
    parse_seed_range,
    replay_case,
    resolve_corpus,
    run_fuzz,
    shrink_case,
)
from .genprog import (
    FuzzCase,
    GenConfig,
    Reduction,
    apply_reduction,
    build_case,
    case_from_dict,
    case_to_dict,
    generate_case,
    load_case,
    save_case,
)
from .oracles import CaseReport, OracleResult, mispatch_launch, run_oracle_stack

__all__ = [
    "CaseReport",
    "FuzzCase",
    "FuzzReport",
    "GenConfig",
    "OracleResult",
    "Reduction",
    "SeedResult",
    "apply_reduction",
    "build_case",
    "case_from_dict",
    "case_to_dict",
    "generate_case",
    "load_case",
    "mispatch_launch",
    "parse_budget",
    "parse_seed_range",
    "replay_case",
    "resolve_corpus",
    "run_fuzz",
    "save_case",
    "shrink_case",
]
