"""Seeded random program generator for differential conformance fuzzing.

Emits structurally-valid linked images — nested counted loops,
irreducible-ish CFG fragments (side entries into loop interiors), call
chains with configurable fan-out, bounded recursion, guarded cold code —
plus the matching :class:`~repro.engine.behavior.BehaviorModel` and
:class:`~repro.engine.phases.PhaseScript`, bundled as a
:class:`~repro.workloads.base.Workload`.  The EPIC-style substrate has
no indirect branches, so every generated image is indirect-branch-free
by construction.

Everything is a deterministic function of ``(seed, GenConfig)``: the
same pair regenerates the identical program, behavior, and script in
any process (branch outcomes key on the behavior model's registration
order, not on process-global uid counters).  A failing case therefore
serializes as just ``{seed, config, reduction}`` — see
:func:`case_to_dict` / :func:`load_case`.

**Validity invariants** (the oracles and the shrinker rely on these):

* every function ends in a ``ret``/``halt`` block, and no block with
  fall-through semantics (plain, conditional branch, call) is last;
* every cycle — loop back-edges, recursion — passes through a
  conditional branch, so neither engine can enter a branchless spin;
* ``jump``/side-entry branches only target *forward* labels; the only
  back-edges are conditional loop latches.

The :class:`Reduction` machinery preserves all three: dropping a
function strips the ``call`` terminators that reference it (the call
block falls through to its original return continuation), cutting a
branch removes its taken edge (the block falls through), and unreachable
blocks are pruned afterwards — removing edges can only destroy cycles,
never create them.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.behavior import BehaviorModel
from repro.engine.executor import ExecutionLimits
from repro.engine.phases import PhaseScript
from repro.isa.instructions import Opcode
from repro.isa.registers import R
from repro.program.block import BasicBlock
from repro.program.builder import BlockBuilder, FunctionBuilder, ProgramBuilder
from repro.program.function import Function
from repro.program.program import Program
from repro.workloads.base import Workload

#: Registers free of the calling convention (mirrors the synthetic suite).
_POOL = [R(i) for i in range(10, 32)]
_BASE_PTR = R(58)
_SCRATCH = R(59)

#: Detection needs roughly hdc_max/2 candidate-dominated branches; phase
#: segments below this are invisible to the HSD (packing packs nothing,
#: which is still a valid — if weaker — conformance case).
MIN_DETECTABLE_PHASE = 45_000


class ReductionError(Exception):
    """A reduction produced an invalid program (shrinker rejects it)."""


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GenConfig:
    """Shape knobs of one generated conformance case."""

    #: hot work functions dispatched from ``main``
    functions: int = 3
    #: nested loop levels inside each work function
    loop_depth: int = 2
    #: helper callees invoked from each work function's loop body
    call_fanout: int = 1
    #: call-chain depth below each helper callee
    chain_depth: int = 1
    #: data-dependent diamonds in each innermost loop body
    diamonds: int = 2
    #: straight-line instructions per generated block
    block_size: int = 4
    #: ground-truth phases in the phase script
    phases: int = 2
    #: "sequence" (0 1 2) or "repeat" (0 1 2 0 1 2)
    phase_pattern: str = "sequence"
    #: branch retirements per phase segment (>= MIN_DETECTABLE_PHASE for
    #: the HSD to detect anything; smaller is valid but packs nothing)
    phase_branches: int = MIN_DETECTABLE_PHASE
    #: fraction of work functions whose outer loop gets a second entry
    #: (a forward branch into the loop interior — irreducible-ish CFG)
    irreducible_fraction: float = 0.35
    #: give the first work function a bounded self-recursive callee
    recursion: bool = False
    #: statically-present, dynamically-dead filler functions
    cold_functions: int = 2
    #: blocks per cold function
    cold_blocks: int = 6

    def __post_init__(self) -> None:
        if self.functions < 1:
            raise ValueError("need at least one work function")
        if self.loop_depth < 1:
            raise ValueError("loop_depth must be >= 1")
        if self.phases < 1:
            raise ValueError("phases must be >= 1")
        if self.phase_pattern not in ("sequence", "repeat"):
            raise ValueError(f"unknown phase_pattern {self.phase_pattern!r}")
        if self.phase_branches < 1:
            raise ValueError("phase_branches must be positive")
        if not 0.0 <= self.irreducible_fraction <= 1.0:
            raise ValueError("irreducible_fraction out of range")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "GenConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


# ---------------------------------------------------------------------------
# reductions (the shrinker's transformation vocabulary)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Reduction:
    """A validity-preserving simplification of a generated case.

    Applied after generation, in this order: drop functions (stripping
    every ``call`` that references them), cut branches (the block falls
    through to its layout successor), prune blocks left unreachable,
    then shorten the phase script (truncate to the first
    ``phase_segments`` segments and scale segment lengths by
    ``phase_scale``).
    """

    drop_functions: Tuple[str, ...] = ()
    cut_branches: Tuple[Tuple[str, str], ...] = ()
    phase_segments: Optional[int] = None
    phase_scale: float = 1.0

    @property
    def is_identity(self) -> bool:
        return (
            not self.drop_functions
            and not self.cut_branches
            and self.phase_segments is None
            and self.phase_scale == 1.0
        )

    def to_dict(self) -> dict:
        return {
            "drop_functions": list(self.drop_functions),
            "cut_branches": [list(pair) for pair in self.cut_branches],
            "phase_segments": self.phase_segments,
            "phase_scale": self.phase_scale,
        }

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> "Reduction":
        if not payload:
            return cls()
        return cls(
            drop_functions=tuple(payload.get("drop_functions", ())),
            cut_branches=tuple(
                (fn, label) for fn, label in payload.get("cut_branches", ())
            ),
            phase_segments=payload.get("phase_segments"),
            phase_scale=float(payload.get("phase_scale", 1.0)),
        )


def _strip_terminator(block: BasicBlock) -> BasicBlock:
    """A copy of ``block`` without its trailing control instruction."""
    return BasicBlock(block.label, list(block.instructions[:-1]))


def _layout_successors(
    blocks: List[BasicBlock], position: Dict[str, int]
) -> Dict[str, List[str]]:
    """Intra-function successor labels, fall-through edges included."""
    successors: Dict[str, List[str]] = {}
    for i, block in enumerate(blocks):
        out: List[str] = []
        term = block.terminator
        next_label = blocks[i + 1].label if i + 1 < len(blocks) else None
        if term is None or term.is_call:
            if next_label is not None:
                out.append(next_label)
        elif term.is_conditional_branch:
            if term.target in position:
                out.append(term.target)
            if next_label is not None:
                out.append(next_label)
        elif term.opcode is Opcode.JUMP:
            if term.target in position:
                out.append(term.target)
        # ret / halt: no local successors
        successors[block.label] = out
    return successors


def _prune_unreachable(
    blocks: List[BasicBlock], entry_label: str
) -> List[BasicBlock]:
    position = {b.label: i for i, b in enumerate(blocks)}
    successors = _layout_successors(blocks, position)
    reachable: Set[str] = set()
    stack = [entry_label]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(successors.get(label, ()))
    return [b for b in blocks if b.label in reachable]


def apply_reduction(workload: Workload, reduction: Reduction) -> Workload:
    """Apply ``reduction`` to a generated workload.

    Raises :class:`ReductionError` when the result is structurally
    invalid (the shrinker treats that as a rejected candidate).
    """
    if reduction.is_identity:
        return workload
    program = workload.program
    dropped = set(reduction.drop_functions)
    if program.entry in dropped:
        raise ReductionError("cannot drop the entry function")
    unknown = dropped - set(program.functions)
    if unknown:
        raise ReductionError(f"unknown functions {sorted(unknown)}")
    cuts = set(reduction.cut_branches)

    functions: List[Function] = []
    for function in program.functions.values():
        if function.name in dropped:
            continue
        blocks: List[BasicBlock] = []
        for block in function.blocks:
            term = block.terminator
            if term is not None and term.is_call and term.target in dropped:
                blocks.append(_strip_terminator(block))
            elif (
                term is not None
                and term.is_conditional_branch
                and (function.name, block.label) in cuts
            ):
                blocks.append(_strip_terminator(block))
            else:
                blocks.append(block)
        blocks = _prune_unreachable(blocks, function.entry_label)
        if not blocks:
            raise ReductionError(f"{function.name}: no blocks survive")
        try:
            functions.append(Function(function.name, blocks, function.entry_label))
        except Exception as exc:
            raise ReductionError(f"{function.name}: {exc}") from exc

    try:
        reduced = Program(functions, entry=program.entry)
        reduced.validate()
    except Exception as exc:
        raise ReductionError(str(exc)) from exc

    script = workload.phase_script
    segments = list(script.segments)
    if reduction.phase_segments is not None:
        if reduction.phase_segments < 1:
            raise ReductionError("phase_segments must keep >= 1 segment")
        segments = segments[: reduction.phase_segments]
    if not 0.0 < reduction.phase_scale <= 1.0:
        raise ReductionError("phase_scale must be in (0, 1]")
    pairs = [
        (s.phase_id, max(1, int(s.branches * reduction.phase_scale)))
        for s in segments
    ]
    script = PhaseScript.from_pairs(pairs)

    return Workload(
        name=workload.name,
        program=reduced,
        behavior=workload.behavior,
        phase_script=script,
        limits=ExecutionLimits(max_branches=script.total_branches),
        description=workload.description + " (reduced)",
        meta=dict(workload.meta),
    )


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

@dataclass
class _GenState:
    rng: random.Random
    behavior: BehaviorModel
    builder: ProgramBuilder = field(default_factory=ProgramBuilder)
    cold_names: List[str] = field(default_factory=list)


def _emit_filler(bb: BlockBuilder, rng: random.Random, size: int) -> None:
    """Straight-line ALU/memory filler with real data-flow."""
    regs = rng.sample(_POOL, min(6, len(_POOL)))
    for i in range(size):
        roll = rng.random()
        d = regs[i % len(regs)]
        a = regs[(i + 1) % len(regs)]
        b = regs[(i + 2) % len(regs)]
        if roll < 0.4:
            bb.add(d, a, b)
        elif roll < 0.55:
            bb.addi(d, a, rng.randrange(1, 64))
        elif roll < 0.65:
            bb.mul(d, a, b)
        elif roll < 0.75:
            bb.xor(d, a, b)
        elif roll < 0.88:
            bb.load(d, _BASE_PTR, 8 * rng.randrange(0, 64))
        else:
            bb.store(a, _BASE_PTR, 8 * rng.randrange(0, 64))


def _diamond_biases(
    rng: random.Random, all_phases: Sequence[int]
) -> Dict[int, float]:
    """Per-phase taken probability for one diamond branch."""
    style = rng.random()
    biases: Dict[int, float] = {}
    if style < 0.25 and len(all_phases) > 1:  # hard phase swing
        low, high = rng.uniform(0.03, 0.12), rng.uniform(0.88, 0.97)
        flip = rng.random() < 0.5
        for i, phase in enumerate(all_phases):
            biases[phase] = high if (i % 2 == 0) != flip else low
    elif style < 0.45:  # uniform-ish, phase-independent
        value = rng.uniform(0.4, 0.6)
        for phase in all_phases:
            biases[phase] = value
    else:  # stable strong bias; occasionally a genuinely cold side
        value = rng.uniform(0.02, 0.15)
        if rng.random() < 0.5:
            value = 1.0 - value
        for phase in all_phases:
            biases[phase] = min(0.999, max(0.001, value + rng.uniform(-0.01, 0.01)))
    return biases


def _build_cold_function(state: _GenState, name: str, blocks: int) -> None:
    fb = FunctionBuilder(name)
    for i in range(max(blocks - 1, 1)):
        bb = fb.block(f"{name}_c{i}")
        _emit_filler(bb, state.rng, 3)
        if i % 3 == 2:
            # Conditional back-edge keeps even cold cycles branch-guarded.
            bb.sne(_SCRATCH, _POOL[0], _POOL[1])
            bb.brnz(_SCRATCH, f"{name}_c{state.rng.randrange(max(i - 2, 0), i + 1)}")
    fb.block(f"{name}_ret").ret()
    state.builder.add(fb.build())


def _build_helper_chain(
    state: _GenState, config: GenConfig, base: str, depth: int
) -> Optional[str]:
    """A chain of small callees; returns the chain head's name."""
    previous: Optional[str] = None
    for level in range(depth, 0, -1):
        name = f"{base}_h{level}"
        fb = FunctionBuilder(name)
        body = fb.block(f"{name}_b")
        _emit_filler(body, state.rng, config.block_size)
        body.sne(_SCRATCH, _POOL[3], _POOL[7])
        branch = body.brnz(_SCRATCH, f"{name}_alt")
        state.behavior.set_bias(branch.uid, state.rng.uniform(0.1, 0.35))
        main_path = fb.block(f"{name}_m")
        _emit_filler(main_path, state.rng, config.block_size)
        if previous is not None:
            fb.block(f"{name}_call").call(previous)
        fb.block(f"{name}_ret").ret()
        alt = fb.block(f"{name}_alt")
        _emit_filler(alt, state.rng, 2)
        alt.jump(f"{name}_ret")
        state.builder.add(fb.build())
        previous = name
    return previous


def _build_recursive(state: _GenState, config: GenConfig, name: str) -> str:
    """A bounded self-recursive callee (stop probability per level)."""
    fb = FunctionBuilder(name)
    body = fb.block(f"{name}_b")
    _emit_filler(body, state.rng, config.block_size)
    body.slt(_SCRATCH, _POOL[1], _POOL[4])
    branch = body.brnz(_SCRATCH, f"{name}_base")
    state.behavior.set_bias(branch.uid, state.rng.uniform(0.35, 0.55))
    recurse = fb.block(f"{name}_rec")
    _emit_filler(recurse, state.rng, 2)
    recurse.call(name)
    after = fb.block(f"{name}_after")
    _emit_filler(after, state.rng, 1)
    after.ret()
    base = fb.block(f"{name}_base")
    _emit_filler(base, state.rng, 2)
    base.ret()
    state.builder.add(fb.build())
    return name


def _emit_diamond(
    fb: FunctionBuilder,
    state: _GenState,
    config: GenConfig,
    label: str,
    all_phases: Sequence[int],
) -> str:
    """One data-dependent diamond; returns the merge block's label."""
    rng = state.rng
    cond = fb.block(label)
    _emit_filler(cond, rng, max(config.block_size - 2, 1))
    cond.sne(_SCRATCH, _POOL[1], _POOL[5])
    branch = cond.brnz(_SCRATCH, f"{label}_e")
    state.behavior.set_phase_biases(branch.uid, _diamond_biases(rng, all_phases))
    then_block = fb.block(f"{label}_t")
    _emit_filler(then_block, rng, config.block_size)
    then_block.jump(f"{label}_m")
    else_block = fb.block(f"{label}_e")
    _emit_filler(else_block, rng, config.block_size)
    merge = fb.block(f"{label}_m")
    _emit_filler(merge, rng, 1)
    return f"{label}_m"


def _emit_loop_nest(
    fb: FunctionBuilder,
    state: _GenState,
    config: GenConfig,
    name: str,
    level: int,
    all_phases: Sequence[int],
    callees: Sequence[str],
) -> None:
    """Loop level ``level`` (0 = outermost); innermost level holds the
    diamonds and the helper calls."""
    rng = state.rng
    head = fb.block(f"{name}_l{level}h")
    _emit_filler(head, rng, config.block_size)

    innermost = level == config.loop_depth - 1
    if innermost:
        for d in range(config.diamonds):
            _emit_diamond(fb, state, config, f"{name}_l{level}d{d}", all_phases)
        for k, callee in enumerate(callees):
            fb.block(f"{name}_l{level}c{k}").call(callee)
    else:
        _emit_loop_nest(
            fb, state, config, name, level + 1, all_phases, callees
        )

    latch = fb.block(f"{name}_l{level}t")
    _emit_filler(latch, rng, 2)
    latch.slt(_SCRATCH, _POOL[2], _POOL[6])
    back = latch.brnz(_SCRATCH, f"{name}_l{level}h")
    # Inner levels iterate hot; outer levels cool off so the branch
    # budget spreads across the nest instead of pinning the innermost.
    bias = 0.88 if innermost else rng.uniform(0.45, 0.7)
    state.behavior.set_bias(back.uid, bias)


def _build_work_function(
    state: _GenState,
    config: GenConfig,
    name: str,
    all_phases: Sequence[int],
    callees: Sequence[str],
    cold_callee: Optional[str],
    side_entry: bool,
) -> None:
    rng = state.rng
    fb = FunctionBuilder(name)

    prologue = fb.block(f"{name}_pro")
    prologue.movi(_BASE_PTR, 0x4000)
    _emit_filler(prologue, rng, 2)
    if side_entry:
        # Irreducible-ish fragment: a forward branch straight into the
        # innermost loop's latch — a second entry that bypasses every
        # loop header on the way in.
        prologue.sne(_SCRATCH, _POOL[4], _POOL[8])
        target = f"{name}_l{config.loop_depth - 1}t"
        side = prologue.brnz(_SCRATCH, target)
        state.behavior.set_bias(side.uid, rng.uniform(0.05, 0.25))

    _emit_loop_nest(fb, state, config, name, 0, all_phases, callees)

    if cold_callee is not None:
        guard = fb.block(f"{name}_guard")
        guard.seq(_SCRATCH, _POOL[0], _POOL[1])
        cold_branch = guard.brnz(_SCRATCH, f"{name}_cold")
        state.behavior.set_bias(cold_branch.uid, 0.0)  # never taken

    fb.block(f"{name}_ret").ret()

    if cold_callee is not None:
        fb.block(f"{name}_cold").call(cold_callee)
        fb.block(f"{name}_coldret").jump(f"{name}_ret")

    state.builder.add(fb.build())


def _build_main(
    state: _GenState,
    config: GenConfig,
    targets: Sequence[str],
    activity: Dict[str, List[int]],
    all_phases: Sequence[int],
) -> None:
    """The dispatch root: one selector loop calling active targets.

    Selector ``i`` takes with probability 1/(active targets remaining in
    the current phase), so each iteration picks uniformly among the
    phase's active work functions.  The latch never falls through — the
    run is bounded by the phase script's branch budget.
    """
    rng = state.rng
    fb = FunctionBuilder("main")
    entry = fb.block("main_entry")
    entry.movi(_BASE_PTR, 0x8000)
    _emit_filler(entry, rng, 2)

    head = fb.block("main_head")
    _emit_filler(head, rng, 2)

    for i, target in enumerate(targets):
        sel = fb.block(f"main_sel{i}")
        sel.sne(_SCRATCH, _POOL[i % len(_POOL)], _POOL[(i + 5) % len(_POOL)])
        branch = sel.brnz(_SCRATCH, f"main_do{i}")
        biases: Dict[int, float] = {}
        for phase in all_phases:
            remaining = [
                t for t in targets[i:] if phase in activity.get(t, ())
            ]
            if phase in activity.get(target, ()):
                biases[phase] = 1.0 / len(remaining)
            else:
                biases[phase] = 0.0
        state.behavior.set_phase_biases(branch.uid, biases)

    none_active = fb.block("main_none")
    _emit_filler(none_active, rng, 1)
    none_active.jump("main_latch")

    for i, target in enumerate(targets):
        fb.block(f"main_do{i}").call(target)
        fb.block(f"main_back{i}").jump("main_latch")

    latch = fb.block("main_latch")
    _emit_filler(latch, rng, 1)
    latch.slt(_SCRATCH, _POOL[6], _POOL[9])
    loop = latch.brnz(_SCRATCH, "main_head")
    state.behavior.set_bias(loop.uid, 1.0)

    if state.cold_names:
        guard = fb.block("main_coldguard")
        guard.seq(_SCRATCH, _POOL[0], _POOL[2])
        cold_branch = guard.brnz(_SCRATCH, "main_colddo")
        state.behavior.set_bias(cold_branch.uid, 0.0)

    fb.block("main_tail").halt()

    if state.cold_names:
        fb.block("main_colddo").call(state.cold_names[0])
        fb.block("main_coldback").jump("main_tail")

    state.builder.add(fb.build())


def _phase_script(config: GenConfig) -> PhaseScript:
    order = list(range(config.phases))
    if config.phase_pattern == "repeat":
        order = order + order
    return PhaseScript.from_pairs(
        [(phase, config.phase_branches) for phase in order]
    )


def generate_program(seed: int, config: GenConfig) -> Workload:
    """The deterministic workload for ``(seed, config)``."""
    rng = random.Random(f"genprog:{seed}")
    behavior = BehaviorModel(seed=(seed * 0x9E3779B1 + 0xFA11) & 0x7FFFFFFF)
    state = _GenState(rng=rng, behavior=behavior)
    all_phases = list(range(config.phases))

    for i in range(config.cold_functions):
        name = f"fz_cold{i}"
        _build_cold_function(state, name, config.cold_blocks)
        state.cold_names.append(name)

    # Phase activity: work function i runs in phase (i mod phases); the
    # first function is shared across every phase so no phase is empty.
    work_names = [f"fz_work{i}" for i in range(config.functions)]
    activity: Dict[str, List[int]] = {}
    for i, name in enumerate(work_names):
        if i == 0:
            activity[name] = list(all_phases)
        else:
            activity[name] = [i % config.phases]

    for i, name in enumerate(work_names):
        callees: List[str] = []
        for k in range(config.call_fanout):
            head = _build_helper_chain(
                state, config, f"{name}_f{k}", max(config.chain_depth, 1)
            )
            if head is not None:
                callees.append(head)
        if config.recursion and i == 0:
            callees.append(_build_recursive(state, config, f"{name}_rec"))
        cold_callee = (
            state.cold_names[i % len(state.cold_names)]
            if state.cold_names
            else None
        )
        _build_work_function(
            state,
            config,
            name,
            all_phases,
            callees,
            cold_callee,
            side_entry=rng.random() < config.irreducible_fraction,
        )

    _build_main(state, config, work_names, activity, all_phases)

    program = state.builder.build(entry="main")
    script = _phase_script(config)
    return Workload(
        name=f"fuzz.s{seed}",
        program=program,
        behavior=behavior,
        phase_script=script,
        limits=ExecutionLimits(max_branches=script.total_branches),
        description=(
            f"generated conformance case (seed {seed}, "
            f"{config.functions} work fns, depth {config.loop_depth})"
        ),
        meta={"seed": seed, "config": config},
    )


# ---------------------------------------------------------------------------
# cases
# ---------------------------------------------------------------------------

@dataclass
class FuzzCase:
    """One replayable conformance case: generator inputs + built workload."""

    seed: int
    config: GenConfig
    reduction: Reduction
    workload: Workload
    note: str = ""

    def reduced(self, reduction: Reduction, note: str = "") -> "FuzzCase":
        """This case under a different reduction (rebuilt from scratch)."""
        return build_case(self.seed, self.config, reduction,
                          note=note or self.note)


def generate_case(seed: int, config: Optional[GenConfig] = None) -> FuzzCase:
    config = config or GenConfig()
    return FuzzCase(seed, config, Reduction(), generate_program(seed, config))


def build_case(
    seed: int,
    config: GenConfig,
    reduction: Optional[Reduction] = None,
    note: str = "",
) -> FuzzCase:
    """Regenerate ``(seed, config)`` and apply ``reduction``."""
    reduction = reduction or Reduction()
    workload = generate_program(seed, config)
    workload = apply_reduction(workload, reduction)
    return FuzzCase(seed, config, reduction, workload, note=note)


def case_to_dict(case: FuzzCase) -> dict:
    return {
        "seed": case.seed,
        "config": case.config.to_dict(),
        "reduction": case.reduction.to_dict(),
        "note": case.note,
    }


def case_from_dict(payload: dict) -> FuzzCase:
    return build_case(
        int(payload["seed"]),
        GenConfig.from_dict(payload.get("config", {})),
        Reduction.from_dict(payload.get("reduction")),
        note=str(payload.get("note", "")),
    )


def save_case(path: str, case: FuzzCase) -> None:
    with open(path, "w") as handle:
        json.dump(case_to_dict(case), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_case(path: str) -> FuzzCase:
    with open(path) as handle:
        return case_from_dict(json.load(handle))
