"""The four-oracle conformance stack.

Every generated case is pushed through four independent cross-checks,
each of which would catch a different class of pipeline bug:

1. ``engines`` — the reference interpreter and the compiled trace
   engine must retire the bit-identical conditional-branch event
   stream (and agree on every summary counter).  Catches engine bugs.
2. ``structure`` — the packed program passes every structural
   validator in :mod:`repro.postlink.validate`, including the
   ``link_image()`` displacement round-trip.  Catches rewriter bugs
   that leave the binary malformed.
3. ``pack_differential`` — replaying the workload over the packed
   program preserves the branch stream, the retired work-instruction
   count, and the stop reason (a mismatch there raises
   :class:`~repro.errors.DifferentialError`).  Catches rewriter bugs
   that leave the binary well-formed but wrong.
4. ``cache_replay`` — the detector records recomputed from a trace
   that round-tripped through the content-addressed
   :class:`~repro.engine.trace_cache.TraceCache` (disk encode →
   decode → uid remap) are identical to the records from the live
   trace.  Catches cache/serialization bugs that would silently feed
   the profiler a corrupted history.

The stack also derives a *coverage signature* — a sorted tuple of
feature strings describing what the pipeline did with the case (package
count, launch-point bucket, quarantine stages, linked exits, ...).  The
driver keeps a case in the corpus iff its signature is novel, which is
what makes the fuzzer coverage-guided without instrumenting the
pipeline itself.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.compiled import CompiledExecutor, TraceData
from repro.engine.listeners import HSDListener
from repro.engine.trace_cache import TraceCache, image_for, trace_key
from repro.errors import DifferentialError
from repro.hsd.detector import HotSpotDetector
from repro.postlink.rewriter import PackedProgram, clone_program
from repro.postlink.validate import (
    _StreamHasher,
    differential_check,
    digest_stream_arrays,
    validate_packed,
    validate_plan,
)
from repro.api import PipelineConfig
from repro.postlink.vacuum import PackResult, VacuumPacker
from repro.program.cfg import cross_function_target, split_cross_function
from repro.workloads.base import Workload

from .genprog import FuzzCase

ORACLE_NAMES: Tuple[str, ...] = (
    "engines",
    "structure",
    "pack_differential",
    "cache_replay",
)


@dataclass
class OracleResult:
    """Verdict of one oracle on one case."""

    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{self.name}: {mark}{tail}"


@dataclass
class CaseReport:
    """All oracle verdicts for one case, plus its coverage signature."""

    results: List[OracleResult] = field(default_factory=list)
    signature: Tuple[str, ...] = ()
    packages: int = 0
    records: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failing(self) -> List[str]:
        return [r.name for r in self.results if not r.ok]

    def result(self, name: str) -> Optional[OracleResult]:
        for r in self.results:
            if r.name == name:
                return r
        return None

    def render(self) -> str:
        lines = [r.render() for r in self.results]
        lines.append(f"signature: {', '.join(self.signature) or '(empty)'}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# fault injection (for testing the oracles themselves)
# ---------------------------------------------------------------------------

def mispatch_launch(packed: PackedProgram) -> Optional[PackedProgram]:
    """A copy of ``packed`` with one launch displacement mis-patched.

    Retargets the first launch trampoline at a non-entry block of its
    package — the canonical "rewriter bug" the oracle stack must catch.
    Returns ``None`` when the pack deployed no launch points (nothing
    to sabotage).  The mutation happens on a deep copy, so the caller's
    packed program is untouched.
    """
    clone = clone_program(packed.program)
    for function in clone.functions.values():
        for block in function.blocks:
            if not block.meta.get("launch_trampoline"):
                continue
            term = block.terminator
            pkg_name, entry_label = split_cross_function(term.target)
            pkg_fn = clone.functions.get(pkg_name)
            if pkg_fn is None:
                continue
            wrong = next(
                (b.label for b in pkg_fn.blocks if b.label != entry_label),
                None,
            )
            if wrong is None:
                continue
            block.instructions[-1] = term.retargeted(
                cross_function_target(pkg_name, wrong)
            )
            return dataclasses.replace(packed, program=clone)
    return None


# ---------------------------------------------------------------------------
# individual oracles
# ---------------------------------------------------------------------------

def _engines_oracle(workload: Workload) -> OracleResult:
    hasher = _StreamHasher()
    reference = workload.executor(branch_hooks=[hasher]).run()
    trace = CompiledExecutor(
        workload.program,
        workload.behavior,
        workload.phase_script,
        limits=workload.limits,
    ).run_traced()
    compiled = trace.summary
    problems: List[str] = []
    if hasher.digest() != digest_stream_arrays(trace.uids, trace.taken):
        problems.append("branch event streams differ")
    for field_name in ("instructions", "branches", "taken_branches",
                       "calls", "stop_reason"):
        a = getattr(reference, field_name)
        b = getattr(compiled, field_name)
        if a != b:
            problems.append(f"{field_name}: reference {a} vs compiled {b}")
    if reference.block_visits != compiled.block_visits:
        problems.append("block visit histograms differ")
    return OracleResult("engines", not problems, "; ".join(problems))


def _structure_oracle(
    workload: Workload, packed: PackedProgram
) -> OracleResult:
    report = validate_plan(packed.plan, workload.program)
    report.merge(validate_packed(packed))
    detail = "" if report.ok else "; ".join(
        issue.render() for issue in report.issues[:4]
    )
    return OracleResult("structure", report.ok, detail)


def _pack_differential_oracle(
    workload: Workload, packed: PackedProgram
) -> OracleResult:
    try:
        report = differential_check(workload, packed)
    except DifferentialError as exc:
        return OracleResult("pack_differential", False, str(exc))
    detail = "" if report.ok else report.render()
    return OracleResult("pack_differential", report.ok, detail)


def _summaries_equal(a, b) -> bool:
    return (
        a.instructions == b.instructions
        and a.branches == b.branches
        and a.taken_branches == b.taken_branches
        and a.calls == b.calls
        and a.stop_reason is b.stop_reason
        and a.block_visits == b.block_visits
    )


def _records_of(workload: Workload, trace: TraceData):
    image = image_for(workload.program)
    listener = HSDListener(
        HotSpotDetector(), dict(image.instruction_address)
    )
    listener.consume_trace(trace.uids, trace.taken)
    return listener.raw_detections, listener.unique_records


def _cache_replay_oracle(workload: Workload) -> OracleResult:
    program = workload.program
    image = image_for(program)
    live = CompiledExecutor(
        program, workload.behavior, workload.phase_script,
        limits=workload.limits,
    ).run_traced()
    key = trace_key(
        program, workload.behavior, workload.phase_script, workload.limits,
        image=image,
    )
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        if not TraceCache(root=tmp).put(key, live, program, image=image):
            return OracleResult("cache_replay", False, "trace not cacheable")
        # A fresh cache object forces the full disk round-trip (decode +
        # address→uid remap) instead of the in-memory LRU.
        round_tripped = TraceCache(root=tmp).get(key, program, image=image)
    if round_tripped is None:
        return OracleResult(
            "cache_replay", False, "round-tripped trace missed the cache"
        )
    problems: List[str] = []
    if digest_stream_arrays(live.uids, live.taken) != digest_stream_arrays(
        round_tripped.uids, round_tripped.taken
    ):
        problems.append("branch streams differ after round-trip")
    if not _summaries_equal(live.summary, round_tripped.summary):
        problems.append("summaries differ after round-trip")
    live_raw, live_records = _records_of(workload, live)
    rt_raw, rt_records = _records_of(workload, round_tripped)
    if live_raw != rt_raw:
        problems.append(
            f"raw detections differ: live {live_raw} vs replayed {rt_raw}"
        )
    if live_records != rt_records:
        problems.append("detector records differ after round-trip")
    return OracleResult("cache_replay", not problems, "; ".join(problems))


# ---------------------------------------------------------------------------
# coverage signature
# ---------------------------------------------------------------------------

def _bucket(count: int) -> str:
    if count <= 3:
        return str(count)
    if count <= 7:
        return "4-7"
    return "8+"


def coverage_signature(result: PackResult) -> Tuple[str, ...]:
    """Feature strings describing what the pipeline did with a case."""
    features = {
        f"packages:{_bucket(len(result.packed.package_names))}",
        f"records:{_bucket(result.profile.phase_count)}",
        f"launches:{_bucket(len(result.packed.launch_map))}",
        f"stop:{result.profile.summary.stop_reason.name}",
        f"coverage:{int(result.coverage.package_fraction * 4)}/4",
    }
    for diagnostic in result.diagnostics:
        features.add(f"quarantine:{diagnostic.stage}")
    for package in result.packages:
        if package.name not in result.packed.package_names:
            continue
        if any(exit_site.is_linked for exit_site in package.exits):
            features.add("linked_exits")
        if len(package.entry_map) > 1:
            features.add("multi_entry")
    return tuple(sorted(features))


# ---------------------------------------------------------------------------
# the stack
# ---------------------------------------------------------------------------

def run_oracle_stack(
    case: FuzzCase,
    only: Optional[Sequence[str]] = None,
    mutate_packed: Optional[
        Callable[[PackedProgram], Optional[PackedProgram]]
    ] = None,
) -> CaseReport:
    """Run the conformance oracles over one case.

    ``only`` restricts to a subset of :data:`ORACLE_NAMES` (the
    shrinker re-checks just the oracles that originally failed).
    ``mutate_packed`` is a fault-injection hook applied to the packed
    program before the structure/differential oracles — it receives the
    pristine :class:`PackedProgram` and returns a sabotaged copy, or
    ``None`` to leave the case unmutated (the hook exists to prove the
    oracles catch the bugs they claim to catch).
    """
    selected = set(only) if only else set(ORACLE_NAMES)
    unknown = selected - set(ORACLE_NAMES)
    if unknown:
        raise ValueError(f"unknown oracles: {sorted(unknown)}")
    workload = case.workload
    report = CaseReport()

    if "engines" in selected:
        report.results.append(_guarded("engines", _engines_oracle, workload))

    needs_pack = bool(selected & {"structure", "pack_differential"})
    if needs_pack:
        packed: Optional[PackedProgram] = None
        pack_error = ""
        try:
            # validate=False: the oracles below *are* the validation —
            # letting the packer pre-quarantine invalid phases would
            # mask exactly the bugs this stack exists to catch.
            result = VacuumPacker(PipelineConfig(validate=False)).pack(workload)
            packed = result.packed
            report.packages = len(packed.package_names)
            report.records = result.profile.phase_count
            report.signature = coverage_signature(result)
            if mutate_packed is not None:
                sabotaged = mutate_packed(packed)
                if sabotaged is not None:
                    packed = sabotaged
        except Exception as exc:
            pack_error = f"pack failed: {type(exc).__name__}: {exc}"
        for name, oracle in (
            ("structure", _structure_oracle),
            ("pack_differential", _pack_differential_oracle),
        ):
            if name not in selected:
                continue
            if packed is None:
                report.results.append(OracleResult(name, False, pack_error))
            else:
                report.results.append(_guarded(name, oracle, workload, packed))

    if "cache_replay" in selected:
        report.results.append(
            _guarded("cache_replay", _cache_replay_oracle, workload)
        )
    return report


def _guarded(name: str, oracle, *args) -> OracleResult:
    try:
        return oracle(*args)
    except Exception as exc:  # an oracle crash is itself a failure
        return OracleResult(name, False, f"{type(exc).__name__}: {exc}")
