"""Package construction: pruning, roots, partial inlining, linking (paper 3.3)."""

from .construct import (
    PackagedProgramPlan,
    RegionPackages,
    assemble_plan,
    construct_all,
    construct_packages,
)
from .inlining import PackageBuilder, build_package
from .linking import Link, apply_links, compute_links, find_link_target
from .ordering import (
    VALID_ORDERINGS,
    OrderedGroup,
    check_ordering_mode,
    group_by_root,
    order_group,
    order_packages,
    rank_ordering,
)
from .package import BranchInstance, Package, PackageExit
from .pruning import BlockPlan, ExitPlan, PrunedFunction, prune_function, prune_region
from .roots import RootInfo, entry_blocks, inlinable_functions, select_roots

__all__ = [
    "BlockPlan",
    "BranchInstance",
    "ExitPlan",
    "Link",
    "OrderedGroup",
    "Package",
    "PackageBuilder",
    "PackageExit",
    "PackagedProgramPlan",
    "PrunedFunction",
    "RegionPackages",
    "RootInfo",
    "VALID_ORDERINGS",
    "apply_links",
    "assemble_plan",
    "build_package",
    "check_ordering_mode",
    "compute_links",
    "construct_all",
    "construct_packages",
    "entry_blocks",
    "find_link_target",
    "group_by_root",
    "inlinable_functions",
    "order_group",
    "order_packages",
    "prune_function",
    "prune_region",
    "rank_ordering",
    "select_roots",
]
