"""Partial inlining and package assembly (paper section 3.3.3).

"The inlining process successively progresses through root functions of
the call graph producing individual packages for the region ...  When
partial inlining is performed, the blocks of the callee reachable from
the prologue are inlined as normal into the caller while any other
disjoint segments are discarded ...  The inlining process continues for
this root function until its out-going arcs are exhausted."

Assembly style: every intra-package transfer is an explicit jump (a
conditional branch gets a one-jump *trampoline* for its fall-through
side), so block emission order never affects semantics.  The layout
pass (:mod:`repro.optimize.layout`) later chains blocks to turn hot
jumps back into fallthroughs and deletes the trampolines it absorbs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.program.block import BasicBlock
from repro.program.cfg import cross_function_target
from repro.regions.region import HotRegion

from .package import BranchInstance, Location, Package, PackageExit
from .pruning import BlockPlan, ExitPlan, PrunedFunction

#: Hard bound on inlining depth; cycles in the region call graph are
#: already cut by the chain-occurrence rule, this is a safety net.
MAX_INLINE_DEPTH = 32


class PackageBuilder:
    """Builds one package by partially inlining from a root function."""

    def __init__(
        self,
        region: HotRegion,
        pruned: Dict[str, PrunedFunction],
        inlinable: frozenset,
        name: str,
        root: str,
    ):
        self.region = region
        self.pruned = pruned
        self.inlinable = inlinable
        self.package = Package(name=name, region_index=region.record.index, root=root)
        self._instances = itertools.count()

    # -- public -------------------------------------------------------
    def build(self) -> Package:
        root_template = self.pruned[self.package.root]
        starts = root_template.entry_labels or [root_template.order[0]]
        label_map = self._emit_body(
            fn_name=self.package.root,
            starts=starts,
            context=(),
            cont_frames=(),
            ret_target=None,
            chain=(self.package.root,),
        )
        for entry in starts:
            if entry in label_map:
                self.package.entry_map[label_map[entry]] = (
                    self.package.root,
                    entry,
                )
        return self.package

    # -- body emission ----------------------------------------------------
    def _emit_body(
        self,
        fn_name: str,
        starts: List[str],
        context: tuple,
        cont_frames: Tuple[Location, ...],
        ret_target: Optional[str],
        chain: Tuple[str, ...],
    ) -> Dict[str, str]:
        """Emit one instance of a pruned function; returns its label map."""
        template = self.pruned[fn_name]
        original_cfg = self.region.program.function(fn_name).cfg
        labels = template.reachable_from(starts)
        prefix = f"{self.package.name}_i{next(self._instances)}"
        label_map = {label: f"{prefix}_{label}" for label in labels}

        for label in labels:
            plan = template.plans[label]
            origin_block = original_cfg.by_label[label]
            new_label = label_map[label]
            body = [inst.clone() for inst in origin_block.body]
            self._index_block(fn_name, label, context, new_label)

            if plan.call_target is not None:
                self._emit_call_block(
                    fn_name, plan, origin_block, new_label, body, label_map,
                    context, cont_frames, chain,
                )
            elif plan.has_conditional_branch:
                self._emit_branch_block(
                    plan, origin_block, new_label, body, label_map,
                    context, cont_frames,
                )
            elif plan.taken_to is not None or plan.taken_exit is not None:
                # Unconditional jump block.
                target = self._resolve(
                    plan.taken_to, plan.taken_exit, new_label, label_map,
                    context, cont_frames, branch_origin=None,
                )
                body.append(Instruction(Opcode.JUMP, target=target))
                self._append(BasicBlock(new_label, body, origin=origin_block.uid,
                                        context=context))
            elif plan.is_return:
                if ret_target is None:
                    body.append(origin_block.terminator.clone())
                else:
                    body.append(Instruction(Opcode.JUMP, target=ret_target))
                self._append(BasicBlock(new_label, body, origin=origin_block.uid,
                                        context=context))
            elif plan.is_halt:
                body.append(origin_block.terminator.clone())
                self._append(BasicBlock(new_label, body, origin=origin_block.uid,
                                        context=context))
            else:
                # Plain fallthrough block: make the transfer explicit.
                target = self._resolve(
                    plan.fall_to, plan.fall_exit, new_label, label_map,
                    context, cont_frames, branch_origin=None,
                )
                body.append(Instruction(Opcode.JUMP, target=target))
                self._append(BasicBlock(new_label, body, origin=origin_block.uid,
                                        context=context))
        return label_map

    # -- block kinds ----------------------------------------------------
    def _emit_branch_block(
        self, plan, origin_block, new_label, body, label_map, context, cont_frames
    ) -> None:
        branch = origin_block.terminator.clone()
        branch_origin = branch.root_origin()
        taken_target = self._resolve(
            plan.taken_to, plan.taken_exit, new_label, label_map,
            context, cont_frames, branch_origin=branch_origin,
        )
        fall_target = self._resolve(
            plan.fall_to, plan.fall_exit, new_label, label_map,
            context, cont_frames, branch_origin=branch_origin,
        )
        body.append(branch.retargeted(taken_target))
        block = BasicBlock(new_label, body, origin=origin_block.uid, context=context)
        self._append(block)
        # Fall-through trampoline immediately after the branch.
        tramp = BasicBlock(
            f"{new_label}_ft",
            [Instruction(Opcode.JUMP, target=fall_target)],
            context=context,
        )
        self._append(tramp)

        bias = plan.bias() or "U"
        exit_label = None
        if bias == "T" and plan.fall_exit is not None:
            exit_label = fall_target
        elif bias == "F" and plan.taken_exit is not None:
            exit_label = taken_target
        self.package.branch_instances.append(
            BranchInstance(
                origin_uid=branch_origin,
                context=context,
                bias=bias,
                block_label=new_label,
                exit_label=exit_label,
            )
        )

    def _emit_call_block(
        self, fn_name, plan, origin_block, new_label, body, label_map,
        context, cont_frames, chain,
    ) -> None:
        call_inst = origin_block.terminator
        callee = plan.call_target
        return_target = self._resolve(
            plan.fall_to, plan.fall_exit, new_label, label_map,
            context, cont_frames, branch_origin=None,
        )
        if self._may_inline(callee, chain):
            # Replace the call with a jump into the inlined prologue;
            # the callee instance's returns jump to the return target.
            # The call block itself is spliced in *front* of the callee
            # blocks once the prologue copy's label is known (the mark
            # is a local, so nested inlining cannot clobber it).
            callee_template = self.pruned[callee]
            original_fall = self._original_fall_label(fn_name, origin_block.label)
            callee_frames = cont_frames + ((fn_name, original_fall),)
            mark = len(self.package.blocks)
            callee_map = self._emit_body(
                callee, [callee_template.prologue_label],
                context + (call_inst.uid,), callee_frames,
                return_target, chain + (callee,),
            )
            prologue_copy = callee_map[callee_template.prologue_label]
            body.append(Instruction(Opcode.JUMP, target=prologue_copy))
            block = BasicBlock(
                new_label, body, origin=origin_block.uid, context=context
            )
            self.package.blocks.insert(mark, block)
        else:
            body.append(call_inst.clone())
            block = BasicBlock(
                new_label, body, origin=origin_block.uid, context=context
            )
            self._append(block)
            tramp = BasicBlock(
                f"{new_label}_ft",
                [Instruction(Opcode.JUMP, target=return_target)],
                context=context,
            )
            self._append(tramp)

    # -- helpers -----------------------------------------------------------
    def _may_inline(self, callee: str, chain: Tuple[str, ...]) -> bool:
        if callee not in self.pruned or callee not in self.inlinable:
            return False
        if len(chain) >= MAX_INLINE_DEPTH:
            return False
        limit = 2 if callee == self.package.root else 1
        return chain.count(callee) < limit

    def _original_fall_label(self, fn_name: str, call_label: str) -> str:
        """The original return point after a call block (layout successor)."""
        blocks = self.region.program.function(fn_name).blocks
        for i, block in enumerate(blocks):
            if block.label == call_label:
                return blocks[i + 1].label
        raise KeyError(call_label)  # pragma: no cover - structural invariant

    def _resolve(
        self,
        to_label: Optional[str],
        exit_plan: Optional[ExitPlan],
        new_label: str,
        label_map: Dict[str, str],
        context: tuple,
        cont_frames: Tuple[Location, ...],
        branch_origin: Optional[int],
    ) -> str:
        """Resolve a plan direction to a package label, creating the
        exit block when the direction leaves the region."""
        if to_label is not None:
            return label_map[to_label]
        assert exit_plan is not None
        return self._emit_exit(new_label, exit_plan, context, cont_frames, branch_origin)

    def _emit_exit(
        self,
        from_label: str,
        exit_plan: ExitPlan,
        context: tuple,
        cont_frames: Tuple[Location, ...],
        branch_origin: Optional[int],
    ) -> str:
        suffix = {"taken": "xt", "fallthrough": "xf", "jump": "xj",
                  "fall": "xn", "call_return": "xc"}[exit_plan.direction]
        label = f"{from_label}_{suffix}"
        instructions = []
        if exit_plan.live:
            instructions.append(
                Instruction(Opcode.CONSUME, srcs=tuple(sorted(exit_plan.live)))
            )
        target_fn, target_label = exit_plan.target
        instructions.append(
            Instruction(
                Opcode.JUMP, target=cross_function_target(target_fn, target_label)
            )
        )
        block = BasicBlock(
            label,
            instructions,
            context=context,
            continuations=tuple(cont_frames),
            meta={"exit": True},
        )
        self._append(block)
        self.package.exits.append(
            PackageExit(
                label=label,
                target=exit_plan.target,
                direction=exit_plan.direction,
                context=context,
                branch_origin=branch_origin,
            )
        )
        return label

    def _index_block(
        self, fn_name: str, label: str, context: tuple, new_label: str
    ) -> None:
        self.package.location_index[((fn_name, label), context)] = new_label

    def _append(self, block: BasicBlock) -> None:
        self.package.blocks.append(block)


def build_package(
    region: HotRegion,
    pruned: Dict[str, PrunedFunction],
    inlinable: frozenset,
    name: str,
    root: str,
) -> Package:
    """Assemble one package rooted at ``root``."""
    return PackageBuilder(region, pruned, inlinable, name, root).build()
