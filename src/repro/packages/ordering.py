"""Package ordering by reachability rank (paper section 3.3.4).

"For each package, the number of incoming links is divided by the
number of package branches to yield a weight. ... the rank is
calculated by using the first package's ratio ... to initialize both an
accumulator and a weight variable.  The weight is then multiplied by
the second ratio and added to the accumulator" — i.e. for ratios
``r1..rn`` the rank is ``r1 + r1*r2 + r1*r2*r3 + ...``.

"These two rules convert the linking problem into a package ordering
problem" — we evaluate all permutations for small groups (the paper's
six orderings for three packages) and fall back to a greedy insertion
search for larger ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .linking import Link, compute_links, incoming_link_counts
from .package import Package

#: Groups up to this size are ordered by exhaustive permutation search.
EXHAUSTIVE_LIMIT = 6

#: Recognized ordering search modes (see :func:`order_group`).
VALID_ORDERINGS: Tuple[str, ...] = ("best", "worst", "first")


def check_ordering_mode(mode: str) -> str:
    """Validate an ordering mode eagerly; returns it unchanged.

    An unknown string would otherwise be silently misread as
    ``"worst"`` deep inside the rank search.
    """
    if mode not in VALID_ORDERINGS:
        raise ValueError(
            f"unknown package ordering {mode!r}; "
            f"valid orderings: {', '.join(VALID_ORDERINGS)}"
        )
    return mode


def rank_ordering(ordered: Sequence[Package]) -> float:
    """The paper's accumulator/weight rank for one ordering."""
    links = compute_links(ordered)
    return rank_from_links(ordered, links)


def rank_from_links(ordered: Sequence[Package], links: Sequence[Link]) -> float:
    incoming = incoming_link_counts(ordered, links)
    rank = 0.0
    weight = 1.0
    for package in ordered:
        branches = package.branch_count()
        ratio = incoming[package.name] / branches if branches else 0.0
        weight *= ratio
        rank += weight
    return rank


@dataclass
class OrderedGroup:
    """Final ordering of the packages sharing one root function."""

    root: str
    packages: List[Package]
    links: List[Link]
    rank: float


def order_group(packages: Sequence[Package], mode: str = "best") -> OrderedGroup:
    """Order one root's packages.

    ``mode`` selects the search objective: ``"best"`` maximizes the
    rank (the paper's scheme), ``"worst"`` minimizes it (ablation
    baseline), ``"first"`` keeps the construction order untouched.
    """
    check_ordering_mode(mode)
    packages = list(packages)
    root = packages[0].root
    if len(packages) == 1:
        return OrderedGroup(root, packages, [], 0.0)

    if mode == "first":
        links = compute_links(packages)
        return OrderedGroup(root, packages, links, rank_from_links(packages, links))

    if len(packages) <= EXHAUSTIVE_LIMIT:
        candidates = itertools.permutations(packages)
    else:
        candidates = [_greedy_order(packages)]

    better = (lambda a, b: a > b) if mode == "best" else (lambda a, b: a < b)
    chosen: Optional[Tuple[float, List[Package], List[Link]]] = None
    for candidate in candidates:
        ordered = list(candidate)
        links = compute_links(ordered)
        rank = rank_from_links(ordered, links)
        if chosen is None or better(rank, chosen[0]):
            chosen = (rank, ordered, links)
    rank, ordered, links = chosen
    return OrderedGroup(root, ordered, links, rank)


def _greedy_order(packages: List[Package]) -> List[Package]:
    """Insertion heuristic for large groups: place each package at the
    position that maximizes the running rank."""
    ordered = [packages[0]]
    for package in packages[1:]:
        best_rank = -1.0
        best_position = 0
        for position in range(len(ordered) + 1):
            trial = ordered[:position] + [package] + ordered[position:]
            rank = rank_ordering(trial)
            if rank > best_rank:
                best_rank = rank
                best_position = position
        ordered.insert(best_position, package)
    return ordered


def group_by_root(packages: Sequence[Package]) -> Dict[str, List[Package]]:
    """Group packages (possibly from different phases) by root function."""
    groups: Dict[str, List[Package]] = {}
    for package in packages:
        groups.setdefault(package.root, []).append(package)
    return groups


def order_packages(
    packages: Sequence[Package], mode: str = "best"
) -> List[OrderedGroup]:
    """Order every root group; groups come back in root-name order."""
    check_ordering_mode(mode)
    groups = group_by_root(packages)
    return [order_group(groups[root], mode) for root in sorted(groups)]
