"""Root functions and entry blocks (paper section 3.3.2).

"A function will be chosen as a root for one of three reasons.  First,
any function without any callers in the region (ignoring back edges in
the call graph) will be a root ...  Second, any function that will not
be inlined into any callers will be marked a root function ... Last,
any self-recursive function will be chosen as a root."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.program.callgraph import CallGraph
from repro.regions.region import HotRegion

from .pruning import PrunedFunction


@dataclass(frozen=True)
class RootInfo:
    """Why a function became a package root."""

    function: str
    no_region_callers: bool
    not_inlinable: bool
    self_recursive: bool

    @property
    def reasons(self) -> List[str]:
        reasons = []
        if self.no_region_callers:
            reasons.append("no callers in region")
        if self.not_inlinable:
            reasons.append("not inlinable into callers")
        if self.self_recursive:
            reasons.append("self-recursive")
        return reasons


def inlinable_functions(pruned: Dict[str, PrunedFunction]) -> Set[str]:
    """Functions legal to partially inline (prologue + epilogue + path)."""
    return {
        name
        for name, template in pruned.items()
        if template.has_prologue_epilogue_path()
    }


def select_roots(
    region: HotRegion, pruned: Dict[str, PrunedFunction]
) -> List[RootInfo]:
    """Apply the three root criteria, in deterministic function order."""
    graph: CallGraph = region.call_graph()
    inlinable = inlinable_functions(pruned)

    # "Ignoring back edges in the call graph": classify DFS back edges
    # starting from caller-less functions for a stable orientation.
    seeds = sorted(
        name for name in graph.functions if not graph.caller_names(name)
    )
    back_sites = graph.back_edge_sites(roots=seeds)
    forward_callers: Dict[str, Set[str]] = {name: set() for name in graph.functions}
    for site in graph.sites:
        if site not in back_sites and site.caller != site.callee:
            forward_callers[site.callee].add(site.caller)

    roots: List[RootInfo] = []
    for name in sorted(graph.functions):
        no_callers = not forward_callers[name]
        not_inlinable = name not in inlinable and bool(forward_callers[name])
        self_recursive = name in graph.callee_names(name)
        if no_callers or not_inlinable or self_recursive:
            roots.append(
                RootInfo(
                    function=name,
                    no_region_callers=no_callers,
                    not_inlinable=not_inlinable,
                    self_recursive=self_recursive,
                )
            )
    return roots


def entry_blocks(pruned_root: PrunedFunction) -> List[str]:
    """Entry blocks of a root: hot blocks without predecessors in the
    pruned subgraph, ignoring back edges (precomputed during pruning
    from the region marking)."""
    return list(pruned_root.entry_labels)
