"""The :class:`Package` object (paper section 3.3).

"A *package* is a connected piece of code derived from a region that
may include instructions from multiple functions and may have multiple
entrances and exits."  Packages are assembled by the partial inliner
(:mod:`repro.packages.inlining`), linked to sibling packages
(:mod:`repro.packages.linking`), optimized, and finally deployed into
the packed binary by the post-link rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.program.block import BasicBlock
from repro.program.function import Function

#: (function name, block label) in the original program.
Location = Tuple[str, str]


@dataclass
class PackageExit:
    """One side exit from a package back to original (or linked) code."""

    label: str                 # exit block label inside the package
    target: Location           # original code the exit transfers to
    direction: str             # taken / fallthrough / jump / fall / call_return
    context: tuple             # inlining context of the exiting code
    branch_origin: Optional[int] = None  # branch uid whose cold side this is
    linked_to: Optional[Tuple[str, str]] = None  # (package name, label)

    @property
    def is_linked(self) -> bool:
        return self.linked_to is not None


@dataclass
class BranchInstance:
    """One conditional branch replicated into a package.

    The paper's Figure 7 annotates each branch instance with its bias
    for the phase (``U`` unbiased, ``F`` biased fall-through, ``T``
    biased taken); instances from different inlining contexts of the
    same static branch are *incompatible* for linking.
    """

    origin_uid: int
    context: tuple
    bias: str
    block_label: str
    exit_label: Optional[str] = None  # the exiting side, for T/F biases


@dataclass
class Package:
    """An assembled, function-shaped code package for one phase."""

    name: str
    region_index: int
    root: str
    blocks: List[BasicBlock] = field(default_factory=list)
    #: package entry label -> original location it mirrors
    entry_map: Dict[str, Location] = field(default_factory=dict)
    exits: List[PackageExit] = field(default_factory=list)
    branch_instances: List[BranchInstance] = field(default_factory=list)
    #: (original location, context) -> package block label; the linking
    #: index (paper 3.3.4: links require identical calling contexts).
    location_index: Dict[Tuple[Location, tuple], str] = field(default_factory=dict)
    #: Origin uids of instructions the cold-sinking pass moved out of
    #: hot blocks into exit blocks.  These are the only instructions
    #: allowed to retire *fewer* times in the packed binary than in the
    #: original; the differential oracle consults this set.
    sunk_origins: Set[int] = field(default_factory=set)

    # -- derived -----------------------------------------------------
    def branch_count(self) -> int:
        """Number of conditional-branch instances (the rank denominator)."""
        return len(self.branch_instances)

    def static_size(self) -> int:
        return sum(block.size() for block in self.blocks)

    def entry_labels(self) -> List[str]:
        return list(self.entry_map)

    def entry_locations(self) -> List[Location]:
        return list(self.entry_map.values())

    def exit_by_label(self, label: str) -> PackageExit:
        for exit_site in self.exits:
            if exit_site.label == label:
                return exit_site
        raise KeyError(label)

    def find_block(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(label)

    def build_function(self) -> Function:
        """Materialize the package as a function-shaped code unit.

        Call after linking and optimization passes have finished
        mutating :attr:`blocks`.
        """
        entry_label = next(iter(self.entry_map), self.blocks[0].label)
        return Function(self.name, self.blocks, entry_label=entry_label)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<Package {self.name} root={self.root} blocks={len(self.blocks)} "
            f"entries={len(self.entry_map)} exits={len(self.exits)}>"
        )
