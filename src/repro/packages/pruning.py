"""Function pruning and data-flow preservation (paper section 3.3.1).

"For each hot region, copies of the marked functions are reduced to
include only the blocks and control-flow arcs declared important (Hot)
for that region. ... The live registers at these exit points are
maintained in the optimizer by creating a new basic block, called an
exit block, along each exit path and by placing dummy consumer
instructions for each register that is live across the exit."

Pruning produces *plans*, not concrete blocks: the same pruned function
is instantiated many times during partial inlining (once per inline
site, possibly in several packages), each time with a different label
prefix, calling context, and continuation frames.  A
:class:`BlockPlan` records, per hot block, where each control direction
goes — another hot block, or an exit carrying the registers live across
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.liveness import LivenessAnalysis
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg
from repro.program.cfg import ArcKind
from repro.regions.region import HotRegion

#: An original-code location: (function name, block label).
Location = Tuple[str, str]


@dataclass(frozen=True)
class ExitPlan:
    """One side exit: back to original code at ``target``."""

    target: Location
    #: Registers live when control arrives at ``target`` in the
    #: original code; the exit block consumes them.
    live: FrozenSet[Reg]
    #: ``"taken"`` / ``"fallthrough"`` for conditional-branch exits,
    #: ``"jump"`` for jump exits, ``"fall"`` for plain fallthrough
    #: exits, ``"call_return"`` when the return point after a call is
    #: cold.
    direction: str


@dataclass
class BlockPlan:
    """How one hot block is reproduced inside a package."""

    origin_label: str
    #: Successor plans.  ``taken_to`` / ``fall_to`` name hot blocks of
    #: the same pruned function; the corresponding ``*_exit`` is set
    #: instead when that direction leaves the region.
    taken_to: Optional[str] = None
    fall_to: Optional[str] = None
    taken_exit: Optional[ExitPlan] = None
    fall_exit: Optional[ExitPlan] = None
    #: Callee name when the block ends in a call.
    call_target: Optional[str] = None
    is_return: bool = False
    is_halt: bool = False

    @property
    def has_conditional_branch(self) -> bool:
        return (self.taken_to is not None or self.taken_exit is not None) and (
            self.fall_to is not None or self.fall_exit is not None
        )

    def bias(self) -> Optional[str]:
        """Phase bias of a conditional branch in this package.

        ``"U"``: both directions stay in the package; ``"T"``: only the
        taken side stays (fallthrough exits); ``"F"``: only the
        fallthrough stays.  ``None`` for non-branch blocks (paper
        Figure 7's U/T/F annotations).
        """
        if not self.has_conditional_branch:
            return None
        taken_in = self.taken_to is not None
        fall_in = self.fall_to is not None
        if taken_in and fall_in:
            return "U"
        if taken_in:
            return "T"
        if fall_in:
            return "F"
        return None  # both sides exit: degenerate, treated as no branch


@dataclass
class PrunedFunction:
    """The pruned (hot-only) template of one region function."""

    origin: str                      # original function name
    plans: Dict[str, BlockPlan]      # origin block label -> plan
    order: List[str]                 # origin labels in layout order
    prologue_label: str
    prologue_included: bool
    epilogue_labels: List[str]       # hot blocks ending in return
    entry_labels: List[str] = field(default_factory=list)

    def reachable_from(self, starts: List[str]) -> List[str]:
        """Hot blocks reachable from ``starts`` along included arcs,
        returned in layout order."""
        seen: Set[str] = set()
        stack = [s for s in starts if s in self.plans]
        seen.update(stack)
        while stack:
            label = stack.pop()
            plan = self.plans[label]
            for nxt in (plan.taken_to, plan.fall_to):
                if nxt is not None and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return [label for label in self.order if label in seen]

    def has_prologue_epilogue_path(self) -> bool:
        """Partial-inlining legality (section 3.3.3): the callee needs a
        prologue, an epilogue, and a path between them."""
        if not self.prologue_included or not self.epilogue_labels:
            return False
        reachable = set(self.reachable_from([self.prologue_label]))
        return any(label in reachable for label in self.epilogue_labels)


def prune_function(region: HotRegion, function_name: str) -> PrunedFunction:
    """Build the pruned template for one region function."""
    subgraph = region.subgraph(function_name)
    function = region.program.function(function_name)
    cfg = function.cfg
    liveness = LivenessAnalysis(cfg)
    hot = set(subgraph.blocks)
    included = set(subgraph.arcs)

    plans: Dict[str, BlockPlan] = {}
    for label in subgraph.blocks:
        block = cfg.by_label[label]
        plan = BlockPlan(origin_label=label)
        term = block.terminator

        def exit_plan(target_label: str, direction: str) -> ExitPlan:
            return ExitPlan(
                target=(function_name, target_label),
                live=frozenset(liveness.live_in(target_label)),
                direction=direction,
            )

        if term is None or term.opcode is Opcode.NOP:
            _plan_fallthrough(plan, cfg, label, hot, included, exit_plan, "fall")
        elif term.is_conditional_branch:
            taken_label = term.target
            if (label, taken_label) in included and taken_label in hot:
                plan.taken_to = taken_label
            else:
                plan.taken_exit = exit_plan(taken_label, "taken")
            _plan_fallthrough(plan, cfg, label, hot, included, exit_plan, "fallthrough")
        elif term.opcode is Opcode.JUMP:
            target = term.target
            if (label, target) in included and target in hot:
                plan.taken_to = target
            else:
                plan.taken_exit = exit_plan(target, "jump")
        elif term.is_call:
            plan.call_target = term.target
            _plan_fallthrough(plan, cfg, label, hot, included, exit_plan, "call_return")
        elif term.is_return:
            plan.is_return = True
        elif term.opcode is Opcode.HALT:
            plan.is_halt = True
        plans[label] = plan

    epilogues = [l for l in subgraph.blocks if plans[l].is_return]
    from repro.regions.growth import entry_blocks_of

    marking = region.marking.marking(function_name)
    return PrunedFunction(
        origin=function_name,
        plans=plans,
        order=list(subgraph.blocks),
        prologue_label=function.prologue_label(),
        prologue_included=function.prologue_label() in hot,
        epilogue_labels=epilogues,
        entry_labels=entry_blocks_of(marking),
    )


def _plan_fallthrough(plan, cfg, label, hot, included, exit_plan, direction) -> None:
    """Resolve a block's fallthrough side to a hot block or an exit."""
    fall_arcs = [
        a for a in cfg.successors(label) if a.kind in (ArcKind.FALLTHROUGH, ArcKind.CALL_RETURN)
    ]
    if not fall_arcs:
        return
    fall_label = fall_arcs[0].dst
    if (label, fall_label) in included and fall_label in hot:
        plan.fall_to = fall_label
    else:
        plan.fall_exit = exit_plan(fall_label, direction)


def prune_region(region: HotRegion) -> Dict[str, PrunedFunction]:
    """Prune every function of the region."""
    return {
        name: prune_function(region, name) for name in region.function_names()
    }
