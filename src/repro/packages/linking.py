"""Package linking (paper section 3.3.4).

"Package linking provides paths to selectively reach alternate packages
rooted at the same point by retargeting cold (exit) paths in one
package to their target blocks that are hot in another package."

Compatibility is structural: an exit transfers to original location
``t`` under inlining context ``c``; a sibling package can receive the
link iff it contains a copy of ``t`` under the *identical* context
``c`` (the paper's B1'/B1'' example: same static branch, different
contexts, never linkable).  In bias terms this is exactly the paper's
rule that an ``F``-biased branch's cold (taken) side may connect to a
``T``- or ``U``-biased instance of the same branch, because only those
instances contain the taken-direction code.

"For our implementation, a link is always formed to the first
compatible package to the 'right', wrapping around the end to the
first package."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.isa.instructions import Opcode
from repro.program.cfg import cross_function_target

from .package import Package, PackageExit


@dataclass(frozen=True)
class Link:
    """A resolved link: ``source`` package's exit enters ``dest``."""

    source: str       # source package name
    exit_label: str
    dest: str         # destination package name
    dest_label: str


def find_link_target(
    exit_site: PackageExit, source: Package, ordered: Sequence[Package]
) -> Optional[Link]:
    """First compatible package to the right (cyclically), if any."""
    try:
        start = next(i for i, p in enumerate(ordered) if p.name == source.name)
    except StopIteration:  # pragma: no cover - caller passes member packages
        raise ValueError(f"{source.name} not in ordering")
    key = (exit_site.target, exit_site.context)
    count = len(ordered)
    for step in range(1, count):
        candidate = ordered[(start + step) % count]
        dest_label = candidate.location_index.get(key)
        if dest_label is not None:
            return Link(source.name, exit_site.label, candidate.name, dest_label)
    return None


def compute_links(ordered: Sequence[Package]) -> List[Link]:
    """All links formed under the right-with-wraparound rule."""
    links: List[Link] = []
    for package in ordered:
        for exit_site in package.exits:
            link = find_link_target(exit_site, package, ordered)
            if link is not None:
                links.append(link)
    return links


def incoming_link_counts(ordered: Sequence[Package], links: Sequence[Link]):
    counts = {package.name: 0 for package in ordered}
    for link in links:
        counts[link.dest] += 1
    return counts


def apply_links(ordered: Sequence[Package], links: Sequence[Link]) -> None:
    """Retarget exit blocks along the computed links.

    The exit block's jump now enters the destination package; its
    return-continuation frames are dropped because the destination copy
    shares the identical calling context (the continuation structure is
    re-established by *that* package's own exits if ever needed).
    """
    by_name = {package.name: package for package in ordered}
    for link in links:
        source = by_name[link.source]
        exit_site = source.exit_by_label(link.exit_label)
        block = source.find_block(link.exit_label)
        jump = block.instructions[-1]
        assert jump.opcode is Opcode.JUMP
        block.instructions[-1] = jump.retargeted(
            cross_function_target(link.dest, link.dest_label)
        )
        block.continuations = ()
        exit_site.linked_to = (link.dest, link.dest_label)
