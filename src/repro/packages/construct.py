"""Top-level package construction (paper section 3.3).

``construct_packages`` turns one hot region into its packages (one per
root function); ``construct_all`` processes every region of a program,
orders the packages that share root functions, and applies the links —
the full step-3 pipeline ahead of the post-link rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import PackageError
from repro.regions.region import HotRegion

from .inlining import build_package
from .linking import apply_links
from .ordering import OrderedGroup, check_ordering_mode, order_packages
from .package import Package
from .pruning import PrunedFunction, prune_region
from .roots import RootInfo, inlinable_functions, select_roots


@dataclass
class RegionPackages:
    """Packages built from one region, plus the analysis that shaped them."""

    region: HotRegion
    pruned: Dict[str, PrunedFunction]
    roots: List[RootInfo]
    packages: List[Package] = field(default_factory=list)


def construct_packages(region: HotRegion) -> RegionPackages:
    """Build one package per root function of the region.

    Structural failures inside pruning / root selection / inlining are
    re-raised as a typed :class:`~repro.errors.PackageError` naming the
    phase, so the quarantine loop can isolate it.
    """
    try:
        return _construct_packages(region)
    except PackageError:
        raise
    except (KeyError, IndexError, AttributeError, ValueError) as exc:
        raise PackageError(
            f"package construction failed for phase "
            f"#{region.record.index} ({type(exc).__name__}: {exc})",
            phase=region.record.index,
        ) from exc


def _construct_packages(region: HotRegion) -> RegionPackages:
    pruned = prune_region(region)
    # Drop functions whose pruned form is empty (can happen when a
    # record names a function whose hot blocks all failed inference).
    pruned = {name: t for name, t in pruned.items() if t.order}
    roots = select_roots(region, pruned)
    inlinable = frozenset(inlinable_functions(pruned))

    result = RegionPackages(region=region, pruned=pruned, roots=roots)
    for root_info in roots:
        if root_info.function not in pruned:
            continue
        name = f"pkg_p{region.record.index}_{root_info.function}"
        package = build_package(
            region, pruned, inlinable, name=name, root=root_info.function
        )
        if package.blocks:
            result.packages.append(package)
    return result


@dataclass
class PackagedProgramPlan:
    """Everything the post-link rewriter needs: all packages, grouped,
    ordered, and linked."""

    per_region: List[RegionPackages]
    groups: List[OrderedGroup]

    @property
    def packages(self) -> List[Package]:
        ordered: List[Package] = []
        for group in self.groups:
            ordered.extend(group.packages)
        return ordered

    def total_package_instructions(self) -> int:
        return sum(package.static_size() for package in self.packages)


def assemble_plan(
    per_region: Sequence[RegionPackages],
    link: bool = True,
    ordering: str = "best",
) -> PackagedProgramPlan:
    """Order and (optionally) link already-constructed region packages.

    Split out of :func:`construct_all` so the
    :class:`~repro.postlink.vacuum.VacuumPacker` quarantine loop can
    construct each region's packages in isolation, then assemble only
    the survivors.
    """
    check_ordering_mode(ordering)
    all_packages = [p for rp in per_region for p in rp.packages]
    groups = order_packages(all_packages, ordering)
    if link:
        for group in groups:
            apply_links(group.packages, group.links)
    else:
        for group in groups:
            group.links = []
    return PackagedProgramPlan(per_region=list(per_region), groups=groups)


def construct_all(
    regions: Sequence[HotRegion], link: bool = True, ordering: str = "best"
) -> PackagedProgramPlan:
    """Construct, order, and (optionally) link packages for all regions.

    ``link=False`` reproduces the Figure 8 / Figure 10 "w/o linking"
    configurations: packages are still built and ordered (orderings
    determine launch-point precedence) but no exit is retargeted.
    ``ordering`` is forwarded to the rank search (ablation hook).
    """
    check_ordering_mode(ordering)
    per_region = [construct_packages(region) for region in regions]
    return assemble_plan(per_region, link=link, ordering=ordering)
