"""Dependence graphs over straight-line instruction sequences.

Used by the list scheduler for both single blocks and superblocks.
Edges:

* register RAW / WAR / WAW (call instructions use the calling
  convention's use/def sets);
* conservative memory ordering: store->store, store->load, load->store;
* control ordering: branches stay in order; stores, calls, and pseudo
  consumers never move above an earlier branch (loads and plain ALU
  operations may — the paper's compiler schedules with *control
  speculation*, and package formation relies on the same freedom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.analysis.liveness import instruction_defs, instruction_uses
from repro.isa.instructions import Instruction

from .machine import MachineDescription


@dataclass
class DepNode:
    """One instruction in the dependence DAG."""

    index: int
    inst: Instruction
    succs: Dict[int, int] = field(default_factory=dict)  # succ index -> latency
    pred_count: int = 0
    height: int = 0  # critical-path height (scheduling priority)


class DependenceGraph:
    """DAG over one instruction sequence."""

    def __init__(self, instructions: Sequence[Instruction], machine: MachineDescription):
        self.machine = machine
        self.nodes: List[DepNode] = [
            DepNode(i, inst) for i, inst in enumerate(instructions)
        ]
        self._build()
        self._compute_heights()

    def _add_edge(self, src: int, dst: int, latency: int) -> None:
        node = self.nodes[src]
        existing = node.succs.get(dst)
        if existing is None:
            node.succs[dst] = latency
            self.nodes[dst].pred_count += 1
        elif latency > existing:
            node.succs[dst] = latency

    def _build(self) -> None:
        last_def: Dict = {}
        last_uses: Dict = {}
        last_store = -1
        last_branch = -1
        pending_loads: List[int] = []

        for i, node in enumerate(self.nodes):
            inst = node.inst
            latency = self.machine.latency(inst)
            uses = instruction_uses(inst)
            defs = instruction_defs(inst)

            for reg in uses:  # RAW
                if reg in last_def:
                    src = last_def[reg]
                    self._add_edge(src, i, self.machine.latency(self.nodes[src].inst))
            for reg in defs:  # WAW / WAR
                if reg in last_def:
                    self._add_edge(last_def[reg], i, 1)
                for user in last_uses.get(reg, ()):
                    if user != i:
                        self._add_edge(user, i, 0)

            if inst.is_store:
                if last_store >= 0:
                    self._add_edge(last_store, i, 1)
                for load in pending_loads:
                    self._add_edge(load, i, 0)
                pending_loads = []
                last_store = i
            elif inst.is_load:
                if last_store >= 0:
                    self._add_edge(
                        last_store, i, self.machine.latency(self.nodes[last_store].inst)
                    )
                pending_loads.append(i)

            speculation_barrier = inst.is_store or inst.is_call or inst.is_pseudo
            if inst.is_control:
                # Branches stay ordered among themselves and after the
                # instructions the previous branch guarded.
                if last_branch >= 0:
                    self._add_edge(last_branch, i, 1)
                last_branch = i
            elif speculation_barrier and last_branch >= 0:
                self._add_edge(last_branch, i, 1)

            for reg in defs:
                last_def[reg] = i
                last_uses[reg] = []
            for reg in uses:
                last_uses.setdefault(reg, []).append(i)

        # Memory and register state must be final before a terminator
        # leaves the sequence: order the last store before the last branch.
        if last_branch >= 0 and last_store >= 0 and last_store < last_branch:
            self._add_edge(last_store, last_branch, 0)

    def _compute_heights(self) -> None:
        for node in reversed(self.nodes):
            height = 0
            for succ, latency in node.succs.items():
                height = max(height, self.nodes[succ].height + max(latency, 1))
            node.height = height

    def roots(self) -> List[int]:
        return [n.index for n in self.nodes if n.pred_count == 0]

    def __len__(self) -> int:
        return len(self.nodes)
