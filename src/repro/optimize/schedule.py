"""List scheduler for the Table 2 EPIC machine.

Cycle-by-cycle list scheduling with critical-path priority: at each
cycle, ready instructions issue in height order while issue slots and
functional units last.  Works over a single basic block or over a
superblock (a straight-line sequence with side-exit branches — the
dependence graph already encodes which motions are legal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.instructions import Instruction

from .depgraph import DependenceGraph
from .machine import MachineDescription, TABLE2_MACHINE


@dataclass
class Schedule:
    """Result of scheduling one instruction sequence."""

    issue_cycle: Dict[int, int] = field(default_factory=dict)  # index -> cycle
    length: int = 0  # total cycles (last issue + 1); at least 1

    def cycle_of(self, index: int) -> int:
        return self.issue_cycle[index]


def schedule_sequence(
    instructions: Sequence[Instruction],
    machine: MachineDescription = TABLE2_MACHINE,
) -> Schedule:
    """Schedule one straight-line sequence; returns issue cycles."""
    real = [inst for inst in instructions]
    if not real:
        return Schedule(length=0)

    graph = DependenceGraph(real, machine)
    ready_cycle = [0] * len(real)
    pred_left = [node.pred_count for node in graph.nodes]
    ready: List[int] = [i for i, left in enumerate(pred_left) if left == 0]

    schedule = Schedule()
    cycle = 0
    scheduled = 0
    guard = 0
    while scheduled < len(real):
        guard += 1
        if guard > 10 * len(real) + 1000:  # pragma: no cover - safety net
            raise RuntimeError("scheduler failed to make progress")
        issue_budget = machine.issue_width
        unit_budget = {
            "ialu": machine.ialu_units,
            "fpu": machine.fpu_units,
            "mem": machine.mem_units,
            "branch": machine.branch_units,
        }
        # Highest critical path first; original order breaks ties.
        candidates = sorted(
            (i for i in ready if ready_cycle[i] <= cycle),
            key=lambda i: (-graph.nodes[i].height, i),
        )
        for index in candidates:
            inst = graph.nodes[index].inst
            if inst.is_pseudo:
                # Pseudo consumers occupy no resources.
                schedule.issue_cycle[index] = cycle
            else:
                unit = machine.unit_class(inst)
                if issue_budget <= 0 or unit_budget.get(unit, 0) <= 0:
                    continue
                issue_budget -= 1
                unit_budget[unit] -= 1
                schedule.issue_cycle[index] = cycle
            scheduled += 1
            ready.remove(index)
            for succ, latency in graph.nodes[index].succs.items():
                pred_left[succ] -= 1
                ready_cycle[succ] = max(ready_cycle[succ], cycle + latency)
                if pred_left[succ] == 0:
                    ready.append(succ)
        if scheduled == len(real):
            break
        cycle += 1

    # Pseudo instructions (dummy consumers) occupy no pipeline slot;
    # the sequence's length is defined by its real instructions.
    real_cycles = [
        cycle
        for index, cycle in schedule.issue_cycle.items()
        if not graph.nodes[index].inst.is_pseudo
    ]
    schedule.length = (max(real_cycles) + 1) if real_cycles else 0
    return schedule


def block_cycles(
    instructions: Sequence[Instruction],
    machine: MachineDescription = TABLE2_MACHINE,
) -> int:
    """Schedule length of one block (1 minimum for non-empty blocks)."""
    real = [inst for inst in instructions if not inst.is_pseudo]
    if not real:
        return 0
    return schedule_sequence(instructions, machine).length
