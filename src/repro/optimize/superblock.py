"""Superblock formation and superblock-aware block costs.

The paper notes that package formation increases scheduling scope:
"the elimination of cold paths may increase block scope by eliminating
side entrances" (section 5.4).  After layout, maximal fallthrough
chains without side entrances are scheduled as single units; each
member block is then attributed the *incremental* cycles it adds to
the chain, so the dynamic timing walk charges exactly the joint
schedule regardless of which side exit ends the traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.program.block import BasicBlock
from repro.program.cfg import ControlFlowGraph

from .machine import MachineDescription, TABLE2_MACHINE
from .schedule import schedule_sequence


@dataclass
class Superblock:
    """One single-entry, multiple-exit straight-line chain."""

    labels: List[str]
    #: incremental cycle cost per member block, same order as labels
    member_cycles: List[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(self.member_cycles)


def form_superblocks(blocks: Sequence[BasicBlock], entry_label: str) -> List[Superblock]:
    """Partition a laid-out block list into superblocks.

    A block starts a new superblock when it is an explicit control
    target (any taken arc lands on it), has more than one predecessor,
    or follows a block that cannot fall through (jump/return/halt) or
    that ends in a call (calls bound scheduling regions).
    """
    cfg = ControlFlowGraph(blocks, entry_label)
    taken_targets = {arc.dst for arc in cfg.arcs if arc.kind.value == "taken"}

    superblocks: List[Superblock] = []
    current: List[str] = []
    for i, block in enumerate(blocks):
        label = block.label
        preds = cfg.pred_labels(label)
        starts_new = (
            not current
            or label in taken_targets
            or len(preds) != 1
            or i == 0
        )
        if not starts_new:
            previous = blocks[i - 1]
            prev_term = previous.terminator
            reaches_by_fall = (
                prev_term is None or prev_term.is_conditional_branch
            )
            starts_new = not reaches_by_fall or preds[0] != previous.label
        if starts_new and current:
            superblocks.append(Superblock(current))
            current = []
        current.append(label)
    if current:
        superblocks.append(Superblock(current))
    return superblocks


def superblock_costs(
    blocks: Sequence[BasicBlock],
    entry_label: str,
    machine: MachineDescription = TABLE2_MACHINE,
) -> Dict[int, int]:
    """Per-block incremental cycle costs under joint scheduling.

    Returns ``{block uid: cycles}``; the sum over a superblock's
    members equals the chain's joint schedule length, and any prefix
    (ending at a side exit) is charged only its own cumulative cycles.
    """
    by_label = {block.label: block for block in blocks}
    costs: Dict[int, int] = {}
    for superblock in form_superblocks(blocks, entry_label):
        members = [by_label[label] for label in superblock.labels]
        instructions = []
        boundaries = []
        for block in members:
            instructions.extend(block.instructions)
            boundaries.append(len(instructions))
        if not instructions:
            for block in members:
                costs[block.uid] = 0
                superblock.member_cycles.append(0)
            continue
        schedule = schedule_sequence(instructions, machine)
        previous_cum = 0
        start = 0
        running_max = -1
        for block, boundary in zip(members, boundaries):
            for index in range(start, boundary):
                running_max = max(running_max, schedule.issue_cycle.get(index, 0))
            start = boundary
            cum = running_max + 1 if running_max >= 0 else 0
            cost = cum - previous_cum
            previous_cum = cum
            costs[block.uid] = max(cost, 0)
            superblock.member_cycles.append(max(cost, 0))
    return costs


def per_block_costs(
    blocks: Sequence[BasicBlock],
    machine: MachineDescription = TABLE2_MACHINE,
) -> Dict[int, int]:
    """Baseline: each block scheduled independently (no superblocks)."""
    costs = {}
    for block in blocks:
        real = [inst for inst in block.instructions if not inst.is_pseudo]
        if not real:
            costs[block.uid] = 0
        else:
            costs[block.uid] = schedule_sequence(block.instructions, machine).length
    return costs
