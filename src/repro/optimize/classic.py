"""Classic clean-up optimizations over packages.

The paper notes that beyond relayout and rescheduling, "various
classic, ILP, and loop optimizations could also be applied to further
improve the application's performance" (section 5.4) — and that
packages are a *good* target for them because cold-path elimination
removed the merge points that usually block them.  This module supplies
the classic tier:

* **local copy propagation** — forward ``mov d, s`` sources through a
  block;
* **local constant folding** — fold ``movi`` constants into dependent
  immediate-form ALU operations;
* **dead code elimination** — liveness-driven removal of instructions
  whose results are never used (the CONSUME pseudo-ops at exits keep
  everything the original code may still read alive, which is what
  makes this sound inside a package).

All three are conservative and semantics-preserving; the integration
tests run the real interpreter over optimized packages to verify it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.analysis.liveness import LivenessAnalysis, instruction_defs, instruction_uses
from repro.isa.instructions import IMMEDIATE_ALU, Instruction, Opcode
from repro.isa.registers import Reg
from repro.packages.package import Package
from repro.program.cfg import ControlFlowGraph


@dataclass
class ClassicReport:
    """What the classic passes changed in one package."""

    copies_propagated: int = 0
    constants_folded: int = 0
    dead_removed: int = 0

    @property
    def total(self) -> int:
        return self.copies_propagated + self.constants_folded + self.dead_removed


def copy_propagation(package: Package) -> int:
    """Forward local copies: after ``mov d, s``, uses of ``d`` read ``s``.

    Local (per-block) and killed by any redefinition of either side, so
    it needs no global analysis to stay safe.
    """
    rewritten = 0
    for block in package.blocks:
        copies: Dict[Reg, Reg] = {}
        for i, inst in enumerate(block.instructions):
            if inst.srcs and not inst.is_pseudo:
                new_srcs = tuple(copies.get(s, s) for s in inst.srcs)
                if new_srcs != inst.srcs:
                    block.instructions[i] = replace(inst, srcs=new_srcs)
                    inst = block.instructions[i]
                    rewritten += 1
            for defined in instruction_defs(inst):
                copies.pop(defined, None)
                stale = [d for d, s in copies.items() if s == defined]
                for d in stale:
                    del copies[d]
            if inst.opcode is Opcode.MOV and inst.dest != inst.srcs[0]:
                copies[inst.dest] = inst.srcs[0]
    return rewritten


_FOLDABLE = {
    Opcode.ADD: Opcode.ADDI,
    Opcode.SUB: Opcode.SUBI,
    Opcode.MUL: Opcode.MULI,
    Opcode.AND: Opcode.ANDI,
    Opcode.OR: Opcode.ORI,
    Opcode.XOR: Opcode.XORI,
}

_IMM_LIMIT = 1 << 31


def constant_folding(package: Package) -> int:
    """Fold locally known ``movi`` constants into immediate ALU forms.

    ``movi r1, 5; add r2, r3, r1`` becomes ``addi r2, r3, 5`` (the movi
    itself is left for DCE to collect if it becomes dead).
    """
    folded = 0
    for block in package.blocks:
        constants: Dict[Reg, int] = {}
        for i, inst in enumerate(block.instructions):
            op = inst.opcode
            if (
                op in _FOLDABLE
                and len(inst.srcs) == 2
                and inst.srcs[1] in constants
                and abs(constants[inst.srcs[1]]) < _IMM_LIMIT
            ):
                value = constants[inst.srcs[1]]
                block.instructions[i] = replace(
                    inst,
                    opcode=_FOLDABLE[op],
                    srcs=(inst.srcs[0],),
                    imm=value,
                )
                inst = block.instructions[i]
                folded += 1
            for defined in instruction_defs(inst):
                constants.pop(defined, None)
            if op is Opcode.MOVI:
                constants[inst.dest] = inst.imm
    return folded


def _has_side_effects(inst: Instruction) -> bool:
    return inst.is_control or inst.is_store or inst.is_pseudo


def dead_code_elimination(package: Package) -> int:
    """Remove instructions whose results are provably never read.

    Iterates liveness + sweep to a fixed point (removing one dead
    instruction can make its inputs' producers dead too).

    Blocks that leave the package — returns, halts, and cross-function
    side exits — are treated as using *every* register: the code that
    runs afterwards (the caller, or original cold code) is outside this
    analysis, so only values provably overwritten or consumed within
    the package may be considered dead.  This is deliberately more
    conservative than the exit blocks' CONSUME lists, which describe
    intra-procedural liveness only.
    """
    from repro.isa.registers import ALL_REGS

    entry = next(iter(package.entry_map), package.blocks[0].label)
    boundary = frozenset(ALL_REGS)
    removed_total = 0
    while True:
        cfg = ControlFlowGraph(package.blocks, entry)
        liveness = LivenessAnalysis(cfg, boundary=boundary)
        removed = 0
        for block in package.blocks:
            live = set(liveness.live_out(block.label))
            keep = []
            for inst in reversed(block.instructions):
                defs = instruction_defs(inst)
                if (
                    not _has_side_effects(inst)
                    and inst.dest is not None
                    and not (set(defs) & live)
                ):
                    removed += 1
                    continue
                keep.append(inst)
                live -= set(defs)
                live |= set(instruction_uses(inst))
            keep.reverse()
            block.instructions[:] = keep
        removed_total += removed
        if not removed:
            return removed_total


def run_classic_passes(package: Package) -> ClassicReport:
    """Copy propagation, folding, then DCE (in that order)."""
    report = ClassicReport()
    report.copies_propagated = copy_propagation(package)
    report.constants_folded = constant_folding(package)
    report.dead_removed = dead_code_elimination(package)
    return report
