"""EPIC machine description (paper Table 2).

An 8-issue machine with five functional-unit classes: 5 integer ALUs,
3 floating-point units (long-latency FP operations share them), 3
memory units, and 3 branch units.  The list scheduler and the timing
model both consume this description, so the same machine constrains
static schedules and dynamic cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import FuClass, Instruction, Opcode

#: Default operation latencies (cycles until dependents may issue).
DEFAULT_LATENCIES: Dict[str, int] = {
    "ialu": 1,
    "imul": 3,
    "load": 3,
    "store": 1,
    "fpu": 3,
    "long_fp": 12,
    "branch": 1,
}


@dataclass(frozen=True)
class MachineDescription:
    """Issue width, functional-unit counts, and latencies."""

    issue_width: int = 8
    ialu_units: int = 5
    fpu_units: int = 3
    mem_units: int = 3
    branch_units: int = 3
    branch_resolution: int = 7  # mispredict penalty, cycles
    taken_bubble: int = 1      # fetch redirect on any taken transfer
    latencies: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))

    # -- resource accounting ------------------------------------------
    def unit_class(self, inst: Instruction) -> str:
        """Which unit pool an instruction occupies."""
        fu = inst.fu_class
        if fu is FuClass.IALU:
            return "ialu"
        if fu in (FuClass.FPU, FuClass.LONG_FP):
            return "fpu"  # long-latency FP shares the FP units
        if fu is FuClass.MEM:
            return "mem"
        if fu is FuClass.BRANCH:
            return "branch"
        return "none"  # pseudo instructions occupy nothing

    def units_of(self, unit_class: str) -> int:
        return {
            "ialu": self.ialu_units,
            "fpu": self.fpu_units,
            "mem": self.mem_units,
            "branch": self.branch_units,
        }.get(unit_class, 0)

    def latency(self, inst: Instruction) -> int:
        """Result latency of an instruction."""
        if inst.is_pseudo:
            return 0
        op = inst.opcode
        if op in (Opcode.MUL, Opcode.MULI):
            return self.latencies["imul"]
        if inst.is_load:
            return self.latencies["load"]
        if inst.is_store:
            return self.latencies["store"]
        fu = inst.fu_class
        if fu is FuClass.FPU:
            return self.latencies["fpu"]
        if fu is FuClass.LONG_FP:
            return self.latencies["long_fp"]
        if fu is FuClass.BRANCH:
            return self.latencies["branch"]
        return self.latencies["ialu"]


#: The evaluation machine of the paper (Table 2).
TABLE2_MACHINE = MachineDescription()
