"""Cold-instruction sinking into exit blocks (paper section 5.4).

"Further compaction of the code schedule may be achieved by a
redundancy-elimination optimization that moves cold instructions
(those whose results are not consumed within the hot package) to the
side exit block."

An instruction is sunk when its result is dead on every in-package
path and live only into exit blocks; it is then removed from the hot
block and re-materialized at the top of each exit block that needs it
(duplicating across exits when necessary).  The CONSUME pseudo-ops
placed by pruning are what makes the liveness query sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.liveness import LivenessAnalysis, instruction_defs, instruction_uses
from repro.isa.instructions import Instruction, Opcode
from repro.packages.package import Package
from repro.program.cfg import ControlFlowGraph


def _is_exit_block(block) -> bool:
    return bool(block.meta.get("exit"))


def _resolve_through_jumps(cfg: ControlFlowGraph, label: str, limit: int = 8) -> str:
    """Follow single-jump trampolines to the real destination."""
    current = label
    for _ in range(limit):
        block = cfg.by_label[current]
        term = block.terminator
        if (
            len(block.instructions) == 1
            and term is not None
            and term.opcode is Opcode.JUMP
            and term.target in cfg
        ):
            current = term.target
        else:
            return current
    return current


def sink_cold_instructions(package: Package) -> int:
    """Run the sinking pass in place; returns instructions moved."""
    entry = next(iter(package.entry_map), package.blocks[0].label)
    cfg = ControlFlowGraph(package.blocks, entry)
    liveness = LivenessAnalysis(cfg)
    moved = 0

    for block in package.blocks:
        if _is_exit_block(block) or not block.instructions:
            continue
        moved += _sink_from_block(package, cfg, liveness, block)
    return moved


def _sink_from_block(package, cfg, liveness, block) -> int:
    exit_succs: List[str] = []
    hot_succs: List[str] = []
    for arc in cfg.successors(block.label):
        resolved = _resolve_through_jumps(cfg, arc.dst)
        target_block = cfg.by_label[resolved]
        if _is_exit_block(target_block):
            exit_succs.append(resolved)
        else:
            hot_succs.append(arc.dst)
    if not exit_succs:
        return 0

    body = block.instructions
    term = block.terminator
    limit = len(body) - (1 if term is not None else 0)

    sinkable: Dict[int, List[str]] = {}
    for i in range(limit - 1, -1, -1):
        inst = body[i]
        if (
            inst.is_control
            or inst.is_store
            or inst.is_pseudo
            or inst.dest is None
        ):
            continue
        dest = inst.dest
        later = body[i + 1 :]
        if any(dest in instruction_uses(x) for x in later):
            continue
        if any(dest in instruction_defs(x) for x in later):
            continue
        if any(
            set(instruction_defs(x)) & set(instruction_uses(inst)) for x in later
        ):
            continue
        if any(dest in liveness.live_in(s) for s in hot_succs):
            continue
        receivers = [s for s in exit_succs if dest in liveness.live_in(s)]
        if not receivers:
            continue
        sinkable[i] = receivers

    if not sinkable:
        return 0

    moved = 0
    # Collect per receiver in original order, then remove bottom-up so
    # indices stay valid.
    staged: Dict[str, List[Instruction]] = {}
    for i in sorted(sinkable):
        for receiver in sinkable[i]:
            staged.setdefault(receiver, []).append(body[i].clone())
    for i in sorted(sinkable, reverse=True):
        # The moved instruction now retires only when an exit path runs;
        # record its origin so the differential oracle can tell this
        # legitimate work-count reduction apart from a dropped
        # instruction.
        package.sunk_origins.add(body[i].root_origin())
        del body[i]
        moved += 1
    for receiver, instructions in staged.items():
        target_block = cfg.by_label[receiver]
        target_block.instructions[0:0] = instructions
    return moved
