"""Optimizer: machine model, scheduling, layout, superblocks, sinking."""

from .classic import (
    ClassicReport,
    constant_folding,
    copy_propagation,
    dead_code_elimination,
    run_classic_passes,
)
from .depgraph import DependenceGraph, DepNode
from .layout import LayoutResult, layout_package, package_weights
from .machine import DEFAULT_LATENCIES, MachineDescription, TABLE2_MACHINE
from .passes import (
    OptimizationSummary,
    PackageOptimizationReport,
    baseline_block_costs,
    optimize_package,
    optimize_packages,
    packed_block_costs,
    region_taken_probabilities,
)
from .reorder import reorder_block, reorder_blocks, reorder_package
from .schedule import Schedule, block_cycles, schedule_sequence
from .sink import sink_cold_instructions
from .superblock import Superblock, form_superblocks, per_block_costs, superblock_costs

__all__ = [
    "ClassicReport",
    "constant_folding",
    "copy_propagation",
    "dead_code_elimination",
    "run_classic_passes",
    "DEFAULT_LATENCIES",
    "DependenceGraph",
    "DepNode",
    "LayoutResult",
    "MachineDescription",
    "OptimizationSummary",
    "PackageOptimizationReport",
    "Schedule",
    "Superblock",
    "TABLE2_MACHINE",
    "baseline_block_costs",
    "block_cycles",
    "form_superblocks",
    "layout_package",
    "optimize_package",
    "optimize_packages",
    "package_weights",
    "packed_block_costs",
    "per_block_costs",
    "region_taken_probabilities",
    "reorder_block",
    "reorder_blocks",
    "reorder_package",
    "schedule_sequence",
    "sink_cold_instructions",
]
