"""Code layout for packages (paper section 5.4, "package relayout").

Greedy hot-path chaining in the Pettis-Hansen style:

1. estimate block/arc weights from the package's own CFG and the
   region's recorded taken probabilities;
2. chain blocks along the heaviest arcs.  A conditional branch and its
   one-jump fall-through *trampoline* (see the inliner) form a glued
   unit whose tail may chain to **either** successor — the fall-through
   destination, or the taken destination via *branch inversion*;
3. emit chains entry-first, then heaviest-head first;
4. clean up: apply the inversions the chains chose (flip ``brz`` <->
   ``brnz`` and swap the two targets) and delete jumps whose target
   ended up adjacent.

Branch inversion flips the opcode so real semantics stay correct for
the interpreter, and tags the block with ``meta['branch_inverted']`` so
the behavioral executor keeps mapping the *original* taken direction
onto the right successor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.weights import estimate_weights
from repro.isa.instructions import Opcode
from repro.packages.package import Package
from repro.program.cfg import ArcKind, ControlFlowGraph, is_cross_function

_INVERSE = {Opcode.BRZ: Opcode.BRNZ, Opcode.BRNZ: Opcode.BRZ}


@dataclass
class LayoutResult:
    """Statistics of one layout run."""

    chains: int = 0
    jumps_removed: int = 0
    branches_inverted: int = 0


def package_weights(package: Package, taken_prob: Dict[int, float]):
    """Block weights of a package CFG.

    ``taken_prob`` maps *branch origin uids* to recorded taken
    probabilities (from the hot-spot record); unknown branches default
    to 50/50 inside the weight solver.  Previously inverted branches
    flip their probability so it describes the physical taken arc.
    """
    cfg = ControlFlowGraph(package.blocks, next(iter(package.entry_map), None))
    label_prob: Dict[str, float] = {}
    for block in package.blocks:
        term = block.terminator
        if term is not None and term.is_conditional_branch:
            prob = taken_prob.get(term.root_origin())
            if prob is not None:
                if block.meta.get("branch_inverted"):
                    prob = 1.0 - prob
                label_prob[block.label] = prob
    entry_weights = {label: 1.0 for label in package.entry_map}
    if not entry_weights:
        entry_weights = {package.blocks[0].label: 1.0}
    return cfg, estimate_weights(cfg, label_prob, entry_weights=entry_weights)


@dataclass
class _BranchUnit:
    """A conditional branch block glued to its fall-through trampoline."""

    branch_label: str
    trampoline_label: str
    taken_target: str
    fall_target: str


def _find_branch_units(package: Package, cfg: ControlFlowGraph) -> Dict[str, _BranchUnit]:
    """Map trampoline label -> unit, for invertible branch/trampoline pairs."""
    units: Dict[str, _BranchUnit] = {}
    blocks = package.blocks
    for i, block in enumerate(blocks[:-1]):
        term = block.terminator
        if term is None or not term.is_conditional_branch:
            continue
        if is_cross_function(term.target):
            continue  # patched launch point: leave alone
        trampoline = blocks[i + 1]
        tramp_term = trampoline.terminator
        if (
            tramp_term is None
            or tramp_term.opcode is not Opcode.JUMP
            or len(trampoline.instructions) != 1
            or is_cross_function(tramp_term.target)
        ):
            continue
        fall_arc = cfg.arc(block.label, trampoline.label)
        if fall_arc is None or fall_arc.kind is not ArcKind.FALLTHROUGH:
            continue
        units[trampoline.label] = _BranchUnit(
            branch_label=block.label,
            trampoline_label=trampoline.label,
            taken_target=term.target,
            fall_target=tramp_term.target,
        )
    return units


def layout_package(
    package: Package, taken_prob: Optional[Dict[int, float]] = None
) -> LayoutResult:
    """Re-lay-out a package's blocks in place."""
    result = LayoutResult()
    taken_prob = taken_prob or {}
    cfg, weights = package_weights(package, taken_prob)
    units = _find_branch_units(package, cfg)

    order, inversions = _chain_order(package, cfg, weights, units, result)
    package.blocks = [cfg.by_label[label] for label in order]
    _apply_inversions(package, units, inversions, result)
    _remove_adjacent_jumps(package, result)
    return result


def _chain_order(
    package, cfg, weights, units, result
) -> Tuple[List[str], Set[str]]:
    labels = [b.label for b in package.blocks]
    next_in_chain: Dict[str, str] = {}
    prev_in_chain: Dict[str, str] = {}
    inversions: Set[str] = set()  # trampoline labels whose unit inverts

    # Mandatory glue: fallthrough and call-return successors must stay
    # physically adjacent.
    for arc in cfg.arcs:
        if arc.kind is ArcKind.TAKEN:
            continue
        next_in_chain[arc.src] = arc.dst
        prev_in_chain[arc.dst] = arc.src

    # Candidate arcs: (weight, src, dst, inverts-unit?).  A jump block's
    # target may follow it; a branch unit's trampoline may be followed
    # by either branch destination (following the taken one inverts).
    candidates: List[Tuple[float, str, str, bool]] = []
    for arc in cfg.arcs:
        if arc.kind is not ArcKind.TAKEN:
            continue
        unit = None
        src_block = cfg.by_label[arc.src]
        term = src_block.terminator
        if term is not None and term.is_conditional_branch:
            # Taken arc of a branch: only placeable via its unit.
            for candidate_unit in units.values():
                if candidate_unit.branch_label == arc.src:
                    unit = candidate_unit
                    break
            if unit is None:
                continue
            candidates.append(
                (weights.arc_weight(arc.src, arc.dst), unit.trampoline_label,
                 arc.dst, True)
            )
        else:
            candidates.append(
                (weights.arc_weight(arc.src, arc.dst), arc.src, arc.dst, False)
            )

    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    for weight, src, dst, inverts in candidates:
        if src in next_in_chain or dst in prev_in_chain:
            continue
        if src == dst:
            continue
        if _would_close_cycle(next_in_chain, src, dst):
            continue
        next_in_chain[src] = dst
        prev_in_chain[dst] = src
        if inverts:
            inversions.add(src)  # src is the trampoline label

    entry_labels = set(package.entry_map)
    heads = [l for l in labels if l not in prev_in_chain]

    def chain_key(head: str):
        is_entry_chain = 0 if _chain_contains(next_in_chain, head, entry_labels) else 1
        return (is_entry_chain, -weights.weight(head), head)

    order: List[str] = []
    for head in sorted(heads, key=chain_key):
        label: Optional[str] = head
        while label is not None:
            order.append(label)
            label = next_in_chain.get(label)
    result.chains = len(heads)
    return order, inversions


def _chain_contains(next_in_chain, head, wanted) -> bool:
    label = head
    while label is not None:
        if label in wanted:
            return True
        label = next_in_chain.get(label)
    return False


def _would_close_cycle(next_in_chain, src, dst) -> bool:
    label = dst
    while label is not None:
        if label == src:
            return True
        label = next_in_chain.get(label)
    return False


def _apply_inversions(package, units, inversions, result) -> None:
    """Flip the branches whose taken destination was chained after the
    trampoline."""
    by_label = {b.label: b for b in package.blocks}
    for trampoline_label in inversions:
        unit = units[trampoline_label]
        branch_block = by_label[unit.branch_label]
        trampoline = by_label[unit.trampoline_label]
        term = branch_block.terminator
        tramp_term = trampoline.terminator
        inverted = replace(
            term, opcode=_INVERSE[term.opcode], target=unit.fall_target
        )
        branch_block.instructions[-1] = inverted
        trampoline.instructions[-1] = tramp_term.retargeted(unit.taken_target)
        branch_block.meta["branch_inverted"] = not branch_block.meta.get(
            "branch_inverted", False
        )
        result.branches_inverted += 1


def _remove_adjacent_jumps(package, result) -> None:
    """Drop ``jump X`` when ``X`` is the next block in layout."""
    blocks = package.blocks
    for i, block in enumerate(blocks[:-1]):
        term = block.terminator
        if term is None or term.opcode is not Opcode.JUMP:
            continue
        if is_cross_function(term.target):
            continue
        if blocks[i + 1].label == term.target:
            block.instructions.pop()
            result.jumps_removed += 1
