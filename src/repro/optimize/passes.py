"""Optimization pass pipeline for packages (paper section 5.4).

``optimize_packages`` applies the paper's "additional code layout and
scheduling passes": per package, cold-code sinking, hot-path layout
(with branch inversion and jump elimination), then superblock-aware
scheduling to produce the per-block cycle costs the timing model
charges.  Original-code blocks are costed with independent per-block
schedules — the paper's baseline binaries were already scheduled by the
IMPACT compiler at block scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.packages.package import Package
from repro.program.program import Program
from repro.regions.region import HotRegion

from .layout import LayoutResult, layout_package
from .machine import MachineDescription, TABLE2_MACHINE
from .sink import sink_cold_instructions
from .superblock import per_block_costs, superblock_costs


@dataclass
class PackageOptimizationReport:
    """What the pass pipeline did to one package."""

    package: str
    layout: Optional[LayoutResult] = None
    instructions_sunk: int = 0
    classic: Optional["ClassicReport"] = None


@dataclass
class OptimizationSummary:
    reports: List[PackageOptimizationReport] = field(default_factory=list)

    @property
    def total_sunk(self) -> int:
        return sum(r.instructions_sunk for r in self.reports)

    @property
    def total_jumps_removed(self) -> int:
        return sum(r.layout.jumps_removed for r in self.reports if r.layout)

    @property
    def total_inversions(self) -> int:
        return sum(r.layout.branches_inverted for r in self.reports if r.layout)


def region_taken_probabilities(regions: Iterable[HotRegion]) -> Dict[int, float]:
    """Branch origin uid -> recorded taken probability, across regions.

    Later regions win on conflicts; the probabilities only steer layout
    heuristics, so any consistent choice is acceptable.
    """
    probs: Dict[int, float] = {}
    for region in regions:
        for name in region.function_names():
            marking = region.marking.marking(name)
            cfg = marking.function.cfg
            for label, prob in marking.taken_prob.items():
                term = cfg.by_label[label].terminator
                if term is not None and term.is_conditional_branch:
                    probs[term.root_origin()] = prob
    return probs


def optimize_package(
    package: Package,
    taken_prob: Optional[Dict[int, float]] = None,
    enable_sink: bool = True,
    enable_layout: bool = True,
    enable_classic: bool = False,
) -> PackageOptimizationReport:
    """Run the pass pipeline on one package, in place."""
    from .classic import run_classic_passes

    from .reorder import reorder_package

    report = PackageOptimizationReport(package=package.name)
    if enable_classic:
        report.classic = run_classic_passes(package)
    if enable_sink:
        report.instructions_sunk = sink_cold_instructions(package)
    if enable_layout:
        report.layout = layout_package(package, taken_prob)
        # Realize the schedules physically so an in-order front end
        # (and the pipeline validator) sees the compacted order.
        reorder_package(package)
    return report


def optimize_packages(
    packages: Sequence[Package],
    regions: Iterable[HotRegion] = (),
    enable_sink: bool = True,
    enable_layout: bool = True,
    enable_classic: bool = False,
) -> OptimizationSummary:
    """Optimize every package; returns the aggregate report."""
    taken_prob = region_taken_probabilities(regions)
    summary = OptimizationSummary()
    for package in packages:
        summary.reports.append(
            optimize_package(
                package, taken_prob, enable_sink, enable_layout, enable_classic
            )
        )
    return summary


def packed_block_costs(
    program: Program,
    package_names: Iterable[str],
    machine: MachineDescription = TABLE2_MACHINE,
    superblocks: bool = True,
) -> Dict[int, int]:
    """Cycle cost of every block of a packed program.

    All code — original and packages — is costed with the same
    superblock-aware scheduler (the paper's baselines were already
    scheduled by the IMPACT compiler at comparable scope).  Packages
    still win where their *structure* is better: partial inlining
    removes call-site scheduling barriers, layout extends fallthrough
    chains, and cold-path elimination compacts them.
    """
    costs: Dict[int, int] = {}
    for function in program.functions.values():
        if superblocks:
            costs.update(
                superblock_costs(function.blocks, function.entry_label, machine)
            )
        else:
            costs.update(per_block_costs(function.blocks, machine))
    return costs


def baseline_block_costs(
    program: Program, machine: MachineDescription = TABLE2_MACHINE
) -> Dict[int, int]:
    """Schedule costs for an unpacked program (same scheduler as the
    packed side, so timing differences come from structure alone)."""
    costs: Dict[int, int] = {}
    for function in program.functions.values():
        costs.update(
            superblock_costs(function.blocks, function.entry_label, machine)
        )
    return costs
