"""Physical instruction rescheduling within blocks.

The list scheduler (:mod:`repro.optimize.schedule`) computes issue
cycles; this pass *realizes* them by reordering each block's body into
schedule order (stable on ties), keeping the terminator last.  The
dependence graph already encodes every register and memory constraint,
so the permutation is semantics-preserving — and it is what makes the
schedule visible to a real in-order machine (see
:mod:`repro.cpu.pipeline`), not just to the analytical cost model.
"""

from __future__ import annotations

from typing import Sequence

from repro.packages.package import Package
from repro.program.block import BasicBlock

from .machine import MachineDescription, TABLE2_MACHINE
from .schedule import schedule_sequence


def reorder_block(
    block: BasicBlock, machine: MachineDescription = TABLE2_MACHINE
) -> bool:
    """Reorder one block's body into schedule order; True if changed."""
    term = block.terminator
    body = block.body
    if len(body) < 2:
        return False
    schedule = schedule_sequence(body, machine)
    order = sorted(range(len(body)), key=lambda i: (schedule.cycle_of(i), i))
    if order == list(range(len(body))):
        return False
    new_body = [body[i] for i in order]
    block.instructions[:] = new_body + ([term] if term is not None else [])
    return True


def reorder_package(
    package: Package, machine: MachineDescription = TABLE2_MACHINE
) -> int:
    """Reorder every block of a package; returns blocks changed."""
    return sum(1 for block in package.blocks if reorder_block(block, machine))


def reorder_blocks(
    blocks: Sequence[BasicBlock], machine: MachineDescription = TABLE2_MACHINE
) -> int:
    """Reorder a plain block list (used on whole functions in tests)."""
    return sum(1 for block in blocks if reorder_block(block, machine))
