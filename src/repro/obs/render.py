"""Exporters and reports for span ledgers + metrics snapshots.

Two interchangeable on-disk formats, both self-describing:

* **chrome** — a Chrome ``trace_event`` JSON object: complete (``"ph":
  "X"``) events in microseconds, one per span, with span attributes
  under ``args`` and the metrics snapshot + ledger version stored as
  top-level keys (the trace_event container format explicitly allows
  extra metadata).  Loads directly in ``chrome://tracing`` and
  https://ui.perfetto.dev.
* **jsonl** — a flat ledger: one JSON object per line; a ``header``
  line, one ``span`` line per span, and a final ``metrics`` line.
  Greppable and streamable.

:func:`load_export` reads either format back (sniffed from content,
not extension), and :func:`stage_table` renders the per-stage
time/size table that both ``repro trace`` and ``repro stats`` print —
they share this code path, so their numbers agree by construction.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import series_name
from .spans import LEDGER_VERSION, Span

EXPORT_FORMATS = ("chrome", "jsonl")

#: Figure-1 stage spans, in pipeline order, for table sorting.
STAGE_ORDER = (
    "pipeline.profile",
    "pipeline.identify",
    "pipeline.pack",
    "pipeline.rewrite",
    "pipeline.validate",
    "pipeline.coverage",
)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def to_chrome(spans: Sequence[Span], metrics: Optional[dict] = None) -> dict:
    """Chrome ``trace_event`` document for a finished ledger."""
    events = []
    for span in spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attributes)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ts": span.start * 1e6,
            "dur": span.seconds * 1e6,
            "pid": 0,
            "tid": 0,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "reproLedgerVersion": LEDGER_VERSION,
        "metrics": metrics or {},
    }


def to_jsonl_lines(
    spans: Sequence[Span], metrics: Optional[dict] = None
) -> List[str]:
    """Flat JSONL ledger lines (header, spans, metrics)."""
    lines = [json.dumps({
        "kind": "header", "format": "repro-obs", "version": LEDGER_VERSION,
    }, sort_keys=True)]
    for span in spans:
        lines.append(json.dumps(
            {"kind": "span", **span.to_dict()}, sort_keys=True
        ))
    lines.append(json.dumps(
        {"kind": "metrics", "snapshot": metrics or {}}, sort_keys=True
    ))
    return lines


def write_export(
    path: str,
    spans: Sequence[Span],
    metrics: Optional[dict] = None,
    fmt: str = "chrome",
) -> None:
    if fmt not in EXPORT_FORMATS:
        raise ValueError(
            f"unknown export format {fmt!r}; expected one of "
            f"{', '.join(EXPORT_FORMATS)}"
        )
    with open(path, "w") as handle:
        if fmt == "chrome":
            json.dump(to_chrome(spans, metrics), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        else:
            handle.write("\n".join(to_jsonl_lines(spans, metrics)) + "\n")


# ---------------------------------------------------------------------------
# loader
# ---------------------------------------------------------------------------

def _spans_from_chrome(document: dict) -> List[Span]:
    spans = []
    for event in document.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start = float(event.get("ts", 0.0)) / 1e6
        spans.append(Span(
            name=str(event.get("name", "")),
            span_id=int(span_id) if span_id is not None else len(spans) + 1,
            parent_id=None if parent_id is None else int(parent_id),
            start=start,
            end=start + float(event.get("dur", 0.0)) / 1e6,
            attributes=args,
        ))
    return sorted(spans, key=lambda s: s.span_id)


def load_export(path: str) -> Tuple[List[Span], dict]:
    """Read a ``repro trace`` export (either format) back.

    Raises ``ValueError`` when the file is neither a chrome trace nor
    a JSONL ledger.
    """
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        return _spans_from_chrome(document), dict(document.get("metrics", {}))
    spans: List[Span] = []
    metrics: dict = {}
    saw_header = False
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{number}: not a ledger line ({exc})")
        kind = record.get("kind")
        if kind == "header":
            saw_header = True
        elif kind == "span":
            spans.append(Span.from_dict(record))
        elif kind == "metrics":
            metrics = dict(record.get("snapshot", {}))
    if not saw_header:
        raise ValueError(
            f"{path}: neither a chrome trace (no traceEvents) nor a "
            f"JSONL ledger (no header line)"
        )
    return sorted(spans, key=lambda s: s.span_id), metrics


# ---------------------------------------------------------------------------
# the per-stage table
# ---------------------------------------------------------------------------

def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


_SIZE_ATTRS = (
    "records", "regions", "packages", "package_instructions",
    "static_size", "bytes_rewritten", "checks", "branches", "phases",
    "instructions", "seeds", "shards",
)


def _counter_total(metrics: dict, name: str) -> float:
    return sum(
        value for key, value in metrics.get("counters", {}).items()
        if series_name(key) == name
    )


def _rate_line(metrics: dict, label: str, prefix: str) -> Optional[str]:
    hits = _counter_total(metrics, f"{prefix}.hits")
    misses = _counter_total(metrics, f"{prefix}.misses")
    total = hits + misses
    if not total:
        return None
    return (
        f"{label}: {hits:.0f}/{total:.0f} hits "
        f"({hits / total:.1%} hit rate)"
    )


def stage_table(spans: Sequence[Span], metrics: Optional[dict] = None) -> str:
    """The per-stage wall-time/size table + metrics summary."""
    by_name: Dict[str, Dict[str, float]] = {}
    sizes: Dict[str, Dict[str, float]] = {}
    for span in spans:
        entry = by_name.setdefault(span.name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += span.seconds
        size = sizes.setdefault(span.name, {})
        for attr in _SIZE_ATTRS:
            value = span.attributes.get(attr)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                size[attr] = size.get(attr, 0) + value

    def order(name: str) -> Tuple[int, str]:
        try:
            return (STAGE_ORDER.index(name), name)
        except ValueError:
            return (len(STAGE_ORDER), name)

    rows = []
    for name in sorted(by_name, key=order):
        entry = by_name[name]
        detail = " ".join(
            f"{attr}={sizes[name][attr]:,.0f}"
            for attr in _SIZE_ATTRS if attr in sizes[name]
        )
        rows.append([
            name, f"{entry['count']:.0f}", f"{entry['seconds']:.3f}s", detail,
        ])
    lines = [_format_table(["span", "count", "wall", "sizes"], rows)]

    metrics = metrics or {}
    summary = []
    for label, prefix in (
        ("trace cache", "trace_cache"),
        ("artifact store", "artifact_store"),
    ):
        line = _rate_line(metrics, label, prefix)
        if line:
            summary.append(line)
    quarantined = _counter_total(metrics, "pipeline.quarantined")
    summary.append(f"quarantined phases: {quarantined:.0f}")
    # Artifact-store GC bookkeeping (PR 9): read stamps, evictions,
    # and the post-sweep byte gauge, when the store saw any traffic.
    stamped = _counter_total(metrics, "service.artifacts.hits")
    evicted = _counter_total(metrics, "service.artifacts.evictions")
    if stamped or evicted:
        summary.append(
            f"artifact reads stamped: {stamped:.0f}, "
            f"evicted: {evicted:.0f}"
        )
    for key, value in metrics.get("gauges", {}).items():
        if series_name(key) == "service.artifacts.bytes":
            summary.append(f"artifact store bytes: {value:,.0f}")
    # Batched-engine counters appear when a fleet advanced in lockstep.
    batched_rows = _counter_total(metrics, "engine.batched.rows")
    if batched_rows:
        retired = _counter_total(metrics, "engine.batched.retired_rows")
        steps = _counter_total(metrics, "engine.batched.steps")
        summary.append(
            f"batched engine: {batched_rows:.0f} client row(s), "
            f"{retired:.0f} retired in lockstep, {steps:.0f} steps"
        )
    # Service-layer fault counters only appear once the fleet service
    # has actually seen trouble — a clean run stays clean.
    for label, name in (
        ("quarantined ingests", "service.ingest.quarantined"),
        ("corrupt artifacts", "service.artifacts.corrupt"),
        ("farm shard failures", "farm.shard_failures"),
        ("farm shards degraded", "farm.shards_quarantined"),
        ("farm pool respawns", "farm.pool_respawns"),
    ):
        total = _counter_total(metrics, name)
        if total:
            summary.append(f"{label}: {total:.0f}")
    for key, hist in metrics.get("histograms", {}).items():
        if series_name(key) == "pipeline.stage.seconds":
            summary.append(
                f"{key}: total {hist['total']:.3f}s over "
                f"{hist['count']:.0f} run(s)"
            )
    if summary:
        lines.append("")
        lines.extend(summary)
    return "\n".join(lines)


__all__ = [
    "EXPORT_FORMATS",
    "STAGE_ORDER",
    "load_export",
    "stage_table",
    "to_chrome",
    "to_jsonl_lines",
    "write_export",
]
