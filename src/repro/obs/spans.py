"""Nestable span tracing on the monotonic clock.

A :class:`Span` is one timed piece of work (a pipeline stage, a cache
fill, a farm shard) with a name, free-form attributes, and a parent —
the span that was *current* (a context variable, so ``async``/thread
use is safe) when it started.  Span ids are allocated from a plain
per-tracer counter, so a deterministic run produces a deterministic
span tree; nothing in the id depends on wall clock or process identity.

Tracing is off by default and costs one module-global ``None`` check
per instrumentation site.  :func:`enable_tracing` installs a fresh
:class:`Tracer` and exports ``REPRO_OBS=1`` so worker processes forked
afterwards know to capture their own spans (see
:func:`repro.obs.start_capture`); cross-process ledgers are merged back
with :meth:`Tracer.merge`, which re-bases the child ids onto the parent
counter and re-parents the child's root spans under the parent span
that dispatched the work.

Exporters live in :mod:`repro.obs.render`: Chrome ``trace_event`` JSON
(load it at ``chrome://tracing`` / https://ui.perfetto.dev) and a flat
JSONL ledger.
"""

from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment flag that tells worker processes to capture spans and
#: metrics for their parent.  Set/cleared by enable/disable_tracing.
ENV_FLAG = "REPRO_OBS"

#: Schema version of exported ledgers (JSONL header + chrome metadata).
LEDGER_VERSION = 1


@dataclass
class Span:
    """One finished (or still-open) timed operation."""

    name: str
    span_id: int
    parent_id: Optional[int]
    #: Seconds since the owning tracer's origin (monotonic clock).
    start: float
    end: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=str(payload["name"]),
            span_id=int(payload["id"]),
            parent_id=(
                None if payload.get("parent") is None
                else int(payload["parent"])
            ),
            start=float(payload.get("start", 0.0)),
            end=float(payload.get("end", 0.0)),
            attributes=dict(payload.get("attrs", {})),
        )


class Tracer:
    """Collects spans for one process (or one captured worker task)."""

    def __init__(self) -> None:
        self._origin = time.monotonic()
        self._next_id = 1
        self._finished: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._current: "contextvars.ContextVar[Optional[int]]" = (
            contextvars.ContextVar("repro_obs_current", default=None)
        )
        # Restored by finish_capture when this tracer shadowed another.
        self._previous: Optional["Tracer"] = None

    # -- recording ---------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes):
        span_id = self._next_id
        self._next_id += 1
        entry = Span(
            name=name,
            span_id=span_id,
            parent_id=self._current.get(),
            start=time.monotonic() - self._origin,
            attributes=dict(attributes),
        )
        self._open[span_id] = entry
        token = self._current.set(span_id)
        try:
            yield entry
        finally:
            self._current.reset(token)
            entry.end = time.monotonic() - self._origin
            del self._open[span_id]
            self._finished.append(entry)

    @property
    def current_id(self) -> Optional[int]:
        return self._current.get()

    # -- reading -----------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans in id (creation) order."""
        return sorted(self._finished, key=lambda s: s.span_id)

    def export(self) -> dict:
        """JSON-able ledger of the finished spans (local ids)."""
        return {
            "version": LEDGER_VERSION,
            "spans": [span.to_dict() for span in self.spans()],
        }

    # -- cross-process merge -----------------------------------------
    def merge(
        self, payload: dict, parent_id: Optional[int] = None
    ) -> Dict[int, int]:
        """Fold a worker ledger into this tracer.

        Child ids are re-based onto this tracer's counter (in the
        child's own creation order, so merging is deterministic when
        payloads arrive in a deterministic order); intra-payload parent
        links are preserved and the payload's root spans are
        re-parented under ``parent_id`` (default: the caller's current
        span).  Child timestamps are shifted so the merged subtree
        starts inside the span it is parented under.  Returns the
        old-id → new-id mapping.
        """
        if parent_id is None:
            parent_id = self.current_id
        entries = sorted(
            (Span.from_dict(item) for item in payload.get("spans", ())),
            key=lambda s: s.span_id,
        )
        shift = 0.0
        if entries:
            base = 0.0
            if parent_id is not None and parent_id in self._open:
                base = self._open[parent_id].start
            shift = base - min(span.start for span in entries)
        mapping: Dict[int, int] = {}
        for span in entries:
            new_id = self._next_id
            self._next_id += 1
            mapping[span.span_id] = new_id
            parent = (
                mapping.get(span.parent_id, parent_id)
                if span.parent_id is not None
                else parent_id
            )
            self._finished.append(Span(
                name=span.name,
                span_id=new_id,
                parent_id=parent,
                start=span.start + shift,
                end=span.end + shift,
                attributes=dict(span.attributes),
            ))
        return mapping


# ---------------------------------------------------------------------------
# process-global tracer
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None
#: Pid that installed ``_ACTIVE``.  A forked worker inherits the
#: parent's tracer object but must never treat it as its own — its
#: spans could not reach the parent — so every read is pid-guarded.
_ACTIVE_PID: Optional[int] = None


def active_tracer() -> Optional[Tracer]:
    if _ACTIVE is None or _ACTIVE_PID != os.getpid():
        return None
    return _ACTIVE


def tracing_enabled() -> bool:
    return active_tracer() is not None


def enable_tracing(export_env: bool = True) -> Tracer:
    """Install (and return) a fresh process-global tracer.

    ``export_env`` additionally sets :data:`ENV_FLAG` so worker
    processes created afterwards capture their own ledgers for the
    parent to merge.
    """
    global _ACTIVE, _ACTIVE_PID
    _ACTIVE = Tracer()
    _ACTIVE_PID = os.getpid()
    if export_env:
        os.environ[ENV_FLAG] = "1"
    return _ACTIVE


def disable_tracing(clear_env: bool = True) -> None:
    """Drop the process-global tracer.

    ``clear_env=False`` keeps :data:`ENV_FLAG` exported — used by
    worker-task capture, where the *parent's* request to capture must
    survive into the worker's next task.
    """
    global _ACTIVE
    _ACTIVE = None
    if clear_env:
        os.environ.pop(ENV_FLAG, None)


def env_enabled() -> bool:
    """Did a parent process ask workers to capture observability data?"""
    return os.environ.get(ENV_FLAG, "").strip() == "1"


@contextmanager
def span(name: str, **attributes):
    """Record a span on the active tracer; no-op (yields ``None``)
    when tracing is disabled."""
    if _ACTIVE is None:  # cheap fast path for the common case
        yield None
        return
    tracer = active_tracer()
    if tracer is None:  # inherited from a forked parent — not ours
        yield None
        return
    with tracer.span(name, **attributes) as entry:
        yield entry


def annotate(entry: Optional[Span], **attributes) -> None:
    """Attach attributes to a span from :func:`span` (``None``-safe)."""
    if entry is not None:
        entry.attributes.update(attributes)


__all__ = [
    "ENV_FLAG",
    "LEDGER_VERSION",
    "Span",
    "Tracer",
    "active_tracer",
    "annotate",
    "disable_tracing",
    "enable_tracing",
    "env_enabled",
    "span",
    "tracing_enabled",
]
