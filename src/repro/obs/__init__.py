"""``repro.obs`` — zero-dependency structured tracing + metrics.

The pipeline observability layer: every Figure-1 stage, cache, farm
shard and fuzz seed reports *where time went and what was dropped*
through two primitives —

* :mod:`repro.obs.spans` — nestable monotonic-clock spans with a
  context-var current span, exported as Chrome ``trace_event`` JSON or
  a flat JSONL ledger (``repro trace <cmd>``);
* :mod:`repro.obs.metrics` — a process-local counter/gauge/histogram
  registry (cache hits, quarantine drops, oracle verdicts, bytes
  rewritten, per-stage wall time) with label support and a
  ``snapshot()`` API (``repro stats``).

Instrumentation sites cost one ``None`` check while tracing is off and
one dict update per metric event, so they stay on in production paths.

**Cross-process discipline.**  ``ProcessPoolExecutor`` workers cannot
append to the parent's ledger, so worker entry points bracket each task
with :func:`start_capture` / :func:`finish_capture` (no-ops unless the
parent exported ``REPRO_OBS=1`` via ``enable_tracing``), ship the
returned payload home inside their result, and the parent folds it in
with :func:`absorb` — re-based span ids, parent links pointing at the
dispatching span, counters added.  Payloads are plain JSON-able dicts,
so they ride the existing pickled result path unchanged.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    MetricsRegistry,
    default_registry,
    inc,
    observe,
    reset_metrics,
    set_gauge,
    stable_snapshot,
    swap_registry,
)
from .spans import (
    Span,
    Tracer,
    active_tracer,
    annotate,
    disable_tracing,
    enable_tracing,
    env_enabled,
    span,
    tracing_enabled,
)


class _Capture:
    """One worker task's isolated tracer + metrics registry."""

    def __init__(self, tracer: Tracer, previous_registry: MetricsRegistry):
        self.tracer = tracer
        self.previous_registry = previous_registry


def start_capture() -> Optional[_Capture]:
    """Begin capturing one worker task's observability data.

    Returns ``None`` — capture not needed — when tracing is already
    active in this process (spans land on the live tracer and metrics
    on the live registry directly; nothing must travel) or when no
    parent asked for capture (``REPRO_OBS`` unset).  Otherwise installs
    a fresh tracer and metrics registry for the duration of the task.
    """
    if tracing_enabled() or not env_enabled():
        return None
    tracer = enable_tracing(export_env=False)
    return _Capture(tracer, swap_registry(MetricsRegistry()))


def finish_capture(capture: Optional[_Capture]) -> Optional[dict]:
    """End a capture; returns the JSON-able payload (or ``None``)."""
    if capture is None:
        return None
    payload = capture.tracer.export()
    payload["metrics"] = default_registry().snapshot()
    swap_registry(capture.previous_registry)
    disable_tracing(clear_env=False)
    return payload


def absorb(payload: Optional[dict], parent_id: Optional[int] = None) -> None:
    """Fold a worker capture payload into this process' ledger.

    Safe to call with ``None`` (worker had nothing to capture) and
    with tracing disabled (metrics still merge — counters from worker
    tasks always count).
    """
    if not payload:
        return
    tracer = active_tracer()
    if tracer is not None:
        tracer.merge(payload, parent_id=parent_id)
    default_registry().merge(payload.get("metrics"))


__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "absorb",
    "active_tracer",
    "annotate",
    "default_registry",
    "disable_tracing",
    "enable_tracing",
    "env_enabled",
    "finish_capture",
    "inc",
    "observe",
    "reset_metrics",
    "set_gauge",
    "span",
    "stable_snapshot",
    "start_capture",
    "swap_registry",
    "tracing_enabled",
]
