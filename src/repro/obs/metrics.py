"""Process-local metrics: counters, gauges, histograms, with labels.

The registry is a plain dictionary keyed by ``name{label=value,...}``
series keys — no background threads, no exposition server, no
dependencies.  Instrumentation sites call the module-level helpers
(:func:`inc`, :func:`set_gauge`, :func:`observe`) against the default
registry; a cost of one dict update per event keeps them safe to leave
on everywhere (the per-stage pipeline sites fire a handful of times per
pack, never per simulated instruction).

Naming scheme (see ``docs/observability.md``):

* dot-separated subsystem prefixes — ``pipeline.*``, ``trace_cache.*``,
  ``artifact_store.*``, ``fuzz.*``, ``farm.*``, ``engine.*``;
* wall-clock series end in ``.seconds`` and are histograms.  That
  suffix is a *contract*: :func:`stable_snapshot` strips those series
  so two identical runs compare equal modulo timing.

Cross-process: a worker's registry snapshot travels home in its result
payload and is folded in with :meth:`MetricsRegistry.merge` — counters
and histograms add, gauges last-write-wins.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Series-name suffix reserved for wall-clock measurements.
TIME_SUFFIX = ".seconds"


def series_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted by name)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def series_name(key: str) -> str:
    """The metric name of a series key (labels stripped)."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class MetricsRegistry:
    """Counter/gauge/histogram store with a mergeable snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}

    # -- writes ------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        key = series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = series_key(name, labels)
        entry = self._histograms.get(key)
        if entry is None:
            self._histograms[key] = {
                "count": 1, "total": value, "min": value, "max": value,
            }
        else:
            entry["count"] += 1
            entry["total"] += value
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)

    # -- reads -------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        return self._counters.get(series_key(name, labels), 0)

    def snapshot(self) -> dict:
        """JSON-able copy of every series (keys sorted)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: dict(value)
                for key, value in sorted(self._histograms.items())
            },
        }

    # -- maintenance -------------------------------------------------
    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold a (worker) snapshot in: counters/histograms add,
        gauges take the incoming value."""
        if not snapshot:
            return
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            self._gauges[key] = value
        for key, incoming in snapshot.get("histograms", {}).items():
            entry = self._histograms.get(key)
            if entry is None:
                self._histograms[key] = dict(incoming)
            else:
                entry["count"] += incoming["count"]
                entry["total"] += incoming["total"]
                entry["min"] = min(entry["min"], incoming["min"])
                entry["max"] = max(entry["max"], incoming["max"])

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def stable_snapshot(snapshot: dict) -> dict:
    """``snapshot`` with every wall-clock series removed.

    Strips series whose *name* ends in :data:`TIME_SUFFIX` from all
    three kinds, so two identical runs produce equal stable snapshots
    no matter how long each stage took.
    """
    def keep(key: str) -> bool:
        return not series_name(key).endswith(TIME_SUFFIX)

    return {
        kind: {
            key: value for key, value in snapshot.get(kind, {}).items()
            if keep(key)
        }
        for kind in ("counters", "gauges", "histograms")
    }


# ---------------------------------------------------------------------------
# default registry + module-level helpers
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT


def swap_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one.

    Used by worker-task capture to isolate one task's metrics, and by
    tests to start from a clean slate.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous


def reset_metrics() -> None:
    _DEFAULT.reset()


def inc(name: str, value: float = 1, **labels) -> None:
    _DEFAULT.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    _DEFAULT.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    _DEFAULT.observe(name, value, **labels)


__all__ = [
    "MetricsRegistry",
    "TIME_SUFFIX",
    "default_registry",
    "inc",
    "observe",
    "reset_metrics",
    "series_key",
    "series_name",
    "set_gauge",
    "stable_snapshot",
    "swap_registry",
]
