"""Functions: a named CFG plus prologue/epilogue structure.

The partial-inlining legality checks of the paper (section 3.3.3) are
phrased in terms of a function's *prologue* (its entry block) and
*epilogue* (blocks ending in return); those notions live here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .block import BasicBlock
from .cfg import ControlFlowGraph


class Function:
    """A named function over a control-flow graph."""

    def __init__(
        self,
        name: str,
        blocks: Iterable[BasicBlock],
        entry_label: Optional[str] = None,
    ):
        self.name = name
        self.cfg = ControlFlowGraph(blocks, entry_label)

    # -- structure ----------------------------------------------------
    @property
    def entry_label(self) -> str:
        return self.cfg.entry_label

    @property
    def blocks(self) -> List[BasicBlock]:
        return self.cfg.blocks

    def prologue_label(self) -> str:
        """The function's prologue block label (its entry)."""
        return self.cfg.entry_label

    def epilogue_labels(self) -> List[str]:
        """Labels of blocks that return to the caller."""
        return [b.label for b in self.blocks if b.ends_in_return]

    def size(self) -> int:
        """Static instruction count (excluding pseudo instructions)."""
        return sum(b.size() for b in self.blocks)

    def callee_names(self) -> List[str]:
        """Names of functions this one calls, in block order."""
        names = []
        for block in self.blocks:
            term = block.terminator
            if term is not None and term.is_call:
                names.append(term.target)
        return names

    def call_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks if b.ends_in_call]

    def is_self_recursive(self) -> bool:
        return self.name in self.callee_names()

    # -- editing --------------------------------------------------------
    def replace_blocks(
        self, blocks: Iterable[BasicBlock], entry_label: Optional[str] = None
    ) -> None:
        """Install a new block list (used by layout and pruning passes)."""
        self.cfg = ControlFlowGraph(blocks, entry_label or self.cfg.entry_label)

    # -- printing ---------------------------------------------------------
    def render(self) -> str:
        return f"func {self.name}:\n" + self.cfg.render()

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"
