"""Call graphs.

Region identification builds "a call graph representing function call
relationships within the region" (paper section 3.2); root-function
selection walks it "ignoring back edges in the call graph"
(section 3.3.2).  The graph here keeps every call *site* (the calling
block) on its edges because partial inlining and package linking both
need per-site identity, not just per-pair connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class CallSite:
    """One call instruction: ``caller`` calls ``callee`` from ``block``."""

    caller: str
    callee: str
    block_label: str
    call_uid: int  # uid of the call instruction


class CallGraph:
    """Directed multigraph of call sites between functions."""

    def __init__(self, sites: Iterable[CallSite] = ()):
        self.sites: List[CallSite] = []
        self._out: Dict[str, List[CallSite]] = {}
        self._in: Dict[str, List[CallSite]] = {}
        self.functions: Set[str] = set()
        for site in sites:
            self.add_site(site)

    @classmethod
    def from_program(cls, program) -> "CallGraph":
        """Build the call graph of a whole :class:`~repro.program.program.Program`."""
        graph = cls()
        for function in program.functions.values():
            graph.add_function(function.name)
            for block in function.blocks:
                term = block.terminator
                if term is not None and term.is_call:
                    graph.add_site(
                        CallSite(function.name, term.target, block.label, term.uid)
                    )
        return graph

    # -- construction -----------------------------------------------
    def add_function(self, name: str) -> None:
        self.functions.add(name)
        self._out.setdefault(name, [])
        self._in.setdefault(name, [])

    def add_site(self, site: CallSite) -> None:
        self.add_function(site.caller)
        self.add_function(site.callee)
        self.sites.append(site)
        self._out[site.caller].append(site)
        self._in[site.callee].append(site)

    # -- queries -----------------------------------------------------
    def callees(self, name: str) -> List[CallSite]:
        return list(self._out.get(name, ()))

    def callers(self, name: str) -> List[CallSite]:
        return list(self._in.get(name, ()))

    def callee_names(self, name: str) -> Set[str]:
        return {s.callee for s in self._out.get(name, ())}

    def caller_names(self, name: str) -> Set[str]:
        return {s.caller for s in self._in.get(name, ())}

    def restricted_to(self, names: Iterable[str]) -> "CallGraph":
        """Subgraph over the given functions (used per hot region)."""
        keep = set(names)
        graph = CallGraph()
        for name in keep:
            graph.add_function(name)
        for site in self.sites:
            if site.caller in keep and site.callee in keep:
                graph.add_site(site)
        return graph

    # -- back edges ------------------------------------------------------
    def back_edge_sites(self, roots: Iterable[str] = ()) -> Set[CallSite]:
        """Call sites that are DFS back edges (including self-recursion).

        ``roots`` seeds the DFS order; any functions not reachable from
        them are used as additional roots in name order so every edge
        is classified deterministically.
        """
        color: Dict[str, int] = {}
        back: Set[CallSite] = set()
        ordered_roots = list(roots) + sorted(self.functions)

        for root in ordered_roots:
            if root not in self.functions or color.get(root):
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            color[root] = 1
            while stack:
                name, idx = stack[-1]
                sites = self._out.get(name, [])
                if idx < len(sites):
                    stack[-1] = (name, idx + 1)
                    site = sites[idx]
                    state = color.get(site.callee, 0)
                    if state == 0:
                        color[site.callee] = 1
                        stack.append((site.callee, 0))
                    elif state == 1:
                        back.add(site)
                else:
                    color[name] = 2
                    stack.pop()
        return back

    def forward_sites(self, roots: Iterable[str] = ()) -> List[CallSite]:
        """All call sites except DFS back edges."""
        back = self.back_edge_sites(roots)
        return [s for s in self.sites if s not in back]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __len__(self) -> int:
        return len(self.functions)
