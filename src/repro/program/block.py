"""Basic blocks.

Following the paper (section 3.2.1), instructions are divided into
basic blocks "where each block contains no more than one branch or
sub-routine call, which is always the last instruction in the block".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import FuClass, Instruction, Opcode

_BRANCH_FU = FuClass.BRANCH

_block_uid_counter = itertools.count(1)


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with a unique label.

    ``origin`` records the uid of the block this one was copied from
    when the package extractor replicates code; ``context`` records the
    partial-inlining calling context (the tuple of call-site
    instruction uids through which the block was inlined), which the
    package linker uses to enforce the paper's identical-calling-context
    rule (section 3.3.4).

    ``continuations`` is used only by package *exit blocks* whose side
    exit leaves partially-inlined callee code: before transferring to
    the original (cold) callee body, the listed ``(function, label)``
    return points must be pushed so the callee's eventual ``ret``
    unwinds to the correct original continuation.  A real binary would
    materialize these with explicit return-address stores; the
    block-level executor honors the metadata directly.

    ``meta`` carries free-form annotations (e.g. the package extractor
    marks exit blocks and records their original cold target).
    """

    label: str
    instructions: List[Instruction] = field(default_factory=list)
    uid: int = field(default_factory=lambda: next(_block_uid_counter))
    origin: Optional[int] = None
    context: tuple = ()
    continuations: tuple = ()
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._size_memo: Optional[tuple] = None
        self.validate()

    # -- structure -------------------------------------------------
    def validate(self) -> None:
        """Check the one-control-instruction-at-the-end invariant."""
        # Runs on every construction (package extraction clones blocks
        # in bulk), so check the body without per-instruction property
        # dispatch: control opcodes are exactly the BRANCH FU class.
        for inst in self.instructions[:-1]:
            if inst.opcode.fu_class is _BRANCH_FU:
                raise ValueError(
                    f"block {self.label}: control instruction "
                    f"{inst.render()!r} is not last"
                )

    @property
    def terminator(self) -> Optional[Instruction]:
        """The trailing control instruction, or ``None`` for a
        fallthrough-only block."""
        insts = self.instructions
        if insts:
            last = insts[-1]
            if last.opcode.fu_class is _BRANCH_FU:
                return last
        return None

    @property
    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        term = self.terminator
        if term is None:
            return list(self.instructions)
        return self.instructions[:-1]

    @property
    def ends_in_conditional_branch(self) -> bool:
        term = self.terminator
        return term is not None and term.is_conditional_branch

    @property
    def ends_in_call(self) -> bool:
        term = self.terminator
        return term is not None and term.is_call

    @property
    def ends_in_return(self) -> bool:
        term = self.terminator
        return term is not None and term.is_return

    @property
    def ends_in_halt(self) -> bool:
        term = self.terminator
        return term is not None and term.opcode is Opcode.HALT

    def size(self) -> int:
        """Number of real (non-pseudo) instructions.

        Memoized on the instruction-list length: every optimizer pass
        that changes a block's real-instruction count also changes its
        length (same-length replacements — retargeting, branch
        inversion, copy propagation, constant folding — all preserve
        pseudo-ness), so the pair stays coherent without an explicit
        invalidation hook.  Sizing is hot in coverage classification
        and program linking.
        """
        insts = self.instructions
        n = len(insts)
        memo = self._size_memo
        if memo is not None and memo[0] == n:
            return memo[1]
        size = sum(1 for inst in insts if not inst.is_pseudo)
        self._size_memo = (n, size)
        return size

    def root_origin(self) -> int:
        return self.origin if self.origin is not None else self.uid

    # -- copying ---------------------------------------------------
    def clone(self, new_label: str, context: tuple = ()) -> "BasicBlock":
        """Deep-copy for package extraction, tracking provenance.

        Bypasses ``__init__``: a copy of a valid block is valid, so
        re-running :meth:`validate` per clone (program cloning copies
        every block) would only re-prove the source's invariant.
        """
        block = object.__new__(BasicBlock)
        block.label = new_label
        block.instructions = [inst.clone() for inst in self.instructions]
        block.uid = next(_block_uid_counter)
        block.origin = self.root_origin()
        block.context = context
        block.continuations = ()
        block.meta = {}
        block._size_memo = self._size_memo
        return block

    # -- printing ----------------------------------------------------
    def render(self, indent: str = "  ") -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"{indent}{inst.render()}" for inst in self.instructions)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<BasicBlock {self.label} ({len(self.instructions)} insts)>"
