"""Fluent builders for constructing programs in code.

The workload generators, tests, and examples all build programs
through these helpers rather than constructing
:class:`~repro.isa.instructions.Instruction` records by hand::

    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    entry.movi(R(1), 10)
    loop = fb.block("loop")
    loop.subi(R(1), R(1), 1)
    loop.brnz(R(1), "loop")
    done = fb.block("done")
    done.halt()
    program = ProgramBuilder().add(fb.build()).build(entry="main")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Reg

from .block import BasicBlock
from .function import Function
from .program import Program


class BuildError(Exception):
    """Raised when a builder is used inconsistently."""


class BlockBuilder:
    """Accumulates the instructions of one basic block."""

    def __init__(self, label: str):
        self.label = label
        self._instructions: List[Instruction] = []
        self._terminated = False

    # -- plumbing -----------------------------------------------------
    def _emit(self, inst: Instruction) -> Instruction:
        if self._terminated:
            raise BuildError(
                f"block {self.label}: cannot add {inst.render()!r} after terminator"
            )
        if inst.is_control:
            self._terminated = True
        self._instructions.append(inst)
        return inst

    def raw(self, inst: Instruction) -> Instruction:
        """Append a pre-built instruction."""
        return self._emit(inst)

    @property
    def terminated(self) -> bool:
        return self._terminated

    def build(self) -> BasicBlock:
        return BasicBlock(self.label, list(self._instructions))

    # -- integer ALU ----------------------------------------------------
    def _alu3(self, op: Opcode, dest: Reg, src1: Reg, src2: Reg) -> Instruction:
        return self._emit(Instruction(op, dest=dest, srcs=(src1, src2)))

    def _alui(self, op: Opcode, dest: Reg, src: Reg, imm: int) -> Instruction:
        return self._emit(Instruction(op, dest=dest, srcs=(src,), imm=imm))

    def add(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.ADD, d, a, b)

    def sub(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.SUB, d, a, b)

    def mul(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.MUL, d, a, b)

    def and_(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.AND, d, a, b)

    def or_(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.OR, d, a, b)

    def xor(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.XOR, d, a, b)

    def shl(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.SHL, d, a, b)

    def shr(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.SHR, d, a, b)

    def slt(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.SLT, d, a, b)

    def seq(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.SEQ, d, a, b)

    def sne(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.SNE, d, a, b)

    def addi(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.ADDI, d, a, imm)

    def subi(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.SUBI, d, a, imm)

    def muli(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.MULI, d, a, imm)

    def andi(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.ANDI, d, a, imm)

    def ori(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.ORI, d, a, imm)

    def xori(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.XORI, d, a, imm)

    def shli(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.SHLI, d, a, imm)

    def shri(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.SHRI, d, a, imm)

    def slti(self, d: Reg, a: Reg, imm: int) -> Instruction:
        return self._alui(Opcode.SLTI, d, a, imm)

    def mov(self, d: Reg, s: Reg) -> Instruction:
        return self._emit(Instruction(Opcode.MOV, dest=d, srcs=(s,)))

    def movi(self, d: Reg, imm: int) -> Instruction:
        return self._emit(Instruction(Opcode.MOVI, dest=d, imm=imm))

    def nop(self) -> Instruction:
        return self._emit(Instruction(Opcode.NOP))

    # -- memory ------------------------------------------------------------
    def load(self, d: Reg, base: Reg, offset: int = 0) -> Instruction:
        return self._emit(Instruction(Opcode.LOAD, dest=d, srcs=(base,), imm=offset))

    def store(self, value: Reg, base: Reg, offset: int = 0) -> Instruction:
        return self._emit(Instruction(Opcode.STORE, srcs=(value, base), imm=offset))

    def fload(self, d: Reg, base: Reg, offset: int = 0) -> Instruction:
        return self._emit(Instruction(Opcode.FLOAD, dest=d, srcs=(base,), imm=offset))

    def fstore(self, value: Reg, base: Reg, offset: int = 0) -> Instruction:
        return self._emit(Instruction(Opcode.FSTORE, srcs=(value, base), imm=offset))

    # -- floating point -------------------------------------------------------
    def fadd(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.FADD, d, a, b)

    def fsub(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.FSUB, d, a, b)

    def fmul(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.FMUL, d, a, b)

    def fdiv(self, d: Reg, a: Reg, b: Reg) -> Instruction:
        return self._alu3(Opcode.FDIV, d, a, b)

    def fsqrt(self, d: Reg, a: Reg) -> Instruction:
        return self._emit(Instruction(Opcode.FSQRT, dest=d, srcs=(a,)))

    def fmov(self, d: Reg, s: Reg) -> Instruction:
        return self._emit(Instruction(Opcode.FMOV, dest=d, srcs=(s,)))

    def fneg(self, d: Reg, s: Reg) -> Instruction:
        return self._emit(Instruction(Opcode.FNEG, dest=d, srcs=(s,)))

    def cvtif(self, d: Reg, s: Reg) -> Instruction:
        return self._emit(Instruction(Opcode.CVTIF, dest=d, srcs=(s,)))

    def cvtfi(self, d: Reg, s: Reg) -> Instruction:
        return self._emit(Instruction(Opcode.CVTFI, dest=d, srcs=(s,)))

    # -- control ------------------------------------------------------------
    def brz(self, cond: Reg, target: str) -> Instruction:
        return self._emit(Instruction(Opcode.BRZ, srcs=(cond,), target=target))

    def brnz(self, cond: Reg, target: str) -> Instruction:
        return self._emit(Instruction(Opcode.BRNZ, srcs=(cond,), target=target))

    def jump(self, target: str) -> Instruction:
        return self._emit(Instruction(Opcode.JUMP, target=target))

    def call(self, function_name: str) -> Instruction:
        return self._emit(Instruction(Opcode.CALL, target=function_name))

    def ret(self) -> Instruction:
        return self._emit(Instruction(Opcode.RET))

    def halt(self) -> Instruction:
        return self._emit(Instruction(Opcode.HALT))


class FunctionBuilder:
    """Accumulates the blocks of one function, in layout order."""

    def __init__(self, name: str):
        self.name = name
        self._blocks: List[BlockBuilder] = []
        self._labels: Dict[str, BlockBuilder] = {}
        self._label_counter = 0

    def fresh_label(self, stem: str = "bb") -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def block(self, label: Optional[str] = None) -> BlockBuilder:
        """Start a new block appended after all existing blocks."""
        label = label or self.fresh_label()
        if label in self._labels:
            raise BuildError(f"duplicate block label {label!r} in {self.name}")
        builder = BlockBuilder(label)
        self._blocks.append(builder)
        self._labels[label] = builder
        return builder

    def build(self, entry_label: Optional[str] = None) -> Function:
        if not self._blocks:
            raise BuildError(f"function {self.name} has no blocks")
        return Function(
            self.name,
            [b.build() for b in self._blocks],
            entry_label or self._blocks[0].label,
        )


class ProgramBuilder:
    """Accumulates functions into a :class:`Program`."""

    def __init__(self):
        self._functions: List[Function] = []

    def add(self, function: Function) -> "ProgramBuilder":
        self._functions.append(function)
        return self

    def function(self, name: str) -> FunctionBuilder:
        """Convenience: a new :class:`FunctionBuilder` (not auto-added)."""
        return FunctionBuilder(name)

    def build(self, entry: str = "main", validate: bool = True) -> Program:
        program = Program(self._functions, entry=entry)
        if validate:
            program.validate()
        return program


def straightline_function(
    name: str, body_lengths: Sequence[int], register_pool: Sequence[Reg]
) -> Function:
    """Small helper producing a function of fallthrough blocks of ALU ops.

    Used by tests that need filler code with real data-flow.
    """
    fb = FunctionBuilder(name)
    pool = list(register_pool)
    if len(pool) < 2:
        raise BuildError("need at least two registers")
    for i, length in enumerate(body_lengths):
        bb = fb.block(f"{name}_b{i}")
        for j in range(length):
            bb.addi(pool[j % len(pool)], pool[(j + 1) % len(pool)], j)
    last = fb.block(f"{name}_ret")
    last.ret()
    return fb.build()
