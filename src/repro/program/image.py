"""Linked binary images.

A :class:`ProgramImage` assigns every instruction of a program a byte
address, encodes the instructions into one flat image, and keeps the
symbol information needed afterwards: function/block addresses and the
reverse map from addresses to instructions.

Two parts of the reproduction depend on real addresses:

* the Hot Spot Detector's Branch Behavior Buffer is indexed by branch
  *address* bits (set-associative contention is part of the paper's
  "lossy" profile story), and
* the post-link rewriter patches launch points by writing new 4-byte
  displacements into the image (see :mod:`repro.postlink.rewriter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    decode_instruction,
    encode_instruction,
    patch_target,
)
from repro.isa.instructions import FuClass, Instruction

_PSEUDO = FuClass.PSEUDO

from .cfg import is_cross_function, split_cross_function
from .program import Program

TEXT_BASE = 0x1000


@dataclass(frozen=True)
class Symbol:
    """A (function, block label) pair with its linked address."""

    function: str
    label: str
    address: int


class LinkError(Exception):
    """Raised when a program cannot be linked into an image."""


class ProgramImage:
    """A program laid out at concrete addresses and encoded to bytes."""

    def __init__(self, program: Program, base_address: int = TEXT_BASE):
        self.program = program
        self.base_address = base_address
        self.block_address: Dict[Tuple[str, str], int] = {}
        self.function_address: Dict[str, int] = {}
        self.instruction_address: Dict[int, int] = {}  # inst uid -> address
        self.address_instruction: Dict[int, Instruction] = {}
        self.symbols: List[Symbol] = []
        self._layout()
        self.data = self._encode()

    # -- layout ------------------------------------------------------
    def _function_order(self) -> List[str]:
        names = [self.program.entry]
        names.extend(
            name for name in self.program.functions if name != self.program.entry
        )
        return names

    def _layout(self) -> None:
        address = self.base_address
        instruction_address = self.instruction_address
        address_instruction = self.address_instruction
        for name in self._function_order():
            function = self.program.functions[name]
            self.function_address[name] = address
            for block in function.blocks:
                self.block_address[(name, block.label)] = address
                self.symbols.append(Symbol(name, block.label, address))
                for inst in block.instructions:
                    if inst.opcode.fu_class is _PSEUDO:
                        continue
                    instruction_address[inst.uid] = address
                    address_instruction[address] = inst
                    address += INSTRUCTION_BYTES
        self.end_address = address

    def _encode(self) -> bytearray:
        image = bytearray(self.end_address - self.base_address)
        base = self.base_address
        instruction_address = self.instruction_address
        for name in self._function_order():
            function = self.program.functions[name]
            resolver = self._resolver_for(name)
            for block in function.blocks:
                for inst in block.instructions:
                    if inst.opcode.fu_class is _PSEUDO:
                        continue
                    address = instruction_address[inst.uid]
                    if inst.target is None:
                        # Target-less encodings are address-independent
                        # (the displacement slot holds the plain
                        # immediate), and instructions are never
                        # field-mutated after construction — so the
                        # bytes can live on the instruction itself.
                        # Packing re-links the same shared original
                        # blocks once per trial; this skips nearly all
                        # of that re-encoding.
                        encoded = inst.__dict__.get("_encoded")
                        if encoded is None:
                            encoded = encode_instruction(inst, address)
                            inst.__dict__["_encoded"] = encoded
                    else:
                        encoded = encode_instruction(inst, address, resolver)
                    offset = address - base
                    image[offset : offset + INSTRUCTION_BYTES] = encoded
        return image

    def _resolver_for(self, function_name: str):
        def resolve(target: str) -> int:
            if is_cross_function(target):
                remote_fn, remote_label = split_cross_function(target)
                key = (remote_fn, remote_label)
                if key in self.block_address:
                    return self.block_address[key]
                raise LinkError(f"unresolved cross-function target {target!r}")
            key = (function_name, target)
            if key in self.block_address:
                return self.block_address[key]
            if target in self.function_address:
                return self.function_address[target]
            raise LinkError(
                f"unresolved target {target!r} referenced from {function_name}"
            )

        return resolve

    # -- queries --------------------------------------------------------
    def size_bytes(self) -> int:
        return len(self.data)

    def size_instructions(self) -> int:
        return len(self.instruction_address)

    def address_of_block(self, function: str, label: str) -> int:
        try:
            return self.block_address[(function, label)]
        except KeyError:
            raise LinkError(f"no block {function}/{label}") from None

    def address_of(self, inst: Instruction) -> int:
        try:
            return self.instruction_address[inst.uid]
        except KeyError:
            raise LinkError(f"instruction {inst.render()!r} not in image") from None

    def instruction_at(self, address: int) -> Optional[Instruction]:
        return self.address_instruction.get(address)

    def decode_at(self, address: int) -> Instruction:
        """Decode the raw bytes at ``address`` (round-trip check helper)."""
        offset = address - self.base_address
        raw = bytes(self.data[offset : offset + INSTRUCTION_BYTES])
        return decode_instruction(raw, address)

    # -- patching --------------------------------------------------------
    def patch_branch_target(self, inst: Instruction, new_address: int) -> None:
        """Retarget the encoded control transfer for ``inst`` in place."""
        address = self.address_of(inst)
        patch_target_offset = address - self.base_address
        patch_target(self.data, patch_target_offset, new_address - self.base_address)

    # -- printing ----------------------------------------------------------
    def render_symbols(self) -> str:
        lines = [f"{sym.address:#10x}  {sym.function}/{sym.label}" for sym in self.symbols]
        return "\n".join(lines)
