"""Program model: blocks, CFGs, functions, call graphs, linked images."""

from .block import BasicBlock
from .builder import BlockBuilder, BuildError, FunctionBuilder, ProgramBuilder
from .callgraph import CallGraph, CallSite
from .cfg import Arc, ArcKind, CfgError, ControlFlowGraph
from .function import Function
from .image import LinkError, ProgramImage, Symbol
from .program import Program, ProgramError, merge_programs

__all__ = [
    "Arc",
    "ArcKind",
    "BasicBlock",
    "BlockBuilder",
    "BuildError",
    "CallGraph",
    "CallSite",
    "CfgError",
    "ControlFlowGraph",
    "Function",
    "FunctionBuilder",
    "LinkError",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "ProgramImage",
    "Symbol",
    "merge_programs",
]
