"""Whole programs: a set of functions with a designated entry.

A :class:`Program` is what the workload generator emits, what the Hot
Spot Detector profiles, and what the post-link rewriter transforms into
a *packed* program (original code + appended phase packages).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.instructions import Instruction

from .block import BasicBlock
from .callgraph import CallGraph
from .function import Function


class ProgramError(Exception):
    """Raised for malformed programs."""


class Program:
    """A linked collection of functions."""

    def __init__(self, functions: Iterable[Function], entry: str = "main"):
        self.functions: Dict[str, Function] = {}
        for function in functions:
            if function.name in self.functions:
                raise ProgramError(f"duplicate function {function.name!r}")
            self.functions[function.name] = function
        if entry not in self.functions:
            raise ProgramError(f"entry function {entry!r} not defined")
        self.entry = entry

    # -- structure ----------------------------------------------------
    def validate(self) -> None:
        """Check cross-function invariants (call targets exist).

        Call targets are normally function names; post-link patched
        launch points may instead name a block (``function::label``)
        inside a package.
        """
        from .cfg import is_cross_function, split_cross_function

        for function in self.functions.values():
            for callee in function.callee_names():
                if is_cross_function(callee):
                    target_fn, label = split_cross_function(callee)
                    target = self.functions.get(target_fn)
                    if target is None or label not in target.cfg:
                        raise ProgramError(
                            f"{function.name} calls unresolved target {callee!r}"
                        )
                elif callee not in self.functions:
                    raise ProgramError(
                        f"{function.name} calls undefined function {callee!r}"
                    )

    def call_graph(self) -> CallGraph:
        return CallGraph.from_program(self)

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise ProgramError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise ProgramError(f"no function named {name!r}") from None

    # -- statistics ------------------------------------------------------
    def static_size(self) -> int:
        """Total static instruction count (excluding pseudo ops)."""
        return sum(f.size() for f in self.functions.values())

    def block_count(self) -> int:
        return sum(len(f.blocks) for f in self.functions.values())

    def iter_blocks(self) -> Iterator[Tuple[Function, BasicBlock]]:
        for function in self.functions.values():
            for block in function.blocks:
                yield function, block

    def iter_instructions(self) -> Iterator[Tuple[Function, BasicBlock, Instruction]]:
        for function, block in self.iter_blocks():
            for inst in block.instructions:
                yield function, block, inst

    def conditional_branches(self) -> List[Instruction]:
        """All static conditional branches in the program."""
        return [
            inst
            for _f, _b, inst in self.iter_instructions()
            if inst.is_conditional_branch
        ]

    # -- lookup indexes ---------------------------------------------------
    def block_index(self) -> Dict[int, Tuple[str, str]]:
        """Map block uid -> (function name, block label)."""
        return {
            block.uid: (function.name, block.label)
            for function, block in self.iter_blocks()
        }

    def branch_block_index(self) -> Dict[int, Tuple[str, str]]:
        """Map conditional-branch instruction uid -> (function, block label)."""
        index = {}
        for function, block in self.iter_blocks():
            term = block.terminator
            if term is not None and term.is_conditional_branch:
                index[term.uid] = (function.name, block.label)
        return index

    # -- printing ------------------------------------------------------------
    def render(self) -> str:
        parts = [self.functions[self.entry].render()]
        parts.extend(
            f.render() for name, f in sorted(self.functions.items()) if name != self.entry
        )
        return "\n\n".join(parts)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<Program entry={self.entry!r} functions={len(self.functions)} "
            f"insts={self.static_size()}>"
        )


def merge_programs(base: Program, extra_functions: Iterable[Function]) -> Program:
    """New program containing ``base``'s functions plus ``extra_functions``."""
    merged = Program(list(base.functions.values()), entry=base.entry)
    for function in extra_functions:
        merged.add_function(function)
    return merged
