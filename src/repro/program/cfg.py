"""Control-flow graphs over basic blocks.

Arcs carry a :class:`ArcKind` telling how control reaches the
destination; the region-identification step (paper section 3.2)
attaches *temperature* and *weight* to blocks and arcs, which it keys
by block label and by ``(src_label, dst_label)`` pairs produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.instructions import Opcode

from .block import BasicBlock


CROSS_FUNCTION_SEP = "::"


def is_cross_function(target: Optional[str]) -> bool:
    """True for ``function::label`` targets that leave the current function.

    Post-link code is address-based: launch points and package side
    exits jump across function boundaries.  Such targets have no local
    CFG arc; the executor and the image linker resolve them globally.
    """
    return target is not None and CROSS_FUNCTION_SEP in target


def split_cross_function(target: str) -> Tuple[str, str]:
    """Split ``function::label`` into its parts."""
    function, _sep, label = target.partition(CROSS_FUNCTION_SEP)
    return function, label


def cross_function_target(function: str, label: str) -> str:
    """Build a ``function::label`` target string."""
    return f"{function}{CROSS_FUNCTION_SEP}{label}"


class ArcKind(Enum):
    """How control flows along a CFG arc."""

    TAKEN = "taken"              # conditional branch taken, or jump
    FALLTHROUGH = "fallthrough"  # conditional branch not taken / no terminator
    CALL_RETURN = "call_return"  # from a call block to its return point


@dataclass(frozen=True)
class Arc:
    """A directed control-flow arc between two blocks of one function."""

    src: str
    dst: str
    kind: ArcKind

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{self.src} -[{self.kind.value}]-> {self.dst}"


class CfgError(Exception):
    """Raised for malformed control-flow graphs."""


class ControlFlowGraph:
    """Blocks of one function plus explicit control-flow arcs.

    Blocks are kept in *layout order*: the fallthrough successor of a
    block is the next block in the order.  The graph is (re)derived
    from the instruction stream by :meth:`rebuild_arcs`.
    """

    def __init__(self, blocks: Iterable[BasicBlock], entry_label: Optional[str] = None):
        self.blocks: List[BasicBlock] = list(blocks)
        if not self.blocks:
            raise CfgError("a control-flow graph needs at least one block")
        self.by_label: Dict[str, BasicBlock] = {}
        for block in self.blocks:
            if block.label in self.by_label:
                raise CfgError(f"duplicate block label {block.label!r}")
            self.by_label[block.label] = block
        self.entry_label = entry_label or self.blocks[0].label
        if self.entry_label not in self.by_label:
            raise CfgError(f"entry label {self.entry_label!r} not in CFG")
        self.arcs: List[Arc] = []
        self._succs: Dict[str, List[Arc]] = {}
        self._preds: Dict[str, List[Arc]] = {}
        self.rebuild_arcs()

    # -- derivation -------------------------------------------------
    def rebuild_arcs(self) -> None:
        """Recompute arcs from terminators and layout order."""
        self.arcs = []
        self._succs = {b.label: [] for b in self.blocks}
        self._preds = {b.label: [] for b in self.blocks}
        for i, block in enumerate(self.blocks):
            next_label = self.blocks[i + 1].label if i + 1 < len(self.blocks) else None
            for arc in self._arcs_of(block, next_label):
                self._add_arc(arc)

    def _arcs_of(self, block: BasicBlock, next_label: Optional[str]) -> Iterator[Arc]:
        term = block.terminator
        if term is None:
            if next_label is None:
                raise CfgError(
                    f"block {block.label} falls through past the end of the function"
                )
            yield Arc(block.label, next_label, ArcKind.FALLTHROUGH)
            return
        if term.is_conditional_branch:
            if next_label is None:
                raise CfgError(
                    f"block {block.label} may fall through past the function end"
                )
            if is_cross_function(term.target):
                # Taken side leaves the function (e.g. a patched launch
                # point); only the fallthrough arc is local.
                yield Arc(block.label, next_label, ArcKind.FALLTHROUGH)
                return
            if term.target not in self.by_label:
                raise CfgError(
                    f"block {block.label}: branch target {term.target!r} missing"
                )
            yield Arc(block.label, term.target, ArcKind.TAKEN)
            yield Arc(block.label, next_label, ArcKind.FALLTHROUGH)
        elif term.opcode is Opcode.JUMP:
            if is_cross_function(term.target):
                # Cross-function jump (package side exit / link): the
                # block has no local successor.
                return
            if term.target not in self.by_label:
                raise CfgError(
                    f"block {block.label}: jump target {term.target!r} missing"
                )
            yield Arc(block.label, term.target, ArcKind.TAKEN)
        elif term.is_call:
            if next_label is None:
                raise CfgError(
                    f"block {block.label}: call needs a return point after it"
                )
            yield Arc(block.label, next_label, ArcKind.CALL_RETURN)
        elif term.is_return or term.opcode is Opcode.HALT:
            return
        else:  # pragma: no cover - defensive
            raise CfgError(f"unhandled terminator {term.render()!r}")

    def _add_arc(self, arc: Arc) -> None:
        self.arcs.append(arc)
        self._succs[arc.src].append(arc)
        self._preds[arc.dst].append(arc)

    # -- queries -----------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        return self.by_label[self.entry_label]

    def successors(self, label: str) -> List[Arc]:
        return self._succs[label]

    def predecessors(self, label: str) -> List[Arc]:
        return self._preds[label]

    def succ_labels(self, label: str) -> List[str]:
        return [a.dst for a in self._succs[label]]

    def pred_labels(self, label: str) -> List[str]:
        return [a.src for a in self._preds[label]]

    def arc(self, src: str, dst: str) -> Optional[Arc]:
        for a in self._succs.get(src, ()):
            if a.dst == dst:
                return a
        return None

    def exit_labels(self) -> List[str]:
        """Labels of blocks ending in return or halt."""
        return [b.label for b in self.blocks if b.ends_in_return or b.ends_in_halt]

    def labels(self) -> List[str]:
        return [b.label for b in self.blocks]

    def __contains__(self, label: str) -> bool:
        return label in self.by_label

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    # -- traversal -----------------------------------------------------
    def reachable_from(self, start: Optional[str] = None) -> List[str]:
        """Labels reachable from ``start`` (default: the entry block)."""
        start = start or self.entry_label
        seen = {start}
        stack = [start]
        order = []
        while stack:
            label = stack.pop()
            order.append(label)
            for arc in self._succs[label]:
                if arc.dst not in seen:
                    seen.add(arc.dst)
                    stack.append(arc.dst)
        return order

    def back_edges(self) -> List[Arc]:
        """Arcs that close a cycle in a DFS from the entry block.

        The paper's root/entry analyses (section 3.3.2) "ignore back
        edges"; this is the DFS notion of a back edge, which is robust
        on irreducible graphs where the dominator notion is partial.
        """
        color: Dict[str, int] = {}
        back: List[Arc] = []

        for root in [self.entry_label] + [
            b.label for b in self.blocks if b.label not in color
        ]:
            if color.get(root):
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            color[root] = 1
            while stack:
                label, idx = stack[-1]
                arcs = self._succs[label]
                if idx < len(arcs):
                    stack[-1] = (label, idx + 1)
                    arc = arcs[idx]
                    state = color.get(arc.dst, 0)
                    if state == 0:
                        color[arc.dst] = 1
                        stack.append((arc.dst, 0))
                    elif state == 1:
                        back.append(arc)
                else:
                    color[label] = 2
                    stack.pop()
        return back

    # -- printing ------------------------------------------------------
    def render(self) -> str:
        return "\n".join(block.render() for block in self.blocks)
