"""Fixed-width binary encoding for the synthetic ISA.

Each instruction encodes to :data:`INSTRUCTION_BYTES` (8) bytes:

====== =======================================================
offset contents
====== =======================================================
0      opcode byte
1      destination register (``0xFF`` when absent)
2      first source register (``0xFF`` when absent)
3      second source register (``0xFF`` when absent)
4..7   32-bit little-endian signed immediate / branch displacement
====== =======================================================

Register bytes use the integer register index directly for ``r``
registers and ``0x80 | index`` for ``f`` registers.

Control-transfer targets are encoded as *byte displacements* relative
to the address of the instruction itself, which is what makes the
post-link rewriter's patching realistic: retargeting a launch point is
a 4-byte write into the image (see :mod:`repro.postlink.rewriter`).
Encoding a program therefore requires a resolver that maps label /
function-name targets to absolute addresses.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from .instructions import Instruction, Opcode, OPCODE_BY_CODE
from .registers import Reg, RegClass

INSTRUCTION_BYTES = 8

_NO_REG = 0xFF
_FLOAT_FLAG = 0x80

_WORD = struct.Struct("<BBBBi")


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded or decoded."""


def _encode_reg(reg: Optional[Reg]) -> int:
    if reg is None:
        return _NO_REG
    if reg.cls is RegClass.FLOAT:
        return _FLOAT_FLAG | reg.index
    return reg.index


def _decode_reg(byte: int) -> Optional[Reg]:
    if byte == _NO_REG:
        return None
    if byte & _FLOAT_FLAG:
        return Reg(RegClass.FLOAT, byte & 0x7F)
    return Reg(RegClass.INT, byte)


def encode_instruction(
    inst: Instruction,
    address: int,
    resolve_target: Optional[Callable[[str], int]] = None,
) -> bytes:
    """Encode one instruction located at ``address``.

    ``resolve_target`` maps a label or function name to an absolute
    byte address; it is required for control transfers with a target.
    """
    if inst.is_pseudo:
        raise EncodingError(f"pseudo-instruction {inst.opcode.mnemonic} "
                            "cannot be encoded to the binary image")
    imm = inst.imm
    if inst.target is not None:
        if resolve_target is None:
            raise EncodingError(
                f"instruction {inst.render()!r} needs a target resolver"
            )
        imm = resolve_target(inst.target) - address
    srcs = inst.srcs
    src1 = srcs[0] if len(srcs) > 0 else None
    src2 = srcs[1] if len(srcs) > 1 else None
    try:
        return _WORD.pack(
            inst.opcode.code,
            _encode_reg(inst.dest),
            _encode_reg(src1),
            _encode_reg(src2),
            imm,
        )
    except struct.error as exc:
        raise EncodingError(f"cannot encode {inst.render()!r}: {exc}") from exc


def decode_instruction(data: bytes, address: int = 0) -> Instruction:
    """Decode 8 bytes back into an :class:`Instruction`.

    Control-transfer targets are recovered as absolute addresses and
    stored in ``imm`` (the symbolic label is gone after linking); the
    ``target`` field is set to the rendered hex address for display.
    """
    if len(data) != INSTRUCTION_BYTES:
        raise EncodingError(f"expected {INSTRUCTION_BYTES} bytes, got {len(data)}")
    code, dest_b, src1_b, src2_b, imm = _WORD.unpack(data)
    opcode = OPCODE_BY_CODE.get(code)
    if opcode is None:
        raise EncodingError(f"unknown opcode byte 0x{code:02x}")
    dest = _decode_reg(dest_b)
    srcs = tuple(r for r in (_decode_reg(src1_b), _decode_reg(src2_b)) if r is not None)
    target = None
    if opcode in (Opcode.BRZ, Opcode.BRNZ, Opcode.JUMP, Opcode.CALL):
        target = f"0x{address + imm:x}"
    return Instruction(opcode=opcode, dest=dest, srcs=srcs, imm=imm, target=target)


def patch_target(image: bytearray, inst_address: int, new_target_address: int) -> None:
    """Rewrite the displacement of the control instruction at ``inst_address``.

    This is the primitive post-link patch used to retarget launch
    points: a single 4-byte store into the binary image.
    """
    displacement = new_target_address - inst_address
    struct.pack_into("<i", image, inst_address + 4, displacement)
