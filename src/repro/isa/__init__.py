"""Synthetic EPIC-like instruction set: registers, instructions, encoding.

The assembler and disassembler live in :mod:`repro.isa.assembler` and
:mod:`repro.isa.disassembler`; they are imported explicitly (not
re-exported here) because they depend on :mod:`repro.program`.
"""

from .instructions import FuClass, Instruction, Opcode
from .registers import (
    ARG_REGS,
    CALLEE_SAVED,
    CALLER_SAVED,
    F,
    INT_RETURN_REG,
    R,
    Reg,
    RegClass,
    STACK_POINTER,
    parse_reg,
)

__all__ = [
    "FuClass",
    "Instruction",
    "Opcode",
    "Reg",
    "RegClass",
    "R",
    "F",
    "parse_reg",
    "ARG_REGS",
    "CALLER_SAVED",
    "CALLEE_SAVED",
    "INT_RETURN_REG",
    "STACK_POINTER",
]
