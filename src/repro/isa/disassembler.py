"""Disassembler: programs and images back to assembly text."""

from __future__ import annotations

from typing import List

from repro.program.function import Function
from repro.program.image import ProgramImage
from repro.program.program import Program

from .encoding import INSTRUCTION_BYTES


def disassemble_function(function: Function) -> str:
    """Render one function in assembler syntax."""
    lines: List[str] = [f"func {function.name}:"]
    for block in function.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {inst.render()}")
    return "\n".join(lines)


def disassemble(program: Program) -> str:
    """Render a full program in assembler syntax (entry function first)."""
    order = [program.entry] + sorted(
        name for name in program.functions if name != program.entry
    )
    return "\n\n".join(disassemble_function(program.functions[name]) for name in order)


def disassemble_image(image: ProgramImage) -> str:
    """Decode the raw image bytes back to an address-annotated listing.

    Unlike :func:`disassemble`, this reads the *encoded bytes*, so it
    reflects any post-link patches applied to the image.
    """
    lines: List[str] = []
    symbols_by_address = {sym.address: sym for sym in image.symbols}
    address = image.base_address
    while address < image.end_address:
        symbol = symbols_by_address.get(address)
        if symbol is not None:
            lines.append(f"{symbol.function}/{symbol.label}:")
        inst = image.decode_at(address)
        lines.append(f"  {address:#8x}  {inst.render()}")
        address += INSTRUCTION_BYTES
    return "\n".join(lines)
